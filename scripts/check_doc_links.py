"""Verify that every relative Markdown link in the docs resolves.

Usage::

    python scripts/check_doc_links.py [FILE ...]

With no arguments, checks ``docs/*.md`` plus the top-level README.md,
EXPERIMENTS.md and DESIGN.md — and additionally fails on *orphaned* docs
pages: every ``docs/*.md`` must be reachable from README.md by following
relative Markdown links, so new documentation cannot silently fall out of
the reading path.  External links (``http(s)://``, ``mailto:``)
and pure in-page anchors (``#...``) are skipped; a relative target's
optional ``#fragment`` is ignored.  Exits non-zero listing every broken
link — CI runs this so documentation cannot drift away from the tree.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline Markdown links: [text](target). Images share the syntax.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

DEFAULT_FILES = ("README.md", "EXPERIMENTS.md", "DESIGN.md")


def broken_links(path: Path) -> list:
    """(line_number, target) pairs of relative links that do not resolve."""
    broken = []
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        for target in LINK.findall(line):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            if not (path.parent / relative).exists():
                broken.append((number, target))
    return broken


def reachable_markdown(start: Path) -> set:
    """Every Markdown file reachable from ``start`` via relative links."""
    seen = set()
    frontier = [start.resolve()]
    while frontier:
        path = frontier.pop()
        if path in seen or not path.exists():
            continue
        seen.add(path)
        for target in LINK.findall(path.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            candidate = (path.parent / relative).resolve()
            if candidate.suffix == ".md" and candidate not in seen:
                frontier.append(candidate)
    return seen


def orphaned_docs() -> list:
    """``docs/*.md`` pages not reachable from README.md via links."""
    readme = REPO_ROOT / "README.md"
    reachable = reachable_markdown(readme) if readme.exists() else set()
    return [
        path
        for path in sorted((REPO_ROOT / "docs").glob("*.md"))
        if path.resolve() not in reachable
    ]


def main(argv) -> int:
    if argv:
        files = [Path(name) for name in argv]
        orphans = []
    else:
        files = sorted((REPO_ROOT / "docs").glob("*.md"))
        files += [REPO_ROOT / name for name in DEFAULT_FILES
                  if (REPO_ROOT / name).exists()]
        orphans = orphaned_docs()
    failures = 0
    for path in files:
        for number, target in broken_links(path):
            print(f"{path.relative_to(REPO_ROOT)}:{number}: broken link -> {target}")
            failures += 1
    for path in orphans:
        print(
            f"{path.relative_to(REPO_ROOT)}: orphaned page "
            "(not reachable from README.md via Markdown links)"
        )
        failures += 1
    checked = ", ".join(str(p.relative_to(REPO_ROOT)) for p in files)
    if failures:
        print(f"{failures} problem(s) across {len(files)} file(s)")
        return 1
    print(f"all relative links resolve, no orphaned docs ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
