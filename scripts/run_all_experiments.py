"""Regenerate every paper table/figure series and write them to a report.

Usage::

    python scripts/run_all_experiments.py [--scale paper] [--out FILE]

Runs all experiments of repro.bench.experiments at the chosen scale (600
nodes by default; 1000-2500 with ``--scale paper``) and writes the rendered
tables to the output file plus CSVs under benchmarks/results/.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["bench", "paper"], default="bench")
    parser.add_argument("--out", default=None)
    args = parser.parse_args()

    if args.scale == "paper":
        os.environ["REPRO_SCALE"] = "paper"
    # Import after the env var is set: default_node_count() reads it.
    from repro.bench import experiments
    from repro.bench.reporting import render_table, save_csv

    out_path = Path(args.out or f"experiment_report_{args.scale}.txt")
    results_dir = Path(__file__).resolve().parent.parent / "benchmarks" / "results"

    jobs = [
        ("fig10 (33%)", lambda: experiments.fig10_overall("33")),
        ("fig10 (60%)", lambda: experiments.fig10_overall("60")),
        ("fig11 (33%)", lambda: experiments.fig11_per_node("33")),
        ("fig11 (60%)", lambda: experiments.fig11_per_node("60")),
        ("fig12", experiments.fig12_ratio3),
        ("fig13", experiments.fig13_ratio1),
        ("fig14", experiments.fig14_network_size),
        ("fig15", experiments.fig15_step_breakdown),
        ("fig16", experiments.fig16_quadtree_influence),
        ("compression", experiments.compression_table),
        ("packet size", experiments.packet_size_study),
        ("response time", experiments.response_time_study),
        ("ablation", experiments.ablation_study),
        ("placement", experiments.placement_study),
        ("memory", experiments.memory_study),
        ("generality", experiments.generality_study),
        ("related work", experiments.related_work_study),
        ("continuous", experiments.continuous_study),
        ("variance", experiments.variance_study),
        ("resolution", experiments.resolution_study),
        ("bs position", experiments.bs_position_study),
    ]

    lines = [f"# Experiment report ({args.scale} scale)\n"]
    for label, job in jobs:
        started = time.time()
        print(f"[{label}] running...", flush=True)
        series = job()
        save_csv(series, results_dir)
        elapsed = time.time() - started
        print(f"[{label}] done in {elapsed:.1f}s", flush=True)
        lines.append(render_table(series))
        lines.append("")
    out_path.write_text("\n".join(lines))
    print(f"report written to {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
