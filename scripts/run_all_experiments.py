"""Regenerate every paper table/figure series (legacy wrapper).

This script predates the parallel bench CLI and now simply forwards to it;
prefer calling the CLI directly::

    python -m repro.bench run --all [--jobs N] [--scale paper] [--out FILE]

The historical flags keep working::

    python scripts/run_all_experiments.py [--scale paper] [--out FILE] [--jobs N]

and results still land under ``benchmarks/results/`` with the report next
to the current working directory.  See ``docs/benchmarking.md``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["bench", "paper"], default="bench")
    parser.add_argument("--out", default=None)
    parser.add_argument("--jobs", type=int, default=1, help="worker processes")
    args = parser.parse_args()

    from repro.bench.__main__ import main as bench_main

    results_dir = Path(__file__).resolve().parent.parent / "benchmarks" / "results"
    argv = [
        "run", "--all",
        "--scale", args.scale,
        "--jobs", str(args.jobs),
        "--results-dir", str(results_dir),
    ]
    if args.out:
        argv += ["--out", args.out]
    return bench_main(argv)


if __name__ == "__main__":
    sys.exit(main())
