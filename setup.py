"""Setup shim for environments without the `wheel` package.

The project metadata lives in pyproject.toml; this file only enables
`pip install -e . --no-use-pep517` (legacy editable installs) on machines
whose setuptools cannot build PEP 660 wheels.
"""
from setuptools import setup

setup()
