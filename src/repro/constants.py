"""Paper-derived constants and defaults.

Every number in this module is traceable to the SENS-Join paper (ICDE 2009).
The section reference is given next to each constant.  Changing a value here
changes the default for the whole library; experiment code can always
override per run via the relevant dataclass parameters.
"""

from __future__ import annotations

#: Maximum packet size in bytes used for the transmission metric (§VI,
#: "We use the number of transmissions as our metric with a maximum packet
#: size of 48 bytes. This is commonly used.")
DEFAULT_MAX_PACKET_BYTES = 48

#: Alternative large packet size studied in §VI-A ("for a maximum packet size
#: of 124 bytes, SENS-Join still reduces the number of packets of nodes close
#: to the root by an order of magnitude").
LARGE_MAX_PACKET_BYTES = 124

#: Treecut threshold D_max in bytes (§IV-B / §IV-E: "We use D_max = 30
#: bytes"; constraint D_max < MAX_PACKET_SIZE).
DEFAULT_TREECUT_DMAX_BYTES = 30

#: Memory cap for Selective Filter Forwarding (§IV-C: "A node keeps the
#: join-attribute tuples of its subtree if their size is less than a
#: predefined limit. We use a limit of 500 bytes.")
DEFAULT_SUBTREE_FILTER_LIMIT_BYTES = 500

#: Bytes per attribute value on the wire (§IV-B: "Assuming that each
#: attribute requires two bytes").
BYTES_PER_ATTRIBUTE = 2

#: Radio communication range in metres (§VI, "We set the communication range
#: of each node to 50m").
DEFAULT_RADIO_RANGE_M = 50.0

#: Default network: 1500 nodes on a 1050 m x 1050 m area (§VI).
PAPER_NODE_COUNT = 1500
PAPER_AREA_SIDE_M = 1050.0

#: Default fraction of nodes contributing to the result (§VI: 5%).
PAPER_RESULT_FRACTION = 0.05

#: Quantization resolutions used in the paper's experiments (§V-B: "we used
#: steps of 0.1 deg C for the temperature and of 1m for the X- and
#: Y-coordinates").
PAPER_TEMPERATURE_RESOLUTION = 0.1
PAPER_COORDINATE_RESOLUTION_M = 1.0

#: Relation-membership flags prefixed to every point in the quadtree wire
#: format (§V-C: Relation A = '10', B = '01', both = '11').
FLAG_RELATION_A = 0b10
FLAG_RELATION_B = 0b01
FLAG_RELATION_BOTH = 0b11

#: Typical neighbourhood size used to bound proxy memory (§IV-B: "usually
#: around 6 to 15").
TYPICAL_NEIGHBOURS_MAX = 15

#: MicaZ-like energy parameters (substitution for the paper's testbed; see
#: DESIGN.md).  The per-packet overhead dominates, reproducing the §IV-B
#: footnote: "removing about 10 bytes from a packet incurs a saving in the
#: order of 5%".  Units are abstract micro-joule-like units.
DEFAULT_TX_COST_PER_PACKET = 400.0
DEFAULT_TX_COST_PER_BYTE = 4.0
DEFAULT_RX_COST_PER_PACKET = 250.0
DEFAULT_RX_COST_PER_BYTE = 2.5

#: Per-hop transmission latency in seconds (order of a few milliseconds per
#: 48-byte frame at 250 kbps plus MAC overhead).  Only used by the
#: response-time study (§VII), never by the transmission-count metric.
DEFAULT_HOP_LATENCY_S = 0.01

#: Link-layer ARQ bound: maximum retransmissions per packet before the link
#: layer stops charging further attempts (§IV-F error tolerance; TinyOS-style
#: bounded retransmit).  Seven retries push the residual loss of a 30 %-lossy
#: link below 1e-4.
DEFAULT_ARQ_MAX_RETRIES = 7

#: ACK-timeout before the first retransmission, in seconds.  Subsequent
#: retries back off exponentially (``DEFAULT_ARQ_BACKOFF_FACTOR``).
DEFAULT_ARQ_ACK_TIMEOUT_S = 0.005

#: Multiplicative backoff between consecutive retransmissions of one packet.
DEFAULT_ARQ_BACKOFF_FACTOR = 2.0

#: Exponent of the distance-based packet-loss model: the per-packet loss
#: probability of a link at distance d is ``loss_rate * (d / range) ** k``.
#: Quadratic falloff reproduces the empirical "grey zone" shape — links near
#: the unit-disk boundary are much lossier than short links.
DEFAULT_LOSS_DISTANCE_EXPONENT = 2.0

#: Per-tree-level scheduling slot in seconds.  Collection and dissemination
#: are epoch-scheduled TAG-style (a node "knows when its children will send
#: their data ... it sets the wakeup-time accordingly", §IV-A/[18]); each
#: protocol phase therefore costs height x slot of wall-clock time on top of
#: serialisation, which is what makes SENS-Join's three phases slower than
#: the external join's single pass (§VII) while staying within its 2x bound.
DEFAULT_LEVEL_SLOT_S = 0.02
