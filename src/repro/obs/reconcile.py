"""Energy reconciliation between telemetry counters and the affine model.

The channel charges every transmission twice over: once into the per-node
:class:`~repro.sim.energy.EnergyLedger` (the ground truth the benchmarks
report) and once into per-phase telemetry counters (``tx_packets_total``,
``energy_joules_total{op=...}``, ...).  The two must agree *exactly* —
any drift means a code path charged one book and not the other.

This module holds the shared arithmetic: the ``repro.obs`` CLI's
``energy-breakdown`` command reconciles recorded traces with it, and the
differential harness (:mod:`repro.verify.invariants`) applies the same
check live after every fuzz trial.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple

from .metrics import MetricsRegistry

__all__ = [
    "phases_in",
    "derived_phase_energy",
    "energy_model_map",
    "reconcile_phase_energy",
    "reconciliation_tolerance",
]


def phases_in(reg: MetricsRegistry) -> List[str]:
    """Every distinct ``phase`` label present in the registry, sorted."""
    phases = set()
    for inst in reg:
        labels = dict(inst.labels)
        if "phase" in labels:
            phases.add(labels["phase"])
    return sorted(phases)


def energy_model_map(model) -> Dict[str, float]:
    """An :class:`~repro.sim.energy.EnergyModel` as the plain mapping the
    trace meta carries (and :func:`derived_phase_energy` consumes)."""
    return {
        "tx_per_packet": model.tx_per_packet,
        "tx_per_byte": model.tx_per_byte,
        "rx_per_packet": model.rx_per_packet,
        "rx_per_byte": model.rx_per_byte,
    }


def derived_phase_energy(
    reg: MetricsRegistry, phase: str, model: Mapping[str, float]
) -> float:
    """Energy a phase *should* have cost under the affine radio model.

    Retransmissions are charged at transmit rates — the ARQ resends the
    same packet, so the per-packet/per-byte transmit costs apply.
    """
    tx_pk = reg.total("tx_packets_total", phase=phase)
    tx_by = reg.total("tx_bytes_total", phase=phase)
    rx_pk = reg.total("rx_packets_total", phase=phase)
    rx_by = reg.total("rx_bytes_total", phase=phase)
    retx_pk = reg.total("retx_packets_total", phase=phase)
    retx_by = reg.total("retx_bytes_total", phase=phase)
    return (
        tx_pk * model["tx_per_packet"]
        + tx_by * model["tx_per_byte"]
        + rx_pk * model["rx_per_packet"]
        + rx_by * model["rx_per_byte"]
        + retx_pk * model["tx_per_packet"]
        + retx_by * model["tx_per_byte"]
    )


def reconciliation_tolerance(total_energy: float) -> float:
    """Accumulated float rounding allowance: 1e-9 relative, 1e-9 floor."""
    return max(1e-9, 1e-9 * max(total_energy, 1.0))


def reconcile_phase_energy(
    reg: MetricsRegistry,
    model: Mapping[str, float],
    phases: Iterable[str] | None = None,
) -> Tuple[float, float, Dict[str, float]]:
    """Compare measured vs derived energy for every phase.

    Returns ``(total_measured, worst_delta, per_phase_delta)`` where
    ``worst_delta`` is the largest absolute per-phase disagreement between
    the ``energy_joules_total`` counter and the counter-derived cost.
    """
    if phases is None:
        phases = phases_in(reg)
    total_measured = 0.0
    worst_delta = 0.0
    deltas: Dict[str, float] = {}
    for phase in phases:
        measured = reg.total("energy_joules_total", phase=phase)
        total_measured += measured
        delta = abs(measured - derived_phase_energy(reg, phase, model))
        deltas[phase] = delta
        worst_delta = max(worst_delta, delta)
    return total_measured, worst_delta, deltas
