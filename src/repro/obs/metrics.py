"""In-process metrics: counters, gauges and histograms with labels.

The registry is the numeric half of the telemetry layer (trace events are
the narrative half).  Instruments are keyed by ``(kind, name, labels)``
where labels are an ordinary keyword mapping (``phase="filter-dissemination",
node=17``), mirroring the Prometheus data model without any of its wire
format.  Protocol code asks the registry for an instrument each time —
lookups are dict hits, and a disabled registry (:class:`NullRegistry`, the
default everywhere) hands back a shared no-op instrument so the hot paths
cost one attribute check when telemetry is off.

Histogram instruments do not bucket: simulations are small enough to keep
``count/sum/min/max``, which is all the reporting CLI needs.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricSample",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
]

LabelsKey = Tuple[Tuple[str, Any], ...]


def _labels_key(labels: Mapping[str, Any]) -> LabelsKey:
    return tuple(sorted(labels.items()))


def _require_finite(instrument: str, verb: str, value: float) -> float:
    """Reject NaN/inf before they poison a sum or mean export.

    Mirrors the ``reporting.add_row`` convention: a :class:`ValueError` at
    the call site, instead of a silently corrupted aggregate discovered at
    export time.
    """
    try:
        numeric = float(value)
    except (TypeError, ValueError):
        raise ValueError(
            f"{instrument} {verb} expects a finite number, got {value!r}"
        ) from None
    if not math.isfinite(numeric):
        raise ValueError(f"{instrument} {verb} expects a finite number, got {value!r}")
    return numeric


class Counter:
    """Monotonically increasing count (packets sent, cache hits, ...)."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelsKey) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        amount = _require_finite(f"counter {self.name}", "inc", amount)
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount


class Gauge:
    """A value that can go up and down (active spans, queue depth, ...)."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelsKey) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = _require_finite(f"gauge {self.name}", "set", value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += _require_finite(f"gauge {self.name}", "inc", amount)

    def dec(self, amount: float = 1.0) -> None:
        self.value -= _require_finite(f"gauge {self.name}", "dec", amount)


class Histogram:
    """Distribution summary: ``count``, ``sum``, ``min``, ``max``."""

    kind = "histogram"

    def __init__(self, name: str, labels: LabelsKey) -> None:
        self.name = name
        self.labels = labels
        self.count: int = 0
        self.sum: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = _require_finite(f"histogram {self.name}", "observe", value)
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricSample:
    """One exported data point; ``value`` is a scalar or a histogram dict."""

    __slots__ = ("kind", "name", "labels", "value")

    def __init__(self, kind: str, name: str, labels: Dict[str, Any], value: Any):
        self.kind = kind
        self.name = name
        self.labels = labels
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricSample({self.kind}, {self.name}, {self.labels}, {self.value})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricSample):
            return NotImplemented
        return (self.kind, self.name, self.labels, self.value) == (
            other.kind,
            other.name,
            other.labels,
            other.value,
        )


class MetricsRegistry:
    """Creates and caches instruments; iterable for export.

    ``enabled`` is ``True`` here and ``False`` on :class:`NullRegistry`; hot
    paths that would do real work to *compute* a metric value (rather than
    just increment) guard on it.
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, str, LabelsKey], Any] = {}

    def _get(self, cls: type, name: str, labels: Mapping[str, Any]) -> Any:
        key = (cls.kind, name, _labels_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, key[2])
            self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels)

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._instruments.values())

    def samples(self) -> list[MetricSample]:
        """All instruments as export records, deterministically ordered."""
        out: list[MetricSample] = []
        for (kind, name, labels_key), inst in sorted(
            self._instruments.items(), key=lambda item: _sort_key(item[0])
        ):
            labels = dict(labels_key)
            if kind == "histogram":
                value: Any = {
                    "count": inst.count,
                    "sum": inst.sum,
                    "min": inst.min,
                    "max": inst.max,
                }
            else:
                value = inst.value
            out.append(MetricSample(kind, name, labels, value))
        return out

    def value(self, kind: str, name: str, **labels: Any) -> Any:
        """Current value of one instrument, or ``None`` if never touched."""
        inst = self._instruments.get((kind, name, _labels_key(labels)))
        if inst is None:
            return None
        if kind == "histogram":
            return {"count": inst.count, "sum": inst.sum, "min": inst.min, "max": inst.max}
        return inst.value

    def total(self, name: str, **label_filter: Any) -> float:
        """Sum of every counter/gauge called ``name`` whose labels match.

        ``label_filter`` entries must all be present and equal on the
        instrument's labels; extra labels on the instrument are fine.  This
        is the aggregation the reconciliation tests and the CLI tables use
        (e.g. total tx bytes for ``phase="filter-dissemination"`` across all
        nodes).
        """
        total = 0.0
        wanted = sorted(label_filter.items())
        for (kind, inst_name, labels_key), inst in self._instruments.items():
            if inst_name != name or kind == "histogram":
                continue
            labels = dict(labels_key)
            if all(labels.get(k) == v for k, v in wanted):
                total += inst.value
        return total


class _NullInstrument:
    """Accepts every instrument method as a no-op."""

    kind = "null"
    name = ""
    labels: LabelsKey = ()
    value = 0.0
    count = 0
    sum = 0.0
    min = None
    max = None
    mean = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """Disabled registry: every lookup returns a shared no-op instrument."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, **labels: Any) -> Counter:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return _NULL_INSTRUMENT  # type: ignore[return-value]


#: Shared disabled registry; safe because it holds no state.
NULL_REGISTRY = NullRegistry()


def _sort_key(key: Tuple[str, str, LabelsKey]) -> Tuple[str, str, str]:
    kind, name, labels_key = key
    return (name, kind, repr(labels_key))
