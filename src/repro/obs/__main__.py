"""Query and report over exported telemetry traces.

::

    python -m repro.obs record --nodes 50 --out trace.jsonl   # produce one
    python -m repro.obs summary trace.jsonl                   # what happened
    python -m repro.obs grep trace.jsonl --kind link-retx     # find events
    python -m repro.obs timeline trace.jsonl                  # who, when
    python -m repro.obs energy-breakdown trace.jsonl          # where it went

``record`` runs one traced snapshot query on a fresh deployment at the
paper's density and writes the JSONL export (schema in
``docs/observability.md``); every other subcommand is a pure reader and
works on any export, including ones produced programmatically with
:func:`repro.obs.write_jsonl`.

``energy-breakdown`` is the accounting cross-check: per phase it sums the
measured energy counters and independently *derives* the energy from the
packet/byte counters and the affine radio constants recorded in the trace
header — the two must agree to float precision, a property the test suite
enforces.
"""

from __future__ import annotations

import argparse
import os
import sys
from collections import Counter
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ReproError
from . import reconcile
from .export import TraceLog, read_jsonl, write_jsonl
from .metrics import MetricsRegistry

#: Phase ordering for report tables (protocol order, then anything else).
_PHASE_ORDER = [
    "query-dissemination",
    "join-attribute-collection",
    "filter-dissemination",
    "final-result",
    "external-collection",
]


def _phase_sort_key(phase: str) -> Tuple[int, str]:
    try:
        return (_PHASE_ORDER.index(phase), phase)
    except ValueError:
        return (len(_PHASE_ORDER), phase)


def _phases_in(reg: MetricsRegistry) -> List[str]:
    phases = set()
    for inst in reg:
        labels = dict(inst.labels)
        if "phase" in labels:
            phases.add(labels["phase"])
    return sorted(phases, key=_phase_sort_key)


def _format_table(header: List[str], rows: List[List[str]]) -> str:
    widths = [
        max(len(header[i]), max((len(row[i]) for row in rows), default=0))
        for i in range(len(header))
    ]
    lines = [
        "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(header)),
        "  ".join("-" * widths[i] for i in range(len(header))),
    ]
    for row in rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


# -- record ------------------------------------------------------------------


def _cmd_record(args: argparse.Namespace) -> int:
    from ..bench.workloads import build_scenario, ratio_query_builder
    from ..joins.runner import run_snapshot
    from .telemetry import Telemetry

    scenario = build_scenario(
        node_count=args.nodes, seed=args.seed, loss_rate=args.loss
    )
    # A fixed tail threshold rather than a calibrated one: `record` must be
    # cheap and self-contained (no calibration bisection), and any sensible
    # selectivity exercises all three phases.
    query = ratio_query_builder(1, 3)(args.threshold)
    telemetry = Telemetry.capture(capacity=args.ring)
    outcome = run_snapshot(
        scenario.network,
        scenario.world,
        query,
        args.algorithm,
        tree=scenario.tree,
        tree_seed=scenario.seed,
        disseminate_query=True,
        telemetry=telemetry,
    )
    model = scenario.network.energy_model
    meta = {
        "generator": "repro.obs record",
        "nodes": scenario.node_count,
        "seed": args.seed,
        "loss_rate": args.loss,
        "algorithm": outcome.algorithm,
        "threshold": args.threshold,
        "max_packet_bytes": scenario.network.packet_format.max_packet_bytes,
        "energy_model": {
            "tx_per_packet": model.tx_per_packet,
            "tx_per_byte": model.tx_per_byte,
            "rx_per_packet": model.rx_per_packet,
            "rx_per_byte": model.rx_per_byte,
        },
        "result_matches": outcome.result.match_count,
        "response_time_s": outcome.response_time_s,
        "total_energy_joules": scenario.network.total_energy(),
    }
    lines = write_jsonl(
        args.out, tracer=telemetry.tracer, registry=telemetry.registry, meta=meta
    )
    print(
        f"wrote {args.out}: {len(telemetry.tracer)} events, "
        f"{len(telemetry.registry)} instruments, {lines} lines"
    )
    return 0


# -- summary -----------------------------------------------------------------


def _cmd_summary(args: argparse.Namespace) -> int:
    log = read_jsonl(args.trace)
    meta = log.meta
    print(f"trace {args.trace} (schema {log.schema})")
    if meta:
        interesting = [
            "generator", "nodes", "seed", "loss_rate", "algorithm",
            "result_matches", "response_time_s", "total_energy_joules",
        ]
        parts = [f"{k}={meta[k]}" for k in interesting if k in meta]
        if parts:
            print("  " + ", ".join(parts))
    print(f"{len(log.events)} events, {len(log.metrics)} metric samples", end="")
    print(f", {log.dropped} dropped (ring overflow)" if log.dropped else "")

    counts = Counter(event.kind for event in log.events)
    if counts:
        print("\nevents by kind:")
        from ..bench.ascii_viz import render_histogram

        entries = [(kind, float(count)) for kind, count in counts.most_common()]
        print(render_histogram(entries, width=40))

    spans = [e for e in log.events if e.kind == "span-end"]
    if spans:
        print("\nphase spans:")
        rows = []
        for event in spans:
            detail = event.detail
            rows.append([
                str(detail.get("span", "?")),
                str(event.node_id),
                f"{event.time - float(detail.get('duration_s', 0.0)):.3f}",
                f"{event.time:.3f}",
                f"{float(detail.get('duration_s', 0.0)):.3f}",
                "yes" if detail.get("ok", True) else "NO",
            ])
        print(_format_table(["span", "node", "start", "end", "duration_s", "ok"], rows))

    reg = log.registry()
    phases = _phases_in(reg)
    if phases:
        print("\nper-phase traffic:")
        rows = []
        for phase in phases:
            rows.append([
                phase,
                f"{reg.total('tx_packets_total', phase=phase):.0f}",
                f"{reg.total('tx_bytes_total', phase=phase):.0f}",
                f"{reg.total('retx_packets_total', phase=phase):.0f}",
                f"{reg.total('energy_joules_total', phase=phase):.3f}",
            ])
        print(_format_table(
            ["phase", "tx pkts", "tx bytes", "retx pkts", "energy J"], rows
        ))
    return 0


# -- grep --------------------------------------------------------------------


def _cmd_grep(args: argparse.Namespace) -> int:
    log = read_jsonl(args.trace)
    shown = 0
    for event in log.events:
        if args.kind is not None and event.kind != args.kind:
            continue
        if args.node is not None and event.node_id != args.node:
            continue
        if args.since is not None and event.time < args.since:
            continue
        if args.until is not None and event.time > args.until:
            continue
        print(event)
        shown += 1
        if args.limit is not None and shown >= args.limit:
            print(f"... (limit {args.limit} reached)")
            break
    if shown == 0:
        print("(no matching events)")
    return 0


# -- timeline ----------------------------------------------------------------


def _cmd_timeline(args: argparse.Namespace) -> int:
    from ..bench.ascii_viz import render_timeline

    log = read_jsonl(args.trace)
    events = log.events
    if args.kind is not None:
        events = [e for e in events if e.kind == args.kind]
    label = args.kind or "all kinds"
    print(f"node activity ({label}, {len(events)} events):")
    print(render_timeline(
        [(e.time, e.node_id) for e in events], width=args.width, height=args.height
    ))
    return 0


# -- energy-breakdown --------------------------------------------------------


#: Shared with the differential harness — see :mod:`repro.obs.reconcile`.
_derived_phase_energy = reconcile.derived_phase_energy


def _cmd_energy_breakdown(args: argparse.Namespace) -> int:
    log = read_jsonl(args.trace)
    reg = log.registry()
    phases = _phases_in(reg)
    if not phases:
        print("trace has no per-phase counters (was it recorded with telemetry?)")
        return 1
    model = log.meta.get("energy_model")
    rows = []
    total_measured = 0.0
    worst_delta = 0.0
    for phase in phases:
        measured = reg.total("energy_joules_total", phase=phase)
        total_measured += measured
        row = [
            phase,
            f"{reg.total('tx_packets_total', phase=phase):.0f}",
            f"{reg.total('tx_bytes_total', phase=phase):.0f}",
            f"{reg.total('rx_bytes_total', phase=phase):.0f}",
            f"{reg.total('retx_packets_total', phase=phase):.0f}",
            f"{measured:.6f}",
        ]
        if model is not None:
            derived = _derived_phase_energy(reg, phase, model)
            delta = abs(measured - derived)
            worst_delta = max(worst_delta, delta)
            row.append(f"{derived:.6f}")
            row.append(f"{delta:.2e}")
        rows.append(row)
    header = ["phase", "tx pkts", "tx bytes", "rx bytes", "retx pkts", "energy J"]
    if model is not None:
        header += ["derived J", "|delta|"]
    print(_format_table(header, rows))
    print(f"\ntotal measured energy: {total_measured:.6f} J")
    if "total_energy_joules" in log.meta:
        ledger_total = float(log.meta["total_energy_joules"])
        print(f"ledger total (from meta): {ledger_total:.6f} J "
              f"(|delta| {abs(ledger_total - total_measured):.2e})")
    if model is not None:
        tolerance = reconcile.reconciliation_tolerance(total_measured)
        if worst_delta > tolerance:
            print(
                f"RECONCILIATION FAILED: worst per-phase |delta| {worst_delta:.2e} "
                f"exceeds {tolerance:.2e}",
                file=sys.stderr,
            )
            return 1
        print(f"reconciled: worst per-phase |delta| {worst_delta:.2e}")
    else:
        print("(no energy_model in trace meta; derivation check skipped)")
    from ..bench.ascii_viz import render_histogram

    print("\nenergy by phase:")
    entries = [
        (phase, reg.total("energy_joules_total", phase=phase)) for phase in phases
    ]
    print(render_histogram(entries, width=40))
    return 0


# -- argument parsing --------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect exported telemetry traces (JSONL).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_record = sub.add_parser("record", help="run one traced snapshot and export it")
    p_record.add_argument("--nodes", type=int, default=50)
    p_record.add_argument("--seed", type=int, default=0)
    p_record.add_argument("--loss", type=float, default=0.0,
                          help="per-link loss rate (0 disables the ARQ path)")
    p_record.add_argument("--algorithm", default="sens-join",
                          choices=["sens-join", "external-join"])
    p_record.add_argument("--threshold", type=float, default=6.0,
                          help="tail threshold of the Q1-style join condition")
    p_record.add_argument("--ring", type=int, default=None,
                          help="bound the tracer to the most recent N events")
    p_record.add_argument("--out", default="trace.jsonl")
    p_record.set_defaults(func=_cmd_record)

    p_summary = sub.add_parser("summary", help="header, event and span overview")
    p_summary.add_argument("trace")
    p_summary.set_defaults(func=_cmd_summary)

    p_grep = sub.add_parser("grep", help="filter events by kind/node/time")
    p_grep.add_argument("trace")
    p_grep.add_argument("--kind")
    p_grep.add_argument("--node", type=int)
    p_grep.add_argument("--since", type=float)
    p_grep.add_argument("--until", type=float)
    p_grep.add_argument("--limit", type=int)
    p_grep.set_defaults(func=_cmd_grep)

    p_timeline = sub.add_parser("timeline", help="ASCII node-activity timeline")
    p_timeline.add_argument("trace")
    p_timeline.add_argument("--kind")
    p_timeline.add_argument("--width", type=int, default=72)
    p_timeline.add_argument("--height", type=int, default=20)
    p_timeline.set_defaults(func=_cmd_timeline)

    p_energy = sub.add_parser(
        "energy-breakdown",
        help="per-phase byte/energy table with model reconciliation",
    )
    p_energy.add_argument("trace")
    p_energy.set_defaults(func=_cmd_energy_breakdown)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as error:
        if isinstance(error, BrokenPipeError):
            # Output was piped into something that stopped reading (`| head`).
            devnull = os.open(os.devnull, os.O_WRONLY)
            os.dup2(devnull, sys.stdout.fileno())
            return 0
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
