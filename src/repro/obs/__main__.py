"""Query and report over exported telemetry traces.

::

    python -m repro.obs record --nodes 50 --out trace.jsonl   # produce one
    python -m repro.obs summary trace.jsonl                   # what happened
    python -m repro.obs grep trace.jsonl --kind link-retx     # find events
    python -m repro.obs timeline trace.jsonl                  # who, when
    python -m repro.obs energy-breakdown trace.jsonl          # where it went
    python -m repro.obs compare base.jsonl new.jsonl          # did it regress
    python -m repro.obs hotspots trace.jsonl                  # who pays for it

``record`` runs one traced snapshot query on a fresh deployment at the
paper's density and writes the JSONL export (schema in
``docs/observability.md``); every other subcommand is a pure reader and
works on any export, including ones produced programmatically with
:func:`repro.obs.write_jsonl`.

``energy-breakdown`` is the accounting cross-check: per phase it sums the
measured energy counters and independently *derives* the energy from the
packet/byte counters and the affine radio constants recorded in the trace
header — the two must agree to float precision, a property the test suite
enforces.
"""

from __future__ import annotations

import argparse
import os
import sys
from collections import Counter
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ReproError
from . import reconcile
from .export import TraceLog, read_jsonl, write_jsonl
from .metrics import MetricsRegistry

#: Phase ordering for report tables (protocol order, then anything else).
_PHASE_ORDER = [
    "query-dissemination",
    "join-attribute-collection",
    "filter-dissemination",
    "final-result",
    "external-collection",
    "tree-maintenance",
]

#: Lane grouping for service-layer event kinds (summary/timeline).  The
#: protocol lane is the catch-all; everything the broker and the tree
#: maintenance layer emit gets its own lane so a churned broker trace reads
#: as three interleaved stories instead of one flat histogram.
_KIND_LANES = [
    ("broker", lambda kind: kind.startswith("broker-")),
    ("tree", lambda kind: kind in ("tree-reattach", "fault-inject", "fault-heal")),
    ("slo", lambda kind: kind == "slo-violation"),
]


def _kind_lane(kind: str) -> str:
    for lane, match in _KIND_LANES:
        if match(kind):
            return lane
    return "protocol"


def _phase_sort_key(phase: str) -> Tuple[int, str]:
    try:
        return (_PHASE_ORDER.index(phase), phase)
    except ValueError:
        return (len(_PHASE_ORDER), phase)


def _phases_in(reg: MetricsRegistry) -> List[str]:
    phases = set()
    for inst in reg:
        labels = dict(inst.labels)
        if "phase" in labels:
            phases.add(labels["phase"])
    return sorted(phases, key=_phase_sort_key)


def _format_table(header: List[str], rows: List[List[str]]) -> str:
    widths = [
        max(len(header[i]), max((len(row[i]) for row in rows), default=0))
        for i in range(len(header))
    ]
    lines = [
        "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(header)),
        "  ".join("-" * widths[i] for i in range(len(header))),
    ]
    for row in rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


# -- record ------------------------------------------------------------------


def _cmd_record(args: argparse.Namespace) -> int:
    from ..bench.workloads import build_scenario, ratio_query_builder
    from ..joins.runner import run_snapshot
    from .telemetry import Telemetry

    scenario = build_scenario(
        node_count=args.nodes, seed=args.seed, loss_rate=args.loss
    )
    # A fixed tail threshold rather than a calibrated one: `record` must be
    # cheap and self-contained (no calibration bisection), and any sensible
    # selectivity exercises all three phases.
    query = ratio_query_builder(1, 3)(args.threshold)
    telemetry = Telemetry.capture(capacity=args.ring)
    algorithm: Any = args.algorithm
    sampler = None
    if args.sample_period is not None:
        # Simulated-time sampling rides on the DES kernel's clock; the
        # synchronous snapshot engines have no clock to tick against.
        if args.algorithm != "des-sensjoin":
            raise ReproError(
                "--sample-period needs the event-driven engine: "
                "use --algorithm des-sensjoin"
            )
        from ..joins.des_sensjoin import DesSensJoin
        from .timeseries import MetricsSampler

        sampler = MetricsSampler(telemetry=telemetry, period_s=args.sample_period)
        sampler.watch_network(scenario.network)
        sampler.watch_tree(lambda: scenario.tree)
        algorithm = DesSensJoin(telemetry=telemetry, sampler=sampler)
    outcome = run_snapshot(
        scenario.network,
        scenario.world,
        query,
        algorithm,
        tree=scenario.tree,
        tree_seed=scenario.seed,
        disseminate_query=True,
        telemetry=telemetry,
    )
    model = scenario.network.energy_model
    meta = {
        "generator": "repro.obs record",
        "nodes": scenario.node_count,
        "seed": args.seed,
        "loss_rate": args.loss,
        "algorithm": outcome.algorithm,
        "threshold": args.threshold,
        "max_packet_bytes": scenario.network.packet_format.max_packet_bytes,
        "energy_model": {
            "tx_per_packet": model.tx_per_packet,
            "tx_per_byte": model.tx_per_byte,
            "rx_per_packet": model.rx_per_packet,
            "rx_per_byte": model.rx_per_byte,
        },
        "result_matches": outcome.result.match_count,
        "response_time_s": outcome.response_time_s,
        "total_energy_joules": scenario.network.total_energy(),
    }
    if sampler is not None:
        # Key present only when sampling so sampler-free exports stay
        # byte-identical to pre-sampling builds.
        meta["sample_period_s"] = args.sample_period
    lines = write_jsonl(
        args.out,
        tracer=telemetry.tracer,
        registry=telemetry.registry,
        meta=meta,
        series=sampler.all_series() if sampler is not None else (),
    )
    suffix = ""
    if sampler is not None:
        suffix = f", {len(sampler.all_series())} series"
    print(
        f"wrote {args.out}: {len(telemetry.tracer)} events, "
        f"{len(telemetry.registry)} instruments{suffix}, {lines} lines"
    )
    return 0


# -- summary -----------------------------------------------------------------


def _cmd_summary(args: argparse.Namespace) -> int:
    log = read_jsonl(args.trace)
    meta = log.meta
    print(f"trace {args.trace} (schema {log.schema})")
    if meta:
        interesting = [
            "generator", "nodes", "seed", "loss_rate", "algorithm",
            "result_matches", "response_time_s", "total_energy_joules",
        ]
        parts = [f"{k}={meta[k]}" for k in interesting if k in meta]
        if parts:
            print("  " + ", ".join(parts))
    print(f"{len(log.events)} events, {len(log.metrics)} metric samples", end="")
    print(f", {log.dropped} dropped (ring overflow)" if log.dropped else "")
    if log.dropped:
        print(
            f"WARNING: tracer ring overflowed — {log.dropped} oldest events "
            "are missing; re-record with a larger --ring for a full trace"
        )
    series_dropped = log.series_dropped()
    if series_dropped:
        print(
            f"WARNING: sampler rings overflowed — {series_dropped} oldest "
            "points dropped across series; lower the cadence or raise capacity"
        )

    counts = Counter(event.kind for event in log.events)
    if counts:
        print("\nevents by kind:")
        from ..bench.ascii_viz import render_histogram

        entries = [(kind, float(count)) for kind, count in counts.most_common()]
        print(render_histogram(entries, width=40))
        lanes = Counter(_kind_lane(kind) for kind in counts.elements())
        if len(lanes) > 1:
            parts = [
                f"{lane}={lanes[lane]}"
                for lane, _ in _KIND_LANES if lanes.get(lane)
            ]
            parts.insert(0, f"protocol={lanes.get('protocol', 0)}")
            print("lanes: " + ", ".join(parts))

    if log.series:
        print(f"\ntime series ({len(log.series)}):")
        by_name: Dict[str, List[Any]] = {}
        for sample in log.series:
            by_name.setdefault(sample.name, []).append(sample)
        rows = []
        for name in sorted(by_name):
            group = by_name[name]
            points = sum(len(s.points) for s in group)
            dropped = sum(s.dropped for s in group)
            last_values = [s.last[1] for s in group if s.points]
            rows.append([
                name,
                str(len(group)),
                str(points),
                f"{max(last_values):.3f}" if last_values else "-",
                str(dropped) if dropped else "0",
            ])
        print(_format_table(
            ["series", "instances", "points", "max last", "dropped"], rows
        ))

    spans = [e for e in log.events if e.kind == "span-end"]
    if spans:
        print("\nphase spans:")
        rows = []
        for event in spans:
            detail = event.detail
            rows.append([
                str(detail.get("span", "?")),
                str(event.node_id),
                f"{event.time - float(detail.get('duration_s', 0.0)):.3f}",
                f"{event.time:.3f}",
                f"{float(detail.get('duration_s', 0.0)):.3f}",
                "yes" if detail.get("ok", True) else "NO",
            ])
        print(_format_table(["span", "node", "start", "end", "duration_s", "ok"], rows))

    reg = log.registry()
    phases = _phases_in(reg)
    if phases:
        print("\nper-phase traffic:")
        rows = []
        for phase in phases:
            rows.append([
                phase,
                f"{reg.total('tx_packets_total', phase=phase):.0f}",
                f"{reg.total('tx_bytes_total', phase=phase):.0f}",
                f"{reg.total('retx_packets_total', phase=phase):.0f}",
                f"{reg.total('energy_joules_total', phase=phase):.3f}",
            ])
        print(_format_table(
            ["phase", "tx pkts", "tx bytes", "retx pkts", "energy J"], rows
        ))
    return 0


# -- grep --------------------------------------------------------------------


def _cmd_grep(args: argparse.Namespace) -> int:
    log = read_jsonl(args.trace)
    shown = 0
    for event in log.events:
        if args.kind is not None and event.kind != args.kind:
            continue
        if args.node is not None and event.node_id != args.node:
            continue
        if args.since is not None and event.time < args.since:
            continue
        if args.until is not None and event.time > args.until:
            continue
        print(event)
        shown += 1
        if args.limit is not None and shown >= args.limit:
            print(f"... (limit {args.limit} reached)")
            break
    if shown == 0:
        print("(no matching events)")
    return 0


# -- timeline ----------------------------------------------------------------


def _cmd_timeline(args: argparse.Namespace) -> int:
    from ..bench.ascii_viz import render_sparkline, render_timeline

    log = read_jsonl(args.trace)
    events = log.events
    if args.kind is not None:
        events = [e for e in events if e.kind == args.kind]
    label = args.kind or "all kinds"
    if args.by == "kind":
        # One density lane per service layer: protocol chatter, broker
        # admission, tree maintenance and SLO breaches each get their own
        # sparkline over a shared time axis.
        if not events:
            print("(no events)")
            return 0
        t_lo = min(e.time for e in events)
        t_hi = max(e.time for e in events)
        span = max(t_hi - t_lo, 1e-12)
        lanes: Dict[str, List[float]] = {}
        for event in events:
            lanes.setdefault(_kind_lane(event.kind), []).append(event.time)
        print(
            f"event lanes ({label}, {len(events)} events, "
            f"t=[{t_lo:.3f}, {t_hi:.3f}]s):"
        )
        width = max(args.width, 8)
        name_w = max(len(name) for name in lanes)
        for lane_name, _ in _KIND_LANES + [("protocol", None)]:
            times = lanes.get(lane_name)
            if not times:
                continue
            bins = [0.0] * width
            for t in times:
                index = min(int((t - t_lo) / span * width), width - 1)
                bins[index] += 1.0
            print(
                f"{lane_name.rjust(name_w)} |{render_sparkline(bins)}| "
                f"{len(times)} events"
            )
        return 0
    print(f"node activity ({label}, {len(events)} events):")
    print(render_timeline(
        [(e.time, e.node_id) for e in events], width=args.width, height=args.height
    ))
    return 0


# -- energy-breakdown --------------------------------------------------------


#: Shared with the differential harness — see :mod:`repro.obs.reconcile`.
_derived_phase_energy = reconcile.derived_phase_energy


def _cmd_energy_breakdown(args: argparse.Namespace) -> int:
    log = read_jsonl(args.trace)
    reg = log.registry()
    phases = _phases_in(reg)
    if not phases:
        print("trace has no per-phase counters (was it recorded with telemetry?)")
        return 1
    model = log.meta.get("energy_model")
    rows = []
    total_measured = 0.0
    worst_delta = 0.0
    for phase in phases:
        measured = reg.total("energy_joules_total", phase=phase)
        total_measured += measured
        row = [
            phase,
            f"{reg.total('tx_packets_total', phase=phase):.0f}",
            f"{reg.total('tx_bytes_total', phase=phase):.0f}",
            f"{reg.total('rx_bytes_total', phase=phase):.0f}",
            f"{reg.total('retx_packets_total', phase=phase):.0f}",
            f"{measured:.6f}",
        ]
        if model is not None:
            derived = _derived_phase_energy(reg, phase, model)
            delta = abs(measured - derived)
            worst_delta = max(worst_delta, delta)
            row.append(f"{derived:.6f}")
            row.append(f"{delta:.2e}")
        rows.append(row)
    header = ["phase", "tx pkts", "tx bytes", "rx bytes", "retx pkts", "energy J"]
    if model is not None:
        header += ["derived J", "|delta|"]
    print(_format_table(header, rows))
    print(f"\ntotal measured energy: {total_measured:.6f} J")
    if "total_energy_joules" in log.meta:
        ledger_total = float(log.meta["total_energy_joules"])
        print(f"ledger total (from meta): {ledger_total:.6f} J "
              f"(|delta| {abs(ledger_total - total_measured):.2e})")
    if model is not None:
        tolerance = reconcile.reconciliation_tolerance(total_measured)
        if worst_delta > tolerance:
            print(
                f"RECONCILIATION FAILED: worst per-phase |delta| {worst_delta:.2e} "
                f"exceeds {tolerance:.2e}",
                file=sys.stderr,
            )
            return 1
        print(f"reconciled: worst per-phase |delta| {worst_delta:.2e}")
    else:
        print("(no energy_model in trace meta; derivation check skipped)")
    from ..bench.ascii_viz import render_histogram

    print("\nenergy by phase:")
    entries = [
        (phase, reg.total("energy_joules_total", phase=phase)) for phase in phases
    ]
    print(render_histogram(entries, width=40))
    return 0


# -- compare -----------------------------------------------------------------


def _relative_change(before: float, after: float) -> Optional[float]:
    """Fractional change, or ``None`` when a zero baseline makes it moot."""
    if before == 0.0:
        return None if after == 0.0 else float("inf")
    return (after - before) / abs(before)


def _format_change(change: Optional[float]) -> str:
    if change is None:
        return "-"
    if change == float("inf"):
        return "new"
    return f"{change * 100.0:+.2f}%"


def _counter_totals(reg: MetricsRegistry) -> Dict[str, float]:
    totals: Dict[str, float] = {}
    for sample in reg.samples():
        if sample.kind == "histogram":
            continue
        totals[sample.name] = totals.get(sample.name, 0.0) + float(sample.value)
    return totals


def _last_series_values(log: TraceLog) -> Dict[str, float]:
    """Final value of every *unlabeled* series (rolling broker aggregates)."""
    values: Dict[str, float] = {}
    for sample in log.series:
        if not dict(sample.labels) and sample.points:
            values[sample.name] = sample.last[1]
    return values


def _cmd_compare(args: argparse.Namespace) -> int:
    log_a = read_jsonl(args.trace_a)
    log_b = read_jsonl(args.trace_b)
    reg_a, reg_b = log_a.registry(), log_b.registry()
    print(f"compare {args.trace_a} (A) -> {args.trace_b} (B)")

    # Counter deltas (informational): every counter/gauge family by name.
    totals_a = _counter_totals(reg_a)
    totals_b = _counter_totals(reg_b)
    names = sorted(set(totals_a) | set(totals_b))
    changed = [
        name for name in names
        if totals_a.get(name, 0.0) != totals_b.get(name, 0.0)
    ]
    if changed:
        print("\ncounter shifts:")
        rows = []
        for name in changed:
            before = totals_a.get(name, 0.0)
            after = totals_b.get(name, 0.0)
            rows.append([
                name, f"{before:.3f}", f"{after:.3f}",
                _format_change(_relative_change(before, after)),
            ])
        print(_format_table(["counter", "A", "B", "shift"], rows))
    else:
        print("\ncounter shifts: none")

    # Rolling-aggregate shifts (informational): final value per series.
    series_a = _last_series_values(log_a)
    series_b = _last_series_values(log_b)
    shared = sorted(set(series_a) & set(series_b))
    moved = [name for name in shared if series_a[name] != series_b[name]]
    if moved:
        print("\nseries shifts (final values):")
        rows = [
            [
                name, f"{series_a[name]:.4f}", f"{series_b[name]:.4f}",
                _format_change(_relative_change(series_a[name], series_b[name])),
            ]
            for name in moved
        ]
        print(_format_table(["series", "A", "B", "shift"], rows))

    # The gate: per-phase energy regression beyond --tolerance fails.
    phases = sorted(
        set(_phases_in(reg_a)) | set(_phases_in(reg_b)), key=_phase_sort_key
    )
    regressions = []
    if phases:
        print("\nper-phase energy:")
        rows = []
        for phase in phases:
            before = reg_a.total("energy_joules_total", phase=phase)
            after = reg_b.total("energy_joules_total", phase=phase)
            change = _relative_change(before, after)
            regressed = (
                change == float("inf")
                or (change is not None and change > args.tolerance)
            )
            if regressed:
                regressions.append((phase, before, after))
            rows.append([
                phase, f"{before:.6f}", f"{after:.6f}",
                _format_change(change), "REGRESSED" if regressed else "ok",
            ])
        print(_format_table(["phase", "A (J)", "B (J)", "shift", "verdict"], rows))
    else:
        print("\nper-phase energy: no per-phase counters in either trace")

    if regressions:
        worst = max(regressions, key=lambda r: r[2] - r[1])
        print(
            f"\nENERGY REGRESSION: {len(regressions)} phase(s) exceed "
            f"+{args.tolerance * 100.0:.1f}% (worst: {worst[0]} "
            f"{worst[1]:.6f} J -> {worst[2]:.6f} J)",
            file=sys.stderr,
        )
        return 1
    print(f"\nno energy regression (tolerance +{args.tolerance * 100.0:.1f}%)")
    return 0


# -- hotspots ----------------------------------------------------------------


def _gini(values: List[float]) -> float:
    """Gini index of a non-negative sample; 0 = perfectly even load."""
    if not values:
        return 0.0
    ordered = sorted(values)
    total = sum(ordered)
    if total <= 0.0:
        return 0.0
    n = len(ordered)
    # Mean absolute difference formulation via the sorted prefix weights.
    weighted = sum((2 * (i + 1) - n - 1) * v for i, v in enumerate(ordered))
    return weighted / (n * total)


def _cmd_hotspots(args: argparse.Namespace) -> int:
    from ..sim.node import BASE_STATION_ID

    log = read_jsonl(args.trace)
    source = "series node_energy_j"
    energies: Dict[int, float] = {}
    for sample in log.series_named("node_energy_j"):
        node = dict(sample.labels).get("node")
        if node is not None and sample.points:
            energies[int(node)] = sample.last[1]
    if not energies:
        # Sampler-free traces still carry per-node energy counters.
        source = "counter energy_joules_total{node=...}"
        for sample in log.registry().samples():
            if sample.kind == "histogram" or sample.name != "energy_joules_total":
                continue
            node = dict(sample.labels).get("node")
            if node is not None:
                energies[int(node)] = energies.get(int(node), 0.0) + float(
                    sample.value
                )
    if not energies:
        print(
            "trace has no per-node energy (record with --sample-period or "
            "telemetry enabled)",
            file=sys.stderr,
        )
        return 2
    depths: Dict[int, float] = {}
    for sample in log.series_named("node_tree_depth"):
        node = dict(sample.labels).get("node")
        if node is not None and sample.points:
            depths[int(node)] = sample.last[1]

    sensors = {n: e for n, e in energies.items() if n != BASE_STATION_ID}
    pool = sensors if sensors else energies
    total = sum(pool.values())
    mean = total / len(pool)
    peak = max(pool.values())
    ranked = sorted(pool.items(), key=lambda item: (-item[1], item[0]))
    top = ranked[: args.top]
    print(f"energy hotspots ({source}, {len(pool)} sensor nodes):")
    rows = []
    for node, energy in top:
        row = [
            str(node),
            f"{energy:.6f}",
            f"{(energy / total * 100.0) if total else 0.0:.1f}%",
            f"{energy / mean:.2f}x" if mean else "-",
        ]
        row.append(f"{depths[node]:.0f}" if node in depths else "-")
        rows.append(row)
    print(_format_table(["node", "energy J", "share", "vs mean", "depth"], rows))
    imbalance = peak / mean if mean else 0.0
    print(
        f"\nimbalance: max/mean {imbalance:.2f}, "
        f"Gini {_gini(list(pool.values())):.3f}"
    )
    if depths:
        shallow = sum(1 for node, _ in top if depths.get(node, 99.0) <= 2.0)
        print(
            f"top-{len(top)} within 2 hops of the base station: "
            f"{shallow}/{len(top)} (the collection funnel)"
        )
    return 0


# -- argument parsing --------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect exported telemetry traces (JSONL).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_record = sub.add_parser("record", help="run one traced snapshot and export it")
    p_record.add_argument("--nodes", type=int, default=50)
    p_record.add_argument("--seed", type=int, default=0)
    p_record.add_argument("--loss", type=float, default=0.0,
                          help="per-link loss rate (0 disables the ARQ path)")
    p_record.add_argument("--algorithm", default="sens-join",
                          choices=["sens-join", "external-join", "des-sensjoin"])
    p_record.add_argument("--threshold", type=float, default=6.0,
                          help="tail threshold of the Q1-style join condition")
    p_record.add_argument("--ring", type=int, default=None,
                          help="bound the tracer to the most recent N events")
    p_record.add_argument("--sample-period", type=float, default=None,
                          help="sample gauges every N simulated seconds "
                               "(des-sensjoin only; off by default)")
    p_record.add_argument("--out", default="trace.jsonl")
    p_record.set_defaults(func=_cmd_record)

    p_summary = sub.add_parser("summary", help="header, event and span overview")
    p_summary.add_argument("trace")
    p_summary.set_defaults(func=_cmd_summary)

    p_grep = sub.add_parser("grep", help="filter events by kind/node/time")
    p_grep.add_argument("trace")
    p_grep.add_argument("--kind")
    p_grep.add_argument("--node", type=int)
    p_grep.add_argument("--since", type=float)
    p_grep.add_argument("--until", type=float)
    p_grep.add_argument("--limit", type=int)
    p_grep.set_defaults(func=_cmd_grep)

    p_timeline = sub.add_parser("timeline", help="ASCII node-activity timeline")
    p_timeline.add_argument("trace")
    p_timeline.add_argument("--kind")
    p_timeline.add_argument("--by", choices=["node", "kind"], default="node",
                            help="node: per-node scatter; kind: one density "
                                 "lane per event family (broker/tree/slo)")
    p_timeline.add_argument("--width", type=int, default=72)
    p_timeline.add_argument("--height", type=int, default=20)
    p_timeline.set_defaults(func=_cmd_timeline)

    p_energy = sub.add_parser(
        "energy-breakdown",
        help="per-phase byte/energy table with model reconciliation",
    )
    p_energy.add_argument("trace")
    p_energy.set_defaults(func=_cmd_energy_breakdown)

    p_compare = sub.add_parser(
        "compare",
        help="diff two traces; non-zero exit on per-phase energy regression",
    )
    p_compare.add_argument("trace_a", help="baseline export (A)")
    p_compare.add_argument("trace_b", help="candidate export (B)")
    p_compare.add_argument("--tolerance", type=float, default=0.05,
                           help="allowed fractional per-phase energy growth "
                                "before the compare fails (default 0.05)")
    p_compare.set_defaults(func=_cmd_compare)

    p_hotspots = sub.add_parser(
        "hotspots",
        help="top-K per-node energy with imbalance indices (max/mean, Gini)",
    )
    p_hotspots.add_argument("trace")
    p_hotspots.add_argument("--top", type=int, default=10)
    p_hotspots.set_defaults(func=_cmd_hotspots)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as error:
        if isinstance(error, BrokenPipeError):
            # Output was piped into something that stopped reading (`| head`).
            devnull = os.open(os.devnull, os.O_WRONLY)
            os.dup2(devnull, sys.stdout.fileno())
            return 0
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
