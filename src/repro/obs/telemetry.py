"""The telemetry handle threaded through the simulation.

A :class:`Telemetry` bundles the two halves of observability — a
:class:`~repro.sim.trace.Tracer` for narrative events and a
:class:`~repro.obs.metrics.MetricsRegistry` for numbers — behind one object
that protocol code can hold unconditionally.  The module-level
:data:`NULL_TELEMETRY` is the default everywhere: both halves are no-ops and
``enabled`` is ``False``, so instrumented code paths stay byte-identical to
their uninstrumented behaviour (no extra RNG draws, no extra allocation on
the packet hot path).

Phase spans
-----------

:meth:`Telemetry.span` is a context manager that brackets a protocol phase:

.. code-block:: python

    with telemetry.span("filter-dissemination", node_id=0, start=t0) as sp:
        ...
        sp.end = last_arrival   # analytic protocols set the end explicitly

On entry it emits a :data:`~repro.sim.trace.SPAN_START` event; on exit a
:data:`~repro.sim.trace.SPAN_END` event carrying ``duration_s``, and the
duration is observed into the ``span_seconds`` histogram labelled with the
span name.  Simulated time comes either from an explicit ``start=``/
``sp.end`` (the synchronous :class:`~repro.joins.sensjoin.SensJoin` computes
its phase boundaries analytically) or from the ``clock`` callable (the DES
engine passes ``lambda: env.now``).  Spans nest and are exception-safe: a
span abandoned by a phase timeout still closes, flagged ``ok=False``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional

from ..sim.trace import (
    ListTracer,
    NullTracer,
    RingTracer,
    SPAN_END,
    SPAN_START,
    Tracer,
)
from .metrics import MetricsRegistry, NULL_REGISTRY

__all__ = ["Telemetry", "Span", "NULL_TELEMETRY"]


class Span:
    """A live phase span; mutate :attr:`end` to override the close time."""

    __slots__ = ("name", "node_id", "labels", "start", "end", "ok")

    def __init__(self, name: str, node_id: int, start: float, labels: dict[str, Any]):
        self.name = name
        self.node_id = node_id
        self.labels = labels
        self.start = start
        #: Close time; defaults to the clock (or :attr:`start`) at exit.
        self.end: Optional[float] = None
        self.ok = True

    @property
    def duration_s(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start


class Telemetry:
    """Tracer + registry + clock, with a cheap disabled default.

    ``clock`` supplies "now" in simulated seconds for spans that do not pass
    explicit times; it defaults to a constant 0.0 (fine for analytic
    protocols, which always pass explicit times).
    """

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricsRegistry] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else NullTracer()
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.clock = clock if clock is not None else (lambda: 0.0)

    @property
    def enabled(self) -> bool:
        """True when any half of the telemetry does real work."""
        return self.registry.enabled or not isinstance(self.tracer, NullTracer)

    @classmethod
    def capture(
        cls,
        capacity: Optional[int] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> "Telemetry":
        """A live telemetry: recording tracer + real registry.

        ``capacity`` bounds the tracer (:class:`RingTracer`); ``None`` keeps
        everything (:class:`ListTracer`).
        """
        tracer: Tracer = ListTracer() if capacity is None else RingTracer(capacity)
        return cls(tracer=tracer, registry=MetricsRegistry(), clock=clock)

    def with_clock(self, clock: Callable[[], float]) -> "Telemetry":
        """This telemetry's sinks under a different clock (shared state)."""
        return Telemetry(tracer=self.tracer, registry=self.registry, clock=clock)

    @contextmanager
    def span(
        self,
        name: str,
        node_id: int = -1,
        start: Optional[float] = None,
        **labels: Any,
    ) -> Iterator[Span]:
        """Bracket a protocol phase with start/end events and a histogram.

        See the module docstring for semantics.  With telemetry disabled
        this still yields a :class:`Span` (so callers can set ``sp.end``
        unconditionally) but emits and observes nothing.
        """
        t0 = self.clock() if start is None else start
        sp = Span(name, node_id, t0, labels)
        if not self.enabled:
            yield sp
            return
        self.tracer.emit(t0, node_id, SPAN_START, span=name, **labels)
        try:
            yield sp
        except BaseException:
            sp.ok = False
            raise
        finally:
            t1 = sp.end if sp.end is not None else self.clock()
            if t1 < t0:
                t1 = t0
            self.tracer.emit(
                t1,
                node_id,
                SPAN_END,
                span=name,
                duration_s=t1 - t0,
                ok=sp.ok,
                **labels,
            )
            self.registry.histogram("span_seconds", span=name, **labels).observe(t1 - t0)


#: The disabled default: no tracer, no registry, zero-duration clock.
NULL_TELEMETRY = Telemetry(tracer=NullTracer(), registry=NULL_REGISTRY)
