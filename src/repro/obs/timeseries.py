"""Simulated-time series: ring-bounded samples, rolling windows, SLOs.

The registry (:mod:`repro.obs.metrics`) answers *how much* a run cost; this
module answers *when* and *where* the cost accrued.  Three pieces:

:class:`Series`
    A named, labelled sequence of ``(time, value)`` points with bounded
    (ring) storage — evictions are counted in ``dropped``, mirroring
    :class:`~repro.sim.trace.RingTracer`, so exports stay honest about
    truncation.
:class:`WindowedAggregate`
    A rolling window over simulated seconds with count/sum/mean/min/max,
    nearest-rank percentiles and an events-per-second rate — the arithmetic
    behind the broker's latency/throughput/deadline-miss monitors.
:class:`MetricsSampler`
    The actual sampler: probes (per-node network gauges, routing-tree
    depth/churn, registry counter snapshots, or anything a caller
    registers) are evaluated every ``period_s`` simulated seconds and the
    readings appended to series.  Declarative :class:`SloPolicy` bounds are
    checked at every tick; a breach emits an ``slo-violation`` trace event
    and increments ``slo_violations_total{policy=...}``.

Three drive modes cover every engine in the repo:

* ``sampler.attach(env)`` registers a periodic kernel process
  (:meth:`repro.sim.kernel.Environment.every`) — the DES engine's mode;
* ``sampler.advance_to(now)`` emits every tick due up to ``now`` — the
  broker's mode (its synchronous clock jumps batch to batch);
* ``sampler.sample(now)`` takes one snapshot explicitly.

Sampling is **off by default** everywhere: no protocol constructs a
sampler on its own, and a run without one is byte-identical to a build
without this module.  A sampler over :data:`~repro.obs.telemetry.NULL_TELEMETRY`
is safe — series still record; only the SLO counter and trace event sinks
are no-ops.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import ReproError
from ..sim.node import BASE_STATION_ID
from ..sim.trace import SLO_VIOLATION
from .telemetry import NULL_TELEMETRY, Telemetry

__all__ = [
    "Series",
    "WindowedAggregate",
    "SloPolicy",
    "MetricsSampler",
    "DEFAULT_SERIES_CAPACITY",
]

#: Ring bound per series: at a 1 s cadence this is ~17 simulated minutes of
#: history per gauge, and a 150-node run stays well under 1 MB of points.
DEFAULT_SERIES_CAPACITY = 1024

#: One probe reading: ``(series_name, labels, value)``.
Reading = Tuple[str, Mapping[str, Any], float]


def _require_finite(value: float, what: str) -> float:
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"{what} must be finite, got {value!r}")
    return value


class Series:
    """A named, labelled, ring-bounded sequence of ``(time, value)`` points."""

    __slots__ = ("name", "labels", "capacity", "_points", "dropped")

    def __init__(
        self,
        name: str,
        labels: Optional[Mapping[str, Any]] = None,
        capacity: int = DEFAULT_SERIES_CAPACITY,
    ):
        if not name or not isinstance(name, str):
            raise ValueError(f"series name must be a non-empty string, got {name!r}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.name = name
        self.labels: Dict[str, Any] = dict(labels or {})
        self.capacity = capacity
        self._points: deque[Tuple[float, float]] = deque(maxlen=capacity)
        #: Points discarded because the ring was full (oldest-first).
        self.dropped = 0

    def append(self, time_s: float, value: float) -> None:
        """Record one sample; evicts the oldest point when the ring is full."""
        time_s = _require_finite(time_s, "sample time")
        value = _require_finite(value, f"series {self.name!r} value")
        if self._points and time_s < self._points[-1][0]:
            raise ValueError(
                f"series {self.name!r} sampled backwards in time: "
                f"{time_s} after {self._points[-1][0]}"
            )
        if len(self._points) == self.capacity:
            self.dropped += 1
        self._points.append((time_s, value))

    @property
    def points(self) -> List[Tuple[float, float]]:
        """The retained ``(time, value)`` points, oldest first."""
        return list(self._points)

    def times(self) -> List[float]:
        return [t for t, _ in self._points]

    def values(self) -> List[float]:
        return [v for _, v in self._points]

    @property
    def last(self) -> Optional[Tuple[float, float]]:
        """The most recent point, or None if nothing was sampled yet."""
        return self._points[-1] if self._points else None

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(self._points)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Series({self.name!r}, labels={self.labels!r}, "
            f"points={len(self._points)}, dropped={self.dropped})"
        )


class WindowedAggregate:
    """Rolling statistics over the last ``window_s`` simulated seconds.

    ``observe(t, v)`` appends and evicts everything older than
    ``t - window_s``; observations must arrive in non-decreasing time order
    (simulated clocks never run backwards).  Percentiles are nearest-rank
    over the retained values — the same convention as
    :meth:`repro.service.broker.BrokerReport.latency_percentile` — computed
    against a sorted mirror kept incrementally, so a tick that reads p50,
    p95 and p99 sorts nothing.
    """

    __slots__ = ("window_s", "_points", "_sorted", "_sum")

    def __init__(self, window_s: float):
        if window_s <= 0:
            raise ValueError(f"window must be positive, got {window_s!r}")
        self.window_s = float(window_s)
        self._points: deque[Tuple[float, float]] = deque()
        self._sorted: List[float] = []
        self._sum = 0.0

    def observe(self, time_s: float, value: float) -> None:
        time_s = _require_finite(time_s, "observation time")
        value = _require_finite(value, "observation value")
        if self._points and time_s < self._points[-1][0]:
            raise ValueError(
                f"window observed backwards in time: {time_s} "
                f"after {self._points[-1][0]}"
            )
        self._points.append((time_s, value))
        insort(self._sorted, value)
        self._sum += value
        self._evict(time_s)

    def advance(self, now: float) -> None:
        """Evict expired points without adding one (an idle tick)."""
        self._evict(float(now))

    def _evict(self, now: float) -> None:
        horizon = now - self.window_s
        points = self._points
        while points and points[0][0] < horizon:
            _, old = points.popleft()
            # Remove one occurrence from the sorted mirror (bisect gives the
            # leftmost index of an equal run; any occurrence is equivalent).
            index = bisect_left(self._sorted, old)
            del self._sorted[index]
            self._sum -= old

    @property
    def count(self) -> int:
        return len(self._points)

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / len(self._points) if self._points else 0.0

    @property
    def minimum(self) -> float:
        return self._sorted[0] if self._sorted else 0.0

    @property
    def maximum(self) -> float:
        return self._sorted[-1] if self._sorted else 0.0

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile of the windowed values (0 when empty)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1]: {fraction}")
        if not self._sorted:
            return 0.0
        rank = int(round(fraction * (len(self._sorted) - 1)))
        return self._sorted[max(0, min(rank, len(self._sorted) - 1))]

    def rate(self) -> float:
        """Observations per simulated second over the window."""
        return len(self._points) / self.window_s


@dataclass(frozen=True)
class SloPolicy:
    """A declarative bound on one sampled series.

    At every sampling tick the monitor reads the named (unlabelled) series'
    current value; a value above ``max_value`` or below ``min_value`` is a
    violation — an ``slo-violation`` trace event is emitted and
    ``slo_violations_total{policy=...}`` incremented.  A policy with
    neither bound is rejected (it could never fire).
    """

    name: str
    series: str
    max_value: Optional[float] = None
    min_value: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("SloPolicy needs a non-empty name")
        if not self.series:
            raise ValueError(f"SloPolicy {self.name!r} needs a series name")
        if self.max_value is None and self.min_value is None:
            raise ValueError(
                f"SloPolicy {self.name!r} needs max_value and/or min_value"
            )

    def ok(self, value: float) -> bool:
        """True when ``value`` satisfies the bound(s)."""
        if self.max_value is not None and value > self.max_value:
            return False
        if self.min_value is not None and value < self.min_value:
            return False
        return True

    def bound_text(self) -> str:
        parts = []
        if self.max_value is not None:
            parts.append(f"<= {self.max_value:g}")
        if self.min_value is not None:
            parts.append(f">= {self.min_value:g}")
        return " and ".join(parts)


class _NetworkWatch:
    """Per-node gauge probe over a live :class:`~repro.sim.network.Network`.

    Ledgers and statistics are wiped by ``reset_accounting`` between broker
    epochs, so raw reads would saw-tooth.  The watch keeps a banked base per
    node and exposes *cumulative* spend/traffic: the driver calls
    :meth:`bank` immediately before each reset (see
    ``QueryBroker._reset_accounting``), and a read that is smaller than the
    previous one (a reset the driver could not announce) banks defensively.
    """

    def __init__(self, network, battery_j: Optional[float] = None):
        self.network = network
        self.battery_j = battery_j
        self._energy_base: Dict[int, float] = {}
        self._energy_last: Dict[int, float] = {}
        self._tx_base: Dict[int, float] = {}
        self._tx_last: Dict[int, float] = {}
        self._rx_base: Dict[int, float] = {}
        self._rx_last: Dict[int, float] = {}

    def bank(self) -> None:
        """Fold the current readings into the per-node base offsets."""
        for node_id, energy in self.network.energy_by_node().items():
            self._energy_base[node_id] = self._energy_base.get(node_id, 0.0) + energy
            self._energy_last[node_id] = 0.0
        stats = self.network.stats
        for node_id in self.network.nodes:
            self._tx_base[node_id] = self._tx_base.get(node_id, 0.0) + float(
                stats.node_tx_packets(node_id)
            )
            self._tx_last[node_id] = 0.0
            self._rx_base[node_id] = self._rx_base.get(node_id, 0.0) + float(
                stats.node_rx_packets(node_id)
            )
            self._rx_last[node_id] = 0.0

    def _cumulative(
        self,
        node_id: int,
        raw: float,
        base: Dict[int, float],
        last: Dict[int, float],
    ) -> float:
        previous = last.get(node_id, 0.0)
        if raw < previous:  # an unannounced reset: bank the finished epoch
            base[node_id] = base.get(node_id, 0.0) + previous
        last[node_id] = raw
        return base.get(node_id, 0.0) + raw

    def __call__(self, now: float) -> Iterable[Reading]:
        stats = self.network.stats
        for node_id in sorted(self.network.nodes):
            labels = {"node": node_id}
            energy = self._cumulative(
                node_id,
                self.network.nodes[node_id].ledger.total_energy,
                self._energy_base,
                self._energy_last,
            )
            yield "node_energy_j", labels, energy
            if self.battery_j is not None:
                yield "node_residual_j", labels, self.battery_j - energy
            yield "node_tx_packets", labels, self._cumulative(
                node_id, float(stats.node_tx_packets(node_id)),
                self._tx_base, self._tx_last,
            )
            yield "node_rx_packets", labels, self._cumulative(
                node_id, float(stats.node_rx_packets(node_id)),
                self._rx_base, self._rx_last,
            )


class _TreeWatch:
    """Tree-depth gauges plus a parent-churn counter between ticks."""

    def __init__(self, provider: Callable[[], Any]):
        self.provider = provider
        self._previous_parents: Optional[Dict[int, Optional[int]]] = None
        self._churn_total = 0

    def __call__(self, now: float) -> Iterable[Reading]:
        tree = self.provider()
        parents = dict(tree.as_parent_map())
        if self._previous_parents is not None:
            changed = sum(
                1
                for node_id, parent in parents.items()
                if self._previous_parents.get(node_id, parent) != parent
            )
            changed += sum(
                1 for node_id in self._previous_parents if node_id not in parents
            )
            self._churn_total += changed
        self._previous_parents = parents
        yield "tree_parent_churn_total", {}, float(self._churn_total)
        yield "tree_height", {}, float(tree.height)
        for node_id in sorted(parents):
            yield "node_tree_depth", {"node": node_id}, float(tree.depth(node_id))


class MetricsSampler:
    """Snapshot probes into ring-bounded series every N simulated seconds.

    Construction is cheap and side-effect free; the sampler only runs when
    a driver ticks it (kernel process, ``advance_to``, or ``sample``).
    """

    def __init__(
        self,
        telemetry: Optional[Telemetry] = None,
        period_s: float = 1.0,
        capacity: int = DEFAULT_SERIES_CAPACITY,
        policies: Sequence[SloPolicy] = (),
    ):
        if period_s <= 0:
            raise ValueError(f"sampling period must be positive, got {period_s!r}")
        if capacity <= 0:
            raise ValueError(f"series capacity must be positive, got {capacity}")
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.period_s = float(period_s)
        self.capacity = capacity
        self.policies: Tuple[SloPolicy, ...] = tuple(policies)
        names = [p.name for p in self.policies]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SloPolicy names: {names}")
        self._series: Dict[Tuple[str, Tuple[Tuple[str, Any], ...]], Series] = {}
        self._probes: List[Callable[[float], Iterable[Reading]]] = []
        self._network_watch: Optional[_NetworkWatch] = None
        self._counter_names: Tuple[str, ...] = ()
        #: Number of samples taken so far (ticks across all drive modes).
        self.samples_taken = 0
        #: Time of the most recent sample; ``advance_to`` continues from here.
        self.last_sample_s: Optional[float] = None
        #: Violations recorded per policy name (also counted in the registry).
        self.violations: Dict[str, int] = {}

    # -- series storage ------------------------------------------------------

    def series(self, name: str, **labels: Any) -> Series:
        """The series for ``name`` + ``labels``, created on first use."""
        key = (name, tuple(sorted(labels.items())))
        found = self._series.get(key)
        if found is None:
            found = Series(name, labels, capacity=self.capacity)
            self._series[key] = found
        return found

    def all_series(self) -> List[Series]:
        """Every series, deterministically ordered (name, then labels)."""
        return [
            self._series[key]
            for key in sorted(self._series, key=lambda k: (k[0], repr(k[1])))
        ]

    @property
    def dropped(self) -> int:
        """Total ring evictions across all series (sampler overflow)."""
        return sum(series.dropped for series in self._series.values())

    def __len__(self) -> int:
        return len(self._series)

    # -- probes --------------------------------------------------------------

    def add_probe(self, probe: Callable[[float], Iterable[Reading]]) -> None:
        """Register ``probe(now) -> iterable of (name, labels, value)``."""
        self._probes.append(probe)

    def watch_network(self, network, battery_j: Optional[float] = None) -> None:
        """Sample per-node energy and tx/rx traffic gauges from ``network``.

        ``battery_j`` additionally derives ``node_residual_j`` (initial
        budget minus cumulative spend) — the lifetime view power-aware
        routing optimizes for.
        """
        if self._network_watch is not None:
            raise ReproError("sampler already watches a network")
        self._network_watch = _NetworkWatch(network, battery_j)
        self._probes.append(self._network_watch)

    def watch_tree(self, provider: Callable[[], Any]) -> None:
        """Sample tree depth/height and parent churn; ``provider`` returns
        the *current* :class:`~repro.routing.tree.RoutingTree` (it changes
        when a broker heals after churn)."""
        self._probes.append(_TreeWatch(provider))

    def watch_counters(self, names: Sequence[str]) -> None:
        """Snapshot ``registry.total(name)`` for each name at every tick."""
        self._counter_names = tuple(names)

    def note_network_reset(self) -> None:
        """Bank per-node readings before a ``reset_accounting`` wipe."""
        if self._network_watch is not None:
            self._network_watch.bank()

    # -- drive modes ---------------------------------------------------------

    def sample(self, now: float) -> None:
        """Take one snapshot at simulated time ``now``."""
        now = _require_finite(now, "sample time")
        tick_values: Dict[str, float] = {}
        for probe in self._probes:
            for name, labels, value in probe(now):
                self.series(name, **labels).append(now, value)
                if not labels:
                    tick_values[name] = value
        registry = self.telemetry.registry
        if self._counter_names and registry.enabled:
            for name in self._counter_names:
                value = registry.total(name)
                self.series(name).append(now, value)
                tick_values[name] = value
        self.samples_taken += 1
        self.last_sample_s = now
        self._check_policies(now, tick_values)

    def advance_to(self, now: float) -> int:
        """Emit every tick due in ``(last_sample, now]``; returns the count.

        Ticks land on multiples of ``period_s`` from time zero, so two runs
        that reach the same clock the same way produce identical series
        regardless of how often the driver calls this.
        """
        now = _require_finite(now, "advance time")
        emitted = 0
        last = self.last_sample_s if self.last_sample_s is not None else 0.0
        next_tick = (math.floor(last / self.period_s) + 1) * self.period_s
        while next_tick <= now:
            self.sample(next_tick)
            emitted += 1
            next_tick += self.period_s
        return emitted

    def flush(self, now: float) -> bool:
        """One final off-grid sample at ``now`` (end of run), if it is newer
        than the last tick.  Returns True when a sample was taken."""
        if self.last_sample_s is not None and now <= self.last_sample_s:
            return False
        self.sample(now)
        return True

    def attach(self, env) -> Any:
        """Register the sampler as a periodic kernel process on ``env``.

        Returns the :class:`~repro.sim.kernel.Process` so callers can
        interrupt it; see :meth:`repro.sim.kernel.Environment.every`.
        """
        return env.every(self.period_s, self.sample)

    # -- SLO monitoring ------------------------------------------------------

    def _check_policies(self, now: float, values: Mapping[str, float]) -> None:
        if not self.policies:
            return
        registry = self.telemetry.registry
        for policy in self.policies:
            value = values.get(policy.series)
            if value is None or policy.ok(value):
                continue
            self.violations[policy.name] = self.violations.get(policy.name, 0) + 1
            self.telemetry.tracer.emit(
                now,
                BASE_STATION_ID,
                SLO_VIOLATION,
                policy=policy.name,
                series=policy.series,
                value=round(value, 9),
                bound=policy.bound_text(),
            )
            if registry.enabled:
                registry.counter("slo_violations_total", policy=policy.name).inc()
