"""Unified observability: metrics registry, phase spans, JSONL trace export.

The paper's evaluation (Figures 8–14) is an accounting argument — protocols
are compared by per-phase bytes, messages and per-node energy.  This package
makes that accounting a first-class, exportable output of every simulation
instead of something recomputed ad hoc from ``TransmissionStats``:

- :mod:`repro.obs.metrics` — ``Counter``/``Gauge``/``Histogram`` instruments
  keyed by name + labels, with a free no-op default.
- :mod:`repro.obs.telemetry` — the :class:`Telemetry` handle (tracer +
  registry + simulated-time clock) and phase-span context managers.
- :mod:`repro.obs.export` — versioned JSONL serialisation that round-trips
  back into :class:`~repro.sim.trace.TraceEvent` objects.
- :mod:`repro.obs.timeseries` — simulated-time sampling: ring-bounded
  :class:`Series`, rolling :class:`WindowedAggregate` statistics, the
  :class:`MetricsSampler` and declarative :class:`SloPolicy` monitors.
- ``python -m repro.obs`` — ``record``/``summary``/``grep``/``timeline``/
  ``energy-breakdown``/``compare``/``hotspots`` over an exported trace.

Telemetry is off by default everywhere (:data:`NULL_TELEMETRY`); enabling it
never changes simulation outcomes, only observes them.  See
``docs/observability.md``.
"""

from .export import (
    SCHEMA_VERSION,
    SERIES_RECORD_VERSION,
    SeriesSample,
    TraceLog,
    read_jsonl,
    write_jsonl,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricSample,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)
from .telemetry import NULL_TELEMETRY, Span, Telemetry
from .timeseries import (
    DEFAULT_SERIES_CAPACITY,
    MetricsSampler,
    Series,
    SloPolicy,
    WindowedAggregate,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricSample",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Telemetry",
    "Span",
    "NULL_TELEMETRY",
    "TraceLog",
    "SeriesSample",
    "read_jsonl",
    "write_jsonl",
    "SCHEMA_VERSION",
    "SERIES_RECORD_VERSION",
    "Series",
    "WindowedAggregate",
    "MetricsSampler",
    "SloPolicy",
    "DEFAULT_SERIES_CAPACITY",
]
