"""Versioned JSONL export/import of traces and metrics.

One telemetry capture serialises to a JSON-Lines file with four record
types, discriminated by the ``record`` field (full schema in
``docs/observability.md``):

``header``
    First line.  ``{"record": "header", "schema": 1, "meta": {...}}`` —
    ``meta`` carries free-form run provenance (node count, seeds, energy
    model constants) used by the report CLI.
``event``
    One :class:`~repro.sim.trace.TraceEvent`:
    ``{"record": "event", "time": t, "node": id, "kind": k, "detail": {...}}``.
    Events appear in emission order.
``metric``
    One registry sample: ``{"record": "metric", "metric": kind,
    "name": n, "labels": {...}, "value": v}`` where ``value`` is a scalar
    (counter/gauge) or a ``{count, sum, min, max}`` object (histogram).
``series``
    One sampled time series (only present when a
    :class:`~repro.obs.timeseries.MetricsSampler` ran):
    ``{"record": "series", "version": 1, "name": n, "labels": {...},
    "points": [[t, v], ...], "dropped": d}``.  ``version`` is the series
    record's own layout version (:data:`SERIES_RECORD_VERSION`) — the file
    schema stays 1, and an export without series is byte-identical to one
    written before series existed.
``end``
    Last line, a trailer with integrity counts:
    ``{"record": "end", "events": N, "metrics": M, "dropped": D}``
    (plus ``"series": K`` — only when K > 0, see above).
    ``dropped`` is non-zero when a bounded :class:`~repro.sim.trace.RingTracer`
    overflowed — the export is honest about truncation.

Round-trip contract: ``read_jsonl(write_jsonl(t))`` reconstructs every
event and metric sample with canonicalised detail values (tuples become
lists, sets become sorted lists — JSON has no tuple/set), and re-exporting
the reconstruction is byte-identical.  All JSON is written canonically
(sorted keys, minimal separators) so exports diff cleanly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Optional, TextIO, Union

from ..errors import TraceFormatError
from ..sim.trace import RingTracer, TraceEvent, Tracer
from .metrics import MetricSample, MetricsRegistry

__all__ = [
    "SCHEMA_VERSION",
    "SERIES_RECORD_VERSION",
    "SeriesSample",
    "TraceLog",
    "write_jsonl",
    "read_jsonl",
    "jsonify_detail",
]

SCHEMA_VERSION = 1

#: Layout version of the ``series`` record kind (independent of the file
#: schema: adding series records did not invalidate existing readers).
SERIES_RECORD_VERSION = 1


def jsonify_detail(value: Any) -> Any:
    """Canonicalise one detail value for JSON.

    JSON cannot represent tuples or sets; tuples become lists and sets
    become sorted lists (sorted by their canonical JSON text, so mixed-type
    sets still order deterministically).  Anything non-JSON-scalar falls
    back to ``str``.
    """
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [jsonify_detail(item) for item in value]
    if isinstance(value, (set, frozenset)):
        canon = [jsonify_detail(item) for item in value]
        return sorted(canon, key=lambda item: json.dumps(item, sort_keys=True, default=str))
    if isinstance(value, Mapping):
        return {str(key): jsonify_detail(val) for key, val in value.items()}
    return str(value)


def _dumps(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), allow_nan=False)


@dataclass
class SeriesSample:
    """One parsed ``series`` record: a sampled time series.

    Attribute-compatible with :class:`repro.obs.timeseries.Series` as far
    as :func:`write_jsonl` is concerned, so a read log re-exports
    byte-identically.
    """

    name: str
    labels: dict[str, Any] = field(default_factory=dict)
    points: list[tuple[float, float]] = field(default_factory=list)
    #: Points the sampler's ring evicted before export.
    dropped: int = 0

    @property
    def last(self) -> Any:
        """The most recent ``(time, value)`` point, or None."""
        return self.points[-1] if self.points else None

    def values(self) -> list[float]:
        return [v for _, v in self.points]

    def times(self) -> list[float]:
        return [t for t, _ in self.points]


@dataclass
class TraceLog:
    """A parsed export: header metadata, events, metric and series samples."""

    schema: int = SCHEMA_VERSION
    meta: dict[str, Any] = field(default_factory=dict)
    events: list[TraceEvent] = field(default_factory=list)
    metrics: list[MetricSample] = field(default_factory=list)
    series: list[SeriesSample] = field(default_factory=list)
    #: Events the producer dropped (RingTracer overflow) before export.
    dropped: int = 0

    def series_named(self, name: str) -> list[SeriesSample]:
        """Every series record with the given name (any labels)."""
        return [sample for sample in self.series if sample.name == name]

    def series_dropped(self) -> int:
        """Total sampler ring evictions across all series records."""
        return sum(sample.dropped for sample in self.series)

    def registry(self) -> MetricsRegistry:
        """Rebuild a :class:`MetricsRegistry` holding the metric samples."""
        reg = MetricsRegistry()
        for sample in self.metrics:
            if sample.kind == "counter":
                reg.counter(sample.name, **sample.labels).inc(sample.value)
            elif sample.kind == "gauge":
                reg.gauge(sample.name, **sample.labels).set(sample.value)
            elif sample.kind == "histogram":
                hist = reg.histogram(sample.name, **sample.labels)
                hist.count = sample.value["count"]
                hist.sum = sample.value["sum"]
                hist.min = sample.value["min"]
                hist.max = sample.value["max"]
            else:  # pragma: no cover - read_jsonl validates kinds
                raise TraceFormatError(f"unknown metric kind {sample.kind!r}")
        return reg


def write_jsonl(
    path_or_file: Union[str, Path, TextIO],
    events: Iterable[TraceEvent] = (),
    registry: Optional[MetricsRegistry] = None,
    meta: Optional[Mapping[str, Any]] = None,
    dropped: int = 0,
    tracer: Optional[Tracer] = None,
    series: Iterable[Any] = (),
) -> int:
    """Write one telemetry capture as JSONL; returns the line count.

    ``tracer`` is a convenience: a recording tracer supplies both the
    events and (for :class:`RingTracer`) the dropped count, overriding the
    ``events``/``dropped`` arguments.  ``series`` accepts anything with
    ``name``/``labels``/``points``/``dropped`` attributes —
    :class:`repro.obs.timeseries.Series`, a sampler's ``all_series()``, or
    the :class:`SeriesSample` records of a previous read.  Series are
    written sorted by name then labels, so exports diff cleanly whatever
    order the sampler created them in; an empty ``series`` leaves the file
    byte-identical to the pre-series format.
    """
    if tracer is not None:
        events = list(getattr(tracer, "events", ()))
        if isinstance(tracer, RingTracer):
            dropped = tracer.dropped
    samples = registry.samples() if registry is not None else []
    series_list = sorted(
        series, key=lambda s: (s.name, _dumps(jsonify_detail(dict(s.labels))))
    )

    def _write(fh: TextIO) -> int:
        lines = 0
        fh.write(
            _dumps(
                {
                    "record": "header",
                    "schema": SCHEMA_VERSION,
                    "meta": jsonify_detail(dict(meta or {})),
                }
            )
            + "\n"
        )
        lines += 1
        n_events = 0
        for event in events:
            fh.write(
                _dumps(
                    {
                        "record": "event",
                        "time": event.time,
                        "node": event.node_id,
                        "kind": event.kind,
                        "detail": jsonify_detail(event.detail),
                    }
                )
                + "\n"
            )
            n_events += 1
        lines += n_events
        for sample in samples:
            fh.write(
                _dumps(
                    {
                        "record": "metric",
                        "metric": sample.kind,
                        "name": sample.name,
                        "labels": jsonify_detail(sample.labels),
                        "value": jsonify_detail(sample.value),
                    }
                )
                + "\n"
            )
        lines += len(samples)
        for entry in series_list:
            fh.write(
                _dumps(
                    {
                        "record": "series",
                        "version": SERIES_RECORD_VERSION,
                        "name": entry.name,
                        "labels": jsonify_detail(dict(entry.labels)),
                        "points": [
                            [float(t), float(v)] for t, v in entry.points
                        ],
                        "dropped": int(entry.dropped),
                    }
                )
                + "\n"
            )
        lines += len(series_list)
        trailer: dict[str, Any] = {
            "record": "end",
            "events": n_events,
            "metrics": len(samples),
            "dropped": dropped,
        }
        if series_list:
            # Only stamped when series exist: a sampler-free export stays
            # byte-identical to files written before the record kind existed.
            trailer["series"] = len(series_list)
        fh.write(_dumps(trailer) + "\n")
        return lines + 1

    if isinstance(path_or_file, (str, Path)):
        with open(path_or_file, "w", encoding="utf-8") as fh:
            return _write(fh)
    return _write(path_or_file)


def _require(obj: Mapping[str, Any], key: str, line_no: int) -> Any:
    try:
        return obj[key]
    except KeyError:
        raise TraceFormatError(f"line {line_no}: missing {key!r} field") from None


def read_jsonl(path_or_file: Union[str, Path, TextIO]) -> TraceLog:
    """Parse a JSONL export back into a :class:`TraceLog`.

    Raises :class:`~repro.errors.TraceFormatError` on malformed input:
    bad JSON, wrong schema version, unknown record types, or a trailer
    whose counts disagree with the records actually read.
    """
    if isinstance(path_or_file, (str, Path)):
        with open(path_or_file, "r", encoding="utf-8") as fh:
            return _read(fh)
    return _read(path_or_file)


def _read(fh: TextIO) -> TraceLog:
    log = TraceLog()
    saw_header = False
    trailer: Optional[dict[str, Any]] = None
    for line_no, line in enumerate(fh, start=1):
        line = line.strip()
        if not line:
            continue
        if trailer is not None:
            raise TraceFormatError(f"line {line_no}: records after the end trailer")
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"line {line_no}: invalid JSON: {exc}") from exc
        if not isinstance(obj, dict):
            raise TraceFormatError(f"line {line_no}: expected an object")
        record = _require(obj, "record", line_no)
        if line_no == 1 and record != "header":
            raise TraceFormatError("line 1: expected a header record")
        if record == "header":
            if saw_header:
                raise TraceFormatError(f"line {line_no}: duplicate header")
            schema = _require(obj, "schema", line_no)
            if schema != SCHEMA_VERSION:
                raise TraceFormatError(
                    f"unsupported trace schema {schema!r} (expected {SCHEMA_VERSION})"
                )
            log.schema = schema
            log.meta = obj.get("meta", {})
            saw_header = True
        elif record == "event":
            log.events.append(
                TraceEvent(
                    time=float(_require(obj, "time", line_no)),
                    node_id=int(_require(obj, "node", line_no)),
                    kind=str(_require(obj, "kind", line_no)),
                    detail=obj.get("detail", {}),
                )
            )
        elif record == "metric":
            kind = _require(obj, "metric", line_no)
            if kind not in ("counter", "gauge", "histogram"):
                raise TraceFormatError(f"line {line_no}: unknown metric kind {kind!r}")
            log.metrics.append(
                MetricSample(
                    kind=kind,
                    name=str(_require(obj, "name", line_no)),
                    labels=obj.get("labels", {}),
                    value=_require(obj, "value", line_no),
                )
            )
        elif record == "series":
            version = _require(obj, "version", line_no)
            if version != SERIES_RECORD_VERSION:
                raise TraceFormatError(
                    f"line {line_no}: unsupported series record version "
                    f"{version!r} (expected {SERIES_RECORD_VERSION})"
                )
            points = _require(obj, "points", line_no)
            if not isinstance(points, list) or not all(
                isinstance(p, list) and len(p) == 2 for p in points
            ):
                raise TraceFormatError(
                    f"line {line_no}: series points must be [time, value] pairs"
                )
            log.series.append(
                SeriesSample(
                    name=str(_require(obj, "name", line_no)),
                    labels=obj.get("labels", {}),
                    points=[(float(t), float(v)) for t, v in points],
                    dropped=int(obj.get("dropped", 0)),
                )
            )
        elif record == "end":
            trailer = obj
        else:
            raise TraceFormatError(f"line {line_no}: unknown record type {record!r}")
    if not saw_header:
        raise TraceFormatError("empty trace: no header record")
    if trailer is None:
        raise TraceFormatError("truncated trace: no end trailer")
    if trailer.get("events") != len(log.events):
        raise TraceFormatError(
            f"trailer says {trailer.get('events')} events, read {len(log.events)}"
        )
    if trailer.get("metrics") != len(log.metrics):
        raise TraceFormatError(
            f"trailer says {trailer.get('metrics')} metrics, read {len(log.metrics)}"
        )
    if trailer.get("series", 0) != len(log.series):
        raise TraceFormatError(
            f"trailer says {trailer.get('series', 0)} series, read {len(log.series)}"
        )
    log.dropped = int(trailer.get("dropped", 0))
    return log
