"""Versioned JSONL export/import of traces and metrics.

One telemetry capture serialises to a JSON-Lines file with four record
types, discriminated by the ``record`` field (full schema in
``docs/observability.md``):

``header``
    First line.  ``{"record": "header", "schema": 1, "meta": {...}}`` —
    ``meta`` carries free-form run provenance (node count, seeds, energy
    model constants) used by the report CLI.
``event``
    One :class:`~repro.sim.trace.TraceEvent`:
    ``{"record": "event", "time": t, "node": id, "kind": k, "detail": {...}}``.
    Events appear in emission order.
``metric``
    One registry sample: ``{"record": "metric", "metric": kind,
    "name": n, "labels": {...}, "value": v}`` where ``value`` is a scalar
    (counter/gauge) or a ``{count, sum, min, max}`` object (histogram).
``end``
    Last line, a trailer with integrity counts:
    ``{"record": "end", "events": N, "metrics": M, "dropped": D}``.
    ``dropped`` is non-zero when a bounded :class:`~repro.sim.trace.RingTracer`
    overflowed — the export is honest about truncation.

Round-trip contract: ``read_jsonl(write_jsonl(t))`` reconstructs every
event and metric sample with canonicalised detail values (tuples become
lists, sets become sorted lists — JSON has no tuple/set), and re-exporting
the reconstruction is byte-identical.  All JSON is written canonically
(sorted keys, minimal separators) so exports diff cleanly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Optional, TextIO, Union

from ..errors import TraceFormatError
from ..sim.trace import RingTracer, TraceEvent, Tracer
from .metrics import MetricSample, MetricsRegistry

__all__ = ["SCHEMA_VERSION", "TraceLog", "write_jsonl", "read_jsonl", "jsonify_detail"]

SCHEMA_VERSION = 1


def jsonify_detail(value: Any) -> Any:
    """Canonicalise one detail value for JSON.

    JSON cannot represent tuples or sets; tuples become lists and sets
    become sorted lists (sorted by their canonical JSON text, so mixed-type
    sets still order deterministically).  Anything non-JSON-scalar falls
    back to ``str``.
    """
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [jsonify_detail(item) for item in value]
    if isinstance(value, (set, frozenset)):
        canon = [jsonify_detail(item) for item in value]
        return sorted(canon, key=lambda item: json.dumps(item, sort_keys=True, default=str))
    if isinstance(value, Mapping):
        return {str(key): jsonify_detail(val) for key, val in value.items()}
    return str(value)


def _dumps(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), allow_nan=False)


@dataclass
class TraceLog:
    """A parsed export: header metadata, events, and metric samples."""

    schema: int = SCHEMA_VERSION
    meta: dict[str, Any] = field(default_factory=dict)
    events: list[TraceEvent] = field(default_factory=list)
    metrics: list[MetricSample] = field(default_factory=list)
    #: Events the producer dropped (RingTracer overflow) before export.
    dropped: int = 0

    def registry(self) -> MetricsRegistry:
        """Rebuild a :class:`MetricsRegistry` holding the metric samples."""
        reg = MetricsRegistry()
        for sample in self.metrics:
            if sample.kind == "counter":
                reg.counter(sample.name, **sample.labels).inc(sample.value)
            elif sample.kind == "gauge":
                reg.gauge(sample.name, **sample.labels).set(sample.value)
            elif sample.kind == "histogram":
                hist = reg.histogram(sample.name, **sample.labels)
                hist.count = sample.value["count"]
                hist.sum = sample.value["sum"]
                hist.min = sample.value["min"]
                hist.max = sample.value["max"]
            else:  # pragma: no cover - read_jsonl validates kinds
                raise TraceFormatError(f"unknown metric kind {sample.kind!r}")
        return reg


def write_jsonl(
    path_or_file: Union[str, Path, TextIO],
    events: Iterable[TraceEvent] = (),
    registry: Optional[MetricsRegistry] = None,
    meta: Optional[Mapping[str, Any]] = None,
    dropped: int = 0,
    tracer: Optional[Tracer] = None,
) -> int:
    """Write one telemetry capture as JSONL; returns the line count.

    ``tracer`` is a convenience: a recording tracer supplies both the
    events and (for :class:`RingTracer`) the dropped count, overriding the
    ``events``/``dropped`` arguments.
    """
    if tracer is not None:
        events = list(getattr(tracer, "events", ()))
        if isinstance(tracer, RingTracer):
            dropped = tracer.dropped
    samples = registry.samples() if registry is not None else []

    def _write(fh: TextIO) -> int:
        lines = 0
        fh.write(
            _dumps(
                {
                    "record": "header",
                    "schema": SCHEMA_VERSION,
                    "meta": jsonify_detail(dict(meta or {})),
                }
            )
            + "\n"
        )
        lines += 1
        n_events = 0
        for event in events:
            fh.write(
                _dumps(
                    {
                        "record": "event",
                        "time": event.time,
                        "node": event.node_id,
                        "kind": event.kind,
                        "detail": jsonify_detail(event.detail),
                    }
                )
                + "\n"
            )
            n_events += 1
        lines += n_events
        for sample in samples:
            fh.write(
                _dumps(
                    {
                        "record": "metric",
                        "metric": sample.kind,
                        "name": sample.name,
                        "labels": jsonify_detail(sample.labels),
                        "value": jsonify_detail(sample.value),
                    }
                )
                + "\n"
            )
        lines += len(samples)
        fh.write(
            _dumps(
                {
                    "record": "end",
                    "events": n_events,
                    "metrics": len(samples),
                    "dropped": dropped,
                }
            )
            + "\n"
        )
        return lines + 1

    if isinstance(path_or_file, (str, Path)):
        with open(path_or_file, "w", encoding="utf-8") as fh:
            return _write(fh)
    return _write(path_or_file)


def _require(obj: Mapping[str, Any], key: str, line_no: int) -> Any:
    try:
        return obj[key]
    except KeyError:
        raise TraceFormatError(f"line {line_no}: missing {key!r} field") from None


def read_jsonl(path_or_file: Union[str, Path, TextIO]) -> TraceLog:
    """Parse a JSONL export back into a :class:`TraceLog`.

    Raises :class:`~repro.errors.TraceFormatError` on malformed input:
    bad JSON, wrong schema version, unknown record types, or a trailer
    whose counts disagree with the records actually read.
    """
    if isinstance(path_or_file, (str, Path)):
        with open(path_or_file, "r", encoding="utf-8") as fh:
            return _read(fh)
    return _read(path_or_file)


def _read(fh: TextIO) -> TraceLog:
    log = TraceLog()
    saw_header = False
    trailer: Optional[dict[str, Any]] = None
    for line_no, line in enumerate(fh, start=1):
        line = line.strip()
        if not line:
            continue
        if trailer is not None:
            raise TraceFormatError(f"line {line_no}: records after the end trailer")
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"line {line_no}: invalid JSON: {exc}") from exc
        if not isinstance(obj, dict):
            raise TraceFormatError(f"line {line_no}: expected an object")
        record = _require(obj, "record", line_no)
        if line_no == 1 and record != "header":
            raise TraceFormatError("line 1: expected a header record")
        if record == "header":
            if saw_header:
                raise TraceFormatError(f"line {line_no}: duplicate header")
            schema = _require(obj, "schema", line_no)
            if schema != SCHEMA_VERSION:
                raise TraceFormatError(
                    f"unsupported trace schema {schema!r} (expected {SCHEMA_VERSION})"
                )
            log.schema = schema
            log.meta = obj.get("meta", {})
            saw_header = True
        elif record == "event":
            log.events.append(
                TraceEvent(
                    time=float(_require(obj, "time", line_no)),
                    node_id=int(_require(obj, "node", line_no)),
                    kind=str(_require(obj, "kind", line_no)),
                    detail=obj.get("detail", {}),
                )
            )
        elif record == "metric":
            kind = _require(obj, "metric", line_no)
            if kind not in ("counter", "gauge", "histogram"):
                raise TraceFormatError(f"line {line_no}: unknown metric kind {kind!r}")
            log.metrics.append(
                MetricSample(
                    kind=kind,
                    name=str(_require(obj, "name", line_no)),
                    labels=obj.get("labels", {}),
                    value=_require(obj, "value", line_no),
                )
            )
        elif record == "end":
            trailer = obj
        else:
            raise TraceFormatError(f"line {line_no}: unknown record type {record!r}")
    if not saw_header:
        raise TraceFormatError("empty trace: no header record")
    if trailer is None:
        raise TraceFormatError("truncated trace: no end trailer")
    if trailer.get("events") != len(log.events):
        raise TraceFormatError(
            f"trailer says {trailer.get('events')} events, read {len(log.events)}"
        )
    if trailer.get("metrics") != len(log.metrics):
        raise TraceFormatError(
            f"trailer says {trailer.get('metrics')} metrics, read {len(log.metrics)}"
        )
    log.dropped = int(trailer.get("dropped", 0))
    return log
