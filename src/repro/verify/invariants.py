"""The invariant catalogue the differential harness checks after every trial.

Each invariant is a pure function over a
:class:`~repro.verify.runner.TrialExecution` returning ``None`` on success or
a human-readable violation message.  The catalogue (:data:`INVARIANTS`) is an
ordered mapping; when several invariants fail the *first* in catalogue order
names the failure, and the shrinker minimises against that name.

The invariants, in catalogue order:

``engine-matches-oracle``
    On fault-free runs (any loss rate — the link-layer ARQ makes delivery
    exact) every engine's result set-equals the central lossless oracle.
    Under injected node crashes, link drops, or continuous churn the result
    must be a *subset* of the oracle and the reported recall must equal the
    delivered fraction.
``quantization-conservative``
    Quantization never causes false dismissals: every raw value lies inside
    its cell's decoded bounds, and every oracle match survives the
    conservative cell-level semi-join.
``quadtree-setops-algebra``
    Union/intersection computed directly on the wire format agree with
    brute-force flag algebra on the underlying point sets, and obey the
    usual laws (idempotence, commutativity, identity/annihilator).
``zcurve-roundtrip``
    Z-order interleaving and the quadtree pack/encode paths are lossless
    round trips.
``energy-reconciles``
    Per-phase telemetry counters, the affine radio model, and the per-node
    energy ledgers tell the same story (to float-rounding tolerance).
``deterministic-replay``
    Re-executing the same spec from scratch yields an identical outcome
    fingerprint (results, costs, timings — exact floats, no rounding).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from ..codec import setops
from ..codec import zcurve
from ..obs import reconcile
from ..query.evaluate import conservative_semijoin
from .generators import random_coordinates, random_flagged_points, random_values

__all__ = ["Invariant", "INVARIANTS", "first_violation", "all_violations"]


@dataclass(frozen=True)
class Invariant:
    """One checkable property: a name, a description, and a checker."""

    name: str
    description: str
    check: Callable[["TrialExecution"], Optional[str]]  # noqa: F821


_ROUNDING_DIGITS = 9
_RECALL_TOLERANCE = 1e-9


# ---------------------------------------------------------------------------
# engine-matches-oracle
# ---------------------------------------------------------------------------


def check_engine_matches_oracle(execution) -> Optional[str]:
    spec = execution.spec
    faulted = (spec.crash_count + spec.link_drop_count) > 0 or spec.churn_rate > 0
    for obs in execution.rounds:
        result = obs.outcome.result
        oracle = obs.oracle
        label = f"round {obs.round_index} ({obs.engine_label})"
        if not faulted:
            if result.result_set(_ROUNDING_DIGITS) != oracle.result_set(_ROUNDING_DIGITS):
                return (
                    f"{label}: engine result != oracle "
                    f"(engine {result.match_count} matches, "
                    f"oracle {oracle.match_count})"
                )
            continue
        # Crashes / permanent link drops may orphan subtrees: the result is
        # allowed to be partial, but never to invent matches.
        engine_combos = set(result.combinations)
        oracle_combos = set(oracle.combinations)
        extra = engine_combos - oracle_combos
        if extra:
            sample = sorted(extra)[:3]
            return f"{label}: engine invented {len(extra)} combination(s): {sample}"
        if not execution.setup.query.is_aggregate:
            if not result.result_set() <= oracle.result_set():
                return f"{label}: partial result rows disagree with oracle rows"
        recall = obs.outcome.details.get("recall")
        if recall is not None:
            if not -_RECALL_TOLERANCE <= recall <= 1.0 + _RECALL_TOLERANCE:
                return f"{label}: recall {recall} outside [0, 1]"
            if oracle.match_count:
                expected = result.match_count / oracle.match_count
                if abs(recall - expected) > _RECALL_TOLERANCE:
                    return (
                        f"{label}: reported recall {recall} != delivered "
                        f"fraction {expected}"
                    )
    return None


# ---------------------------------------------------------------------------
# quantization-conservative
# ---------------------------------------------------------------------------


def check_quantization_conservative(execution) -> Optional[str]:
    query = execution.setup.query
    for obs in execution.rounds:
        fmt = obs.tuple_format
        quantizer = fmt.quantizer
        label = f"round {obs.round_index}"
        # 1. Cell bounds contain the raw value (boundary cells are widened).
        for record in obs.records:
            values = {name: record.values[name] for name in fmt.join_attributes}
            z = quantizer.encode(values)
            bounds = quantizer.cell_bounds(z)
            for name, value in values.items():
                if not bounds.lo[name] <= value <= bounds.hi[name]:
                    return (
                        f"{label}: node {record.node_id} attr {name!r}: value "
                        f"{value} outside cell bounds "
                        f"[{bounds.lo[name]}, {bounds.hi[name]}]"
                    )
        # 2. No false dismissals: every oracle contributor survives the
        # conservative cell-level semi-join.
        cells_by_alias: Dict[str, list] = {alias: [] for alias in fmt.aliases}
        nodes_by_alias: Dict[str, list] = {alias: [] for alias in fmt.aliases}
        for record in obs.records:
            values = {name: record.values[name] for name in fmt.join_attributes}
            bounds = quantizer.cell_bounds(quantizer.encode(values))
            for alias in fmt.aliases_of_flags(record.flags):
                cells_by_alias[alias].append(bounds)
                nodes_by_alias[alias].append(record.node_id)
        survivors = conservative_semijoin(query, cells_by_alias)
        for combo in obs.oracle.combinations:
            for position, alias in enumerate(obs.oracle.aliases):
                node_id = combo[position]
                try:
                    index = nodes_by_alias[alias].index(node_id)
                except ValueError:
                    return (
                        f"{label}: oracle match uses node {node_id} under "
                        f"alias {alias!r} but no record carries that alias"
                    )
                if index not in survivors[alias]:
                    return (
                        f"{label}: false dismissal — node {node_id} "
                        f"(alias {alias!r}) joins in the oracle but its cell "
                        f"was pruned by the conservative semi-join"
                    )
    return None


# ---------------------------------------------------------------------------
# quadtree-setops-algebra
# ---------------------------------------------------------------------------


def _merge(points) -> FrozenSet[Tuple[int, int]]:
    """Brute-force reference semantics: OR flags per Z-number."""
    merged: Dict[int, int] = {}
    for flags, z in points:
        merged[z] = merged.get(z, 0) | flags
    return frozenset((flags, z) for z, flags in merged.items())


def _brute_intersect(a, b) -> FrozenSet[Tuple[int, int]]:
    """Brute-force reference: AND flags per shared Z-number, drop flagless."""
    left = {z: flags for flags, z in _merge(a)}
    out: Dict[int, int] = {}
    for flags, z in _merge(b):
        combined = left.get(z, 0) & flags
        if combined:
            out[z] = combined
    return frozenset((flags, z) for z, flags in out.items())


def check_quadtree_setops(execution) -> Optional[str]:
    codec = execution.rounds[0].tuple_format.codec
    rng = random.Random(execution.spec.seed ^ 0x5E705)
    for trial in range(4):
        a = random_flagged_points(rng, codec)
        b = random_flagged_points(rng, codec)
        canonical_a, canonical_b = _merge(a), _merge(b)
        # Round trip through the wire format.  The codec is flag-agnostic:
        # two points sharing a Z-number but carrying different flags are
        # distinct wire entries, so the round trip preserves the *plain*
        # set (flag merging is union_points' job, not the codec's).
        if codec.decode(codec.encode(a)) != frozenset(a):
            return f"setops[{trial}]: encode/decode round trip lost points"
        # Wire-format set ops match brute-force flag algebra.
        union = codec.decode(setops.union_encoded(codec, codec.encode(a), codec.encode(b)))
        if union != _merge(list(canonical_a) + list(canonical_b)):
            return f"setops[{trial}]: union_encoded != brute-force union"
        inter = codec.decode(
            setops.intersect_encoded(codec, codec.encode(a), codec.encode(b))
        )
        if inter != _brute_intersect(a, b):
            return f"setops[{trial}]: intersect_encoded != brute-force intersection"
        # Algebraic laws on the point-set primitives.
        if setops.union_points(canonical_a, canonical_a) != canonical_a:
            return f"setops[{trial}]: union is not idempotent"
        if setops.union_points(a, b) != setops.union_points(b, a):
            return f"setops[{trial}]: union is not commutative"
        if setops.intersect_points(a, b) != setops.intersect_points(b, a):
            return f"setops[{trial}]: intersection is not commutative"
        if setops.union_points(canonical_a, ()) != canonical_a:
            return f"setops[{trial}]: empty set is not a union identity"
        if setops.intersect_points(canonical_a, ()) != frozenset():
            return f"setops[{trial}]: empty set is not an intersection annihilator"
        if canonical_a:
            point = rng.choice(sorted(canonical_a))
            if setops.insert_point(canonical_a, point) != canonical_a:
                return f"setops[{trial}]: re-inserting a member changed the set"
    return None


# ---------------------------------------------------------------------------
# zcurve-roundtrip
# ---------------------------------------------------------------------------


def check_zcurve_roundtrip(execution) -> Optional[str]:
    fmt = execution.rounds[0].tuple_format
    quantizer, codec = fmt.quantizer, fmt.codec
    rng = random.Random(execution.spec.seed ^ 0x2C04E)
    for trial in range(8):
        # interleave/deinterleave is exact.
        coords = random_coordinates(rng, quantizer.bits_per_dim)
        z = zcurve.interleave(coords, quantizer.bits_per_dim)
        if zcurve.deinterleave(z, quantizer.bits_per_dim) != coords:
            return f"zcurve[{trial}]: deinterleave(interleave(c)) != c for {coords}"
        if not 0 <= z < (1 << quantizer.total_bits):
            return f"zcurve[{trial}]: Z-number {z} exceeds {quantizer.total_bits} bits"
        # encode agrees with per-dimension cell mapping.
        values = random_values(rng, quantizer)
        cells = quantizer.decode_cells(quantizer.encode(values))
        for dim in quantizer.dimensions:
            if cells[dim.name] != dim.cell_of(values[dim.name]):
                return (
                    f"zcurve[{trial}]: dim {dim.name!r} decoded to cell "
                    f"{cells[dim.name]} but cell_of gives "
                    f"{dim.cell_of(values[dim.name])}"
                )
        # pack/unpack is exact.
        flags = rng.randrange(1, 1 << codec.flag_bits) if codec.flag_bits else 0
        point = (flags, rng.randrange(1 << codec.z_bits))
        if codec.unpack(codec.pack(point)) != point:
            return f"zcurve[{trial}]: pack/unpack round trip broke {point}"
    return None


# ---------------------------------------------------------------------------
# energy-reconciles
# ---------------------------------------------------------------------------


def check_energy_reconciles(execution) -> Optional[str]:
    reg = execution.registry
    if reg is None:
        return None
    network = execution.setup.network
    model = reconcile.energy_model_map(network.energy_model)
    total_measured, worst_delta, deltas = reconcile.reconcile_phase_energy(reg, model)
    tolerance = reconcile.reconciliation_tolerance(total_measured)
    if worst_delta > tolerance:
        phase = max(deltas, key=lambda p: deltas[p])
        return (
            f"phase {phase!r}: counter-vs-model energy delta "
            f"{deltas[phase]:.3e} J exceeds tolerance {tolerance:.3e} J"
        )
    ledger_total = network.total_energy()
    if abs(total_measured - ledger_total) > tolerance:
        return (
            f"telemetry total {total_measured!r} J != ledger total "
            f"{ledger_total!r} J (tolerance {tolerance:.3e})"
        )
    return None


# ---------------------------------------------------------------------------
# deterministic-replay
# ---------------------------------------------------------------------------


def check_deterministic_replay(execution) -> Optional[str]:
    if execution.replay_fingerprint is None:
        return None
    if execution.fingerprint != execution.replay_fingerprint:
        keys = sorted(
            set(execution.fingerprint) | set(execution.replay_fingerprint)
        )
        diverged = [
            key
            for key in keys
            if execution.fingerprint.get(key) != execution.replay_fingerprint.get(key)
        ]
        return f"identical spec produced different outcomes; diverged: {diverged}"
    return None


# ---------------------------------------------------------------------------
# The catalogue
# ---------------------------------------------------------------------------

INVARIANTS: Dict[str, Invariant] = {
    inv.name: inv
    for inv in (
        Invariant(
            "engine-matches-oracle",
            "Fault-free runs set-equal the lossless oracle; faulted runs are "
            "subsets with exact recall accounting.",
            check_engine_matches_oracle,
        ),
        Invariant(
            "quantization-conservative",
            "Raw values lie inside decoded cell bounds and no oracle match "
            "is dismissed by the conservative cell-level semi-join.",
            check_quantization_conservative,
        ),
        Invariant(
            "quadtree-setops-algebra",
            "Wire-format union/intersection match brute-force flag algebra "
            "and obey idempotence/commutativity/identity laws.",
            check_quadtree_setops,
        ),
        Invariant(
            "zcurve-roundtrip",
            "Z-order interleaving, quantizer encode, and quadtree pack are "
            "lossless round trips.",
            check_zcurve_roundtrip,
        ),
        Invariant(
            "energy-reconciles",
            "Per-phase telemetry counters, the affine radio model, and the "
            "energy ledgers agree to rounding tolerance.",
            check_energy_reconciles,
        ),
        Invariant(
            "deterministic-replay",
            "Re-executing the same spec from scratch yields an identical "
            "outcome fingerprint.",
            check_deterministic_replay,
        ),
    )
}


@dataclass(frozen=True)
class Violation:
    """One failed invariant for one trial."""

    invariant: str
    message: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.message}"


def all_violations(execution) -> List[Violation]:
    """Every invariant violation for a trial, in catalogue order."""
    found = []
    for invariant in INVARIANTS.values():
        message = invariant.check(execution)
        if message is not None:
            found.append(Violation(invariant.name, message))
    return found


def first_violation(execution) -> Optional[Violation]:
    """The catalogue-first violation (what the shrinker minimises against)."""
    for invariant in INVARIANTS.values():
        message = invariant.check(execution)
        if message is not None:
            return Violation(invariant.name, message)
    return None
