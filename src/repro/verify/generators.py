"""Seeded, shrinkable trial generation for the differential harness.

Everything here is pure stdlib (``random.Random`` + dataclasses): a
:class:`TrialSpec` is a small, JSON-round-trippable value object that fully
determines one fuzz trial — deployment, data, query, engine, loss rate and
fault schedule all derive deterministically from its fields.  That gives the
harness the two properties property-based testing needs without heavy
dependencies:

* **replayability** — a spec saved to a repro artifact rebuilds the exact
  failing world (``same seed -> byte-identical outcome``);
* **shrinkability** — the shrinker (:mod:`repro.verify.shrink`) walks specs
  towards simpler ones (fewer nodes, no loss, no faults, grid topology,
  simplest query template) and re-runs each candidate.

:func:`plan_trials` derives a whole trial matrix from one master seed,
cycling engines so even a 10-trial smoke covers every engine at least once.
"""

from __future__ import annotations

import math
import random
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..codec.quadtree import FlaggedPoint, QuadtreeCodec
from ..data.relations import SensorWorld
from ..query.parser import parse_query
from ..query.query import JoinQuery
from ..routing.cluster import ROUTING_MODES, build_routing_tree
from ..routing.tree import RoutingTree
from ..sim.faults import ChurnModel, Fault, FaultPlan, LINK_DROP, LOSS_BURST, NODE_CRASH
from ..sim.network import DeploymentConfig, Network, deploy_grid, deploy_uniform

__all__ = [
    "ENGINES",
    "DEPLOYMENTS",
    "LARGE_NODE_LADDER",
    "NODE_LADDER",
    "TrialSpec",
    "TrialSetup",
    "QueryTemplate",
    "templates_for",
    "plan_trials",
    "build_trial",
    "generate_fault_plan",
    "random_flagged_points",
    "random_coordinates",
    "random_values",
]

#: Every engine the harness can drive.  The first five resolve through
#: ``joins.runner.make_algorithm``; the last two are the stateful executors
#: driven through ``run_round``.
ENGINES: Tuple[str, ...] = (
    "sens-join",
    "external-join",
    "semijoin-broadcast",
    "mediated-join",
    "des-sensjoin",
    "adaptive",
    "incremental",
)

DEPLOYMENTS: Tuple[str, ...] = ("grid", "uniform")

#: Node counts the generator draws from; also the shrinker's ladder.
NODE_LADDER: Tuple[int, ...] = (12, 16, 24, 32, 48)

#: The large-deployment axis (``plan_trials(..., large=True)``): a node
#: ladder up to 2k that drives the grid spatial index and the cluster
#: routing mode through deployment sizes the dense O(n²) build never saw.
#: The shrinker bisects failures from here back down towards NODE_LADDER.
LARGE_NODE_LADDER: Tuple[int, ...] = (128, 256, 512, 1024, 2048)

#: Grid pitch in metres (below the 50 m radio range -> always connected).
GRID_PITCH_M = 40.0

#: Simulated-time window faults land in (the DES protocol completes within
#: tens of milliseconds at fuzz scale, so this spans the whole execution).
FAULT_HORIZON_S = 0.02

#: Round times for the stateful executors (matches SAMPLE PERIOD 60).
ROUND_TIMES: Tuple[float, ...] = (0.0, 60.0)


@dataclass(frozen=True)
class QueryTemplate:
    """One workload shape: a SQL skeleton plus its threshold bracket."""

    sql: str
    lo: float
    hi: float

    @property
    def default_threshold(self) -> float:
        return round((self.lo + self.hi) / 2.0, 3)

    def render(self, threshold: float, mode: str) -> str:
        return self.sql.format(t=threshold, mode=mode)


#: Self-join templates (homogeneous ``sensors`` relation), simplest first —
#: the shrinker walks the index towards 0.
_SELF_TEMPLATES: Tuple[QueryTemplate, ...] = (
    QueryTemplate(
        "SELECT A.hum, B.hum FROM sensors A, sensors B "
        "WHERE A.temp - B.temp > {t:.3f} {mode}",
        lo=0.5, hi=8.0,
    ),
    QueryTemplate(
        "SELECT A.temp, A.hum, B.temp, B.hum FROM sensors A, sensors B "
        "WHERE A.temp - B.temp > {t:.3f} AND |A.hum - B.hum| < 40.0 {mode}",
        lo=0.5, hi=8.0,
    ),
    QueryTemplate(
        "SELECT |A.hum - B.hum| FROM sensors A, sensors B "
        "WHERE |A.temp - B.temp| < {t:.3f} "
        "AND distance(A.x, A.y, B.x, B.y) > 60.0 {mode}",
        lo=0.5, hi=4.0,
    ),
    QueryTemplate(
        "SELECT MIN(distance(A.x, A.y, B.x, B.y)) FROM sensors A, sensors B "
        "WHERE A.temp - B.temp > {t:.3f} {mode}",
        lo=0.5, hi=8.0,
    ),
)

#: Heterogeneous templates over the ``two_relations`` split.
_TWO_TEMPLATES: Tuple[QueryTemplate, ...] = (
    QueryTemplate(
        "SELECT A.temp, B.temp FROM rel_a A, rel_b B "
        "WHERE A.temp - B.temp > {t:.3f} {mode}",
        lo=0.5, hi=8.0,
    ),
    QueryTemplate(
        "SELECT A.hum, B.light FROM rel_a A, rel_b B "
        "WHERE |A.temp - B.temp| < {t:.3f} {mode}",
        lo=0.5, hi=4.0,
    ),
)


def templates_for(relations: str) -> Tuple[QueryTemplate, ...]:
    """The template table for a relation layout (``self`` or ``two``)."""
    if relations == "self":
        return _SELF_TEMPLATES
    if relations == "two":
        return _TWO_TEMPLATES
    raise ValueError(f"unknown relation layout {relations!r}; known: self, two")


@dataclass(frozen=True)
class TrialSpec:
    """A fully deterministic fuzz trial, JSON-round-trippable.

    Every derived object (deployment, fields, tree, fault plan, ARQ draws)
    is seeded from these fields, so two executions of the same spec are
    byte-identical — that is itself one of the invariants under test.
    """

    seed: int
    engine: str
    deployment: str = "grid"
    node_count: int = 16
    relations: str = "self"
    template: int = 0
    threshold: float = 2.0
    loss_rate: float = 0.0
    crash_count: int = 0
    link_drop_count: int = 0
    burst_count: int = 0
    #: Expected fraction of nodes departing over the fault horizon; expands
    #: into a :class:`~repro.sim.faults.ChurnModel` plan (departures plus
    #: rejoins at jittered positions) merged into the trial's fault schedule.
    churn_rate: float = 0.0
    drift_rate: float = 0.0
    #: Routing-tree construction mode; ``"cluster"`` layers grid-cell heads
    #: over the CTP backbone (every engine runs on either tree shape, and
    #: the oracle is tree-independent — so the full invariant catalogue
    #: fuzzes the cluster mode for free).
    routing: str = "flat"
    check_determinism: bool = False

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}; known: {ENGINES}")
        if self.deployment not in DEPLOYMENTS:
            raise ValueError(f"unknown deployment {self.deployment!r}")
        if self.routing not in ROUTING_MODES:
            raise ValueError(
                f"unknown routing mode {self.routing!r}; known: {ROUTING_MODES}"
            )
        templates = templates_for(self.relations)
        if not 0 <= self.template < len(templates):
            raise ValueError(
                f"template {self.template} out of range for {self.relations!r}"
            )
        if self.node_count < 4:
            raise ValueError(f"node_count too small: {self.node_count}")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1): {self.loss_rate}")
        if min(self.crash_count, self.link_drop_count, self.burst_count) < 0:
            raise ValueError("fault counts must be non-negative")
        if not 0.0 <= self.churn_rate < 1.0:
            raise ValueError(f"churn_rate must be in [0, 1): {self.churn_rate}")
        if (self.fault_count or self.churn_rate) and self.engine != "des-sensjoin":
            raise ValueError(
                f"in-flight faults need the des-sensjoin engine, not {self.engine!r}"
            )

    # -- derived ---------------------------------------------------------------

    @property
    def fault_count(self) -> int:
        return self.crash_count + self.link_drop_count + self.burst_count

    @property
    def uses_rounds(self) -> bool:
        """True for the stateful executors driven through ``run_round``."""
        return self.engine in ("adaptive", "incremental")

    def query_sql(self) -> str:
        mode = "SAMPLE PERIOD 60" if self.uses_rounds else "ONCE"
        template = templates_for(self.relations)[self.template]
        return template.render(self.threshold, mode)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "TrialSpec":
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        return cls(**{k: v for k, v in data.items() if k in known})

    def describe(self) -> str:
        """One-line summary for progress output."""
        parts = [
            f"{self.engine}",
            f"{self.deployment}",
            f"n={self.node_count}",
            f"{self.relations}/t{self.template}",
            f"thr={self.threshold:g}",
        ]
        if self.loss_rate:
            parts.append(f"loss={self.loss_rate:g}")
        if self.fault_count:
            parts.append(
                f"faults={self.crash_count}c/{self.link_drop_count}l/{self.burst_count}b"
            )
        if self.churn_rate:
            parts.append(f"churn={self.churn_rate:g}")
        if self.drift_rate:
            parts.append(f"drift={self.drift_rate:g}")
        if self.routing != "flat":
            parts.append(self.routing)
        if self.check_determinism:
            parts.append("det")
        return " ".join(parts)


# ---------------------------------------------------------------------------
# Trial planning (the engine x workload x fault matrix)
# ---------------------------------------------------------------------------


def plan_trials(
    count: int,
    master_seed: int,
    engines: Sequence[str] = ENGINES,
    churn_rate: Optional[float] = None,
    routing: Optional[str] = None,
    large: bool = False,
) -> List[TrialSpec]:
    """Derive ``count`` specs from one master seed — pure and stable.

    Engines cycle round-robin (so small runs still cover all of them);
    every other axis is drawn from a single ``random.Random(master_seed)``
    stream, which makes the full trial list a deterministic function of
    ``(count, master_seed, engines, churn_rate, routing, large)``.

    ``churn_rate`` pins the churn axis: ``None`` draws it randomly for
    ``des-sensjoin`` trials (the only engine that replays in-flight churn);
    a number forces exactly that rate onto every ``des-sensjoin`` spec —
    pair it with ``engines=("des-sensjoin",)`` for a churn-only smoke.

    ``routing`` pins the routing-mode axis; ``None`` derives it from the
    per-trial seed (~1 in 4 trials run on the cluster tree) *without*
    consuming the rng stream, so turning the axis on did not reshuffle the
    historical trial matrix.  ``large=True`` swaps the node ladder for
    :data:`LARGE_NODE_LADDER` (up to 2k nodes) — the deployment axis that
    drives the spatial grid index at scales the dense build never ran; the
    determinism double-run is skipped there to keep the smoke affordable.
    """
    if count < 0:
        raise ValueError(f"negative trial count: {count}")
    for engine in engines:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; known: {ENGINES}")
    if routing is not None and routing not in ROUTING_MODES:
        raise ValueError(f"unknown routing mode {routing!r}; known: {ROUTING_MODES}")
    ladder = LARGE_NODE_LADDER if large else NODE_LADDER
    rng = random.Random(master_seed)
    specs: List[TrialSpec] = []
    for index in range(count):
        engine = engines[index % len(engines)]
        deployment = rng.choice(DEPLOYMENTS)
        node_count = rng.choice(ladder)
        relations = "two" if rng.random() < 0.3 else "self"
        templates = templates_for(relations)
        template = rng.randrange(len(templates))
        threshold = round(rng.uniform(templates[template].lo, templates[template].hi), 3)
        loss_rate = rng.choice((0.0, 0.0, 0.0, 0.1, 0.3))
        crash = drops = bursts = 0
        churn = 0.0
        if engine == "des-sensjoin":
            profile = rng.choice(("none", "none", "crash", "link", "burst", "mixed"))
            if profile == "crash":
                crash = rng.randint(1, 2)
            elif profile == "link":
                drops = rng.randint(1, 2)
            elif profile == "burst":
                bursts = 1
            elif profile == "mixed":
                crash, drops, bursts = 1, 1, 1
            churn = (
                rng.choice((0.0, 0.0, 0.1, 0.2))
                if churn_rate is None
                else churn_rate
            )
        drift = 0.0
        if engine in ("adaptive", "incremental") and relations == "self":
            drift = rng.choice((0.0, 0.001))
        check_det = rng.random() < 0.25 and not large
        seed = rng.randrange(1 << 30)
        # Derived from the seed rather than drawn, so adding this axis kept
        # every pre-existing trial's other fields byte-identical.
        trial_routing = (
            routing if routing is not None else ("cluster" if seed % 4 == 0 else "flat")
        )
        specs.append(
            TrialSpec(
                seed=seed,
                engine=engine,
                deployment=deployment,
                node_count=node_count,
                relations=relations,
                template=template,
                threshold=threshold,
                loss_rate=loss_rate,
                crash_count=crash,
                link_drop_count=drops,
                burst_count=bursts,
                churn_rate=churn,
                drift_rate=drift,
                routing=trial_routing,
                check_determinism=check_det,
            )
        )
    return specs


# ---------------------------------------------------------------------------
# World construction from a spec
# ---------------------------------------------------------------------------


@dataclass
class TrialSetup:
    """Everything :func:`repro.verify.runner.execute_trial` needs."""

    spec: TrialSpec
    network: Network
    world: SensorWorld
    tree: RoutingTree
    query: JoinQuery
    fault_plan: Optional[FaultPlan]


def _deployment_config(spec: TrialSpec) -> DeploymentConfig:
    if spec.deployment == "grid":
        side = math.ceil(math.sqrt(spec.node_count)) * GRID_PITCH_M
        return DeploymentConfig(
            node_count=spec.node_count,
            area_side_m=side,
            radio_range_m=50.0,
            seed=spec.seed,
            loss_rate=spec.loss_rate,
            routing=spec.routing,
        )
    # Uniform random at the paper's density.
    scaled = DeploymentConfig().scaled(spec.node_count)
    return DeploymentConfig(
        node_count=scaled.node_count,
        area_side_m=scaled.area_side_m,
        radio_range_m=scaled.radio_range_m,
        seed=spec.seed,
        loss_rate=spec.loss_rate,
        routing=spec.routing,
    )


def build_trial(spec: TrialSpec) -> TrialSetup:
    """Deterministically rebuild the trial's world from its spec."""
    config = _deployment_config(spec)
    if spec.deployment == "grid":
        network = deploy_grid(config)
    else:
        network = deploy_uniform(config)
    if spec.relations == "self":
        world = SensorWorld.homogeneous(
            network,
            seed=spec.seed,
            area_side_m=config.area_side_m,
            drift_rate=spec.drift_rate,
        )
    else:
        world = SensorWorld.two_relations(
            network, split=0.5, seed=spec.seed, area_side_m=config.area_side_m
        )
    tree = build_routing_tree(network, routing=spec.routing, seed=spec.seed)
    query = parse_query(spec.query_sql(), world.catalog)
    return TrialSetup(
        spec=spec,
        network=network,
        world=world,
        tree=tree,
        query=query,
        fault_plan=generate_fault_plan(spec, network),
    )


def generate_fault_plan(spec: TrialSpec, network: Network) -> Optional[FaultPlan]:
    """A mixed-kind :class:`FaultPlan` derived from the spec (or ``None``).

    Crash victims and dropped links come from the actual topology, so the
    plan is deterministic given ``(spec, deployment)`` — which the spec
    itself determines.  A non-zero ``churn_rate`` additionally expands a
    :class:`~repro.sim.faults.ChurnModel` (hazard-rate departures plus
    rejoins at jittered positions) against the topology and merges its
    faults into the schedule.
    """
    if spec.fault_count == 0 and spec.churn_rate == 0.0:
        return None
    rng = random.Random(spec.seed ^ 0x5FA17)
    faults: List[Fault] = []
    candidates = sorted(network.sensor_node_ids)
    victims = rng.sample(candidates, k=min(spec.crash_count, len(candidates)))
    for victim in victims:
        faults.append(
            Fault(
                time_s=round(rng.uniform(0.0, FAULT_HORIZON_S), 9),
                kind=NODE_CRASH,
                node_a=victim,
            )
        )
    edges = sorted(
        {
            tuple(sorted((node_id, neighbour)))
            for node_id in candidates
            for neighbour in network.neighbours(node_id)
        }
    )
    for _ in range(min(spec.link_drop_count, len(edges))):
        a, b = edges[rng.randrange(len(edges))]
        faults.append(
            Fault(
                time_s=round(rng.uniform(0.0, FAULT_HORIZON_S), 9),
                kind=LINK_DROP,
                node_a=a,
                node_b=b,
            )
        )
    for _ in range(spec.burst_count):
        faults.append(
            Fault(
                time_s=round(rng.uniform(0.0, FAULT_HORIZON_S), 9),
                kind=LOSS_BURST,
                duration_s=round(rng.uniform(0.5, 5.0), 6),
                loss_rate=round(rng.uniform(0.2, 0.6), 6),
            )
        )
    if spec.churn_rate > 0:
        model = ChurnModel.from_departure_fraction(
            spec.churn_rate,
            horizon_s=FAULT_HORIZON_S,
            seed=spec.seed ^ 0xC4A2,
            rejoin_delay_s=FAULT_HORIZON_S / 4.0,
            rejoin_jitter_m=5.0,
        )
        faults.extend(model.materialize(network))
    return FaultPlan(tuple(faults))


# ---------------------------------------------------------------------------
# Synthetic codec inputs (pure-codec invariants and property tests)
# ---------------------------------------------------------------------------


def random_flagged_points(
    rng: random.Random, codec: QuadtreeCodec, max_points: int = 24
) -> List[FlaggedPoint]:
    """A random flagged point set valid for ``codec``."""
    count = rng.randrange(max_points + 1)
    points: List[FlaggedPoint] = []
    for _ in range(count):
        z = rng.randrange(1 << codec.z_bits)
        if codec.flag_bits:
            flags = rng.randrange(1, 1 << codec.flag_bits)
        else:
            flags = 0
        points.append((flags, z))
    return points


def random_coordinates(rng: random.Random, bits_per_dim: Sequence[int]) -> List[int]:
    """One random coordinate tuple for a Z-curve interleave schedule."""
    return [rng.randrange(1 << bits) for bits in bits_per_dim]


def random_values(rng: random.Random, quantizer) -> Dict[str, float]:
    """A raw join-attribute tuple; ~10% of draws land out of range to
    exercise the boundary-cell clamping path."""
    values: Dict[str, float] = {}
    for dim in quantizer.dimensions:
        span = dim.size * dim.resolution
        if rng.random() < 0.1:
            value = dim.min_value + rng.uniform(-2.0 * span, 3.0 * span)
        else:
            value = dim.min_value + rng.uniform(0.0, span)
        values[dim.name] = value
    return values
