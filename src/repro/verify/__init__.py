"""Differential correctness harness (cross-engine fuzzing + invariants).

``python -m repro.verify fuzz --trials 100 --seed 0`` runs seeded trials
across the engine x workload x fault matrix, checks the invariant catalogue
after each one, shrinks failures to minimal specs and writes replayable JSON
artifacts; ``python -m repro.verify replay <artifact>`` re-triggers one.

See ``docs/testing.md`` for the invariant catalogue and the workflow.
"""

from .artifact import ReproArtifact, ReplayOutcome, replay
from .fuzz import FuzzFailure, FuzzReport, fuzz
from .generators import (
    DEPLOYMENTS,
    ENGINES,
    TrialSpec,
    build_trial,
    generate_fault_plan,
    plan_trials,
)
from .invariants import INVARIANTS, Invariant, Violation, all_violations, first_violation
from .runner import RoundObservation, TrialExecution, TrialReport, execute_trial, run_trial
from .shrink import ShrinkResult, shrink

__all__ = [
    "DEPLOYMENTS",
    "ENGINES",
    "INVARIANTS",
    "FuzzFailure",
    "FuzzReport",
    "Invariant",
    "ReplayOutcome",
    "ReproArtifact",
    "RoundObservation",
    "ShrinkResult",
    "TrialExecution",
    "TrialReport",
    "TrialSpec",
    "Violation",
    "all_violations",
    "build_trial",
    "execute_trial",
    "first_violation",
    "fuzz",
    "generate_fault_plan",
    "plan_trials",
    "replay",
    "run_trial",
    "shrink",
]
