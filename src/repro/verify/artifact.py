"""Replayable repro artifacts for fuzz failures.

A failing trial is saved as a small JSON document carrying everything needed
to re-trigger the bug later — the shrunk spec, the original spec it came
from, which invariant failed with what message, and the shrink trail.  The
``repro.verify replay`` CLI loads the artifact, rebuilds the exact world from
the spec (everything derives from seeds) and reports whether the violation
still reproduces — the workflow for turning a nightly fuzz failure into a
regression test.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..errors import TraceFormatError
from .generators import TrialSpec
from .invariants import Violation
from .runner import TrialReport, run_trial

__all__ = ["ARTIFACT_FORMAT", "ReproArtifact", "ReplayOutcome", "replay"]

ARTIFACT_FORMAT = "repro.verify/1"


@dataclass
class ReproArtifact:
    """One shrunk, replayable fuzz failure."""

    invariant: str
    message: str
    spec: TrialSpec
    original_spec: Optional[TrialSpec] = None
    shrink_steps: List[str] = field(default_factory=list)
    #: Provenance: which fuzz run produced this artifact.
    meta: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        data = {
            "format": ARTIFACT_FORMAT,
            "invariant": self.invariant,
            "message": self.message,
            "spec": self.spec.to_dict(),
            "shrink_steps": list(self.shrink_steps),
            "meta": dict(self.meta),
        }
        if self.original_spec is not None:
            data["original_spec"] = self.original_spec.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ReproArtifact":
        fmt = data.get("format")
        if fmt != ARTIFACT_FORMAT:
            raise TraceFormatError(
                f"unsupported repro artifact format {fmt!r}; expected {ARTIFACT_FORMAT!r}"
            )
        original = data.get("original_spec")
        return cls(
            invariant=str(data["invariant"]),
            message=str(data.get("message", "")),
            spec=TrialSpec.from_dict(data["spec"]),
            original_spec=TrialSpec.from_dict(original) if original else None,
            shrink_steps=[str(step) for step in data.get("shrink_steps", ())],
            meta=dict(data.get("meta", {})),
        )

    def save(self, path: Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: Path) -> "ReproArtifact":
        try:
            data = json.loads(Path(path).read_text())
        except json.JSONDecodeError as error:
            raise TraceFormatError(f"repro artifact {path} is not valid JSON: {error}")
        return cls.from_dict(data)


@dataclass
class ReplayOutcome:
    """Result of re-running an artifact's spec."""

    artifact: ReproArtifact
    report: TrialReport
    violation: Optional[Violation]

    @property
    def reproduced(self) -> bool:
        """True iff the artifact's invariant fails again."""
        return any(v.invariant == self.artifact.invariant for v in self.report.violations)


def replay(artifact: ReproArtifact) -> ReplayOutcome:
    """Re-execute the artifact's spec and re-check the invariants."""
    report = run_trial(artifact.spec)
    violation = next(
        (v for v in report.violations if v.invariant == artifact.invariant),
        report.first,
    )
    return ReplayOutcome(artifact=artifact, report=report, violation=violation)
