"""Greedy spec shrinking: minimise a failing trial while keeping the failure.

Property-based shrinking without a framework: a :class:`TrialSpec` is a small
value object, so instead of shrinking a choice sequence we shrink the spec
itself along domain axes — fewer nodes, zero loss, no faults, the regular
grid instead of a random deployment, the simplest query template.  Each
candidate re-executes from scratch (:func:`repro.verify.runner.run_trial`)
and is accepted only if the *same invariant* still fails, so the shrunk
repro pins the original bug rather than a different one.

Greedy first-accept iteration converges quickly because the axes are nearly
independent; the attempt budget bounds worst-case work.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterator, List, Optional, Tuple

from .generators import NODE_LADDER, TrialSpec, templates_for
from .runner import TrialReport, run_trial

__all__ = ["ShrinkResult", "shrink"]

#: Upper bound on candidate executions during one shrink.
DEFAULT_ATTEMPT_BUDGET = 64


@dataclass
class ShrinkResult:
    """The minimised spec plus the trail that led there."""

    original: TrialSpec
    spec: TrialSpec
    invariant: str
    message: str
    steps: List[str] = field(default_factory=list)
    attempts: int = 0


def _candidates(spec: TrialSpec, invariant: str) -> Iterator[Tuple[str, TrialSpec]]:
    """Simpler specs to try, most aggressive first."""
    lower = [n for n in NODE_LADDER if n < spec.node_count]
    for node_count in lower:  # smallest first
        yield f"node_count {spec.node_count} -> {node_count}", replace(
            spec, node_count=node_count
        )
    # Bisection towards the bottom of the ladder: a failure found on the
    # large-deployment axis (up to 2k nodes) walks down in O(log n) steps
    # instead of crawling the ladder, and lands on counts the ladder never
    # enumerated.
    floor = NODE_LADDER[0]
    mid = (spec.node_count + floor) // 2
    if floor < mid < spec.node_count and mid not in lower:
        yield f"node_count bisect {spec.node_count} -> {mid}", replace(
            spec, node_count=mid
        )
    if spec.fault_count:
        yield "drop all faults", replace(
            spec, crash_count=0, link_drop_count=0, burst_count=0
        )
        if spec.crash_count:
            yield "crash_count -> 0", replace(spec, crash_count=0)
        if spec.link_drop_count:
            yield "link_drop_count -> 0", replace(spec, link_drop_count=0)
        if spec.burst_count:
            yield "burst_count -> 0", replace(spec, burst_count=0)
    if spec.churn_rate:
        yield f"churn_rate {spec.churn_rate} -> 0", replace(spec, churn_rate=0.0)
    if spec.loss_rate:
        yield f"loss_rate {spec.loss_rate} -> 0", replace(spec, loss_rate=0.0)
    if spec.deployment != "grid":
        yield f"deployment {spec.deployment} -> grid", replace(spec, deployment="grid")
    if spec.relations != "self":
        template = templates_for("self")[0]
        yield "relations two -> self", replace(
            spec, relations="self", template=0, threshold=template.default_threshold
        )
    if spec.template > 0:
        template = templates_for(spec.relations)[spec.template - 1]
        yield f"template {spec.template} -> {spec.template - 1}", replace(
            spec,
            template=spec.template - 1,
            threshold=template.default_threshold,
        )
    if spec.routing != "flat":
        yield f"routing {spec.routing} -> flat", replace(spec, routing="flat")
    if spec.drift_rate:
        yield "drift_rate -> 0", replace(spec, drift_rate=0.0)
    if spec.check_determinism and invariant != "deterministic-replay":
        yield "drop determinism double-run", replace(spec, check_determinism=False)


def shrink(
    report: TrialReport,
    attempt_budget: int = DEFAULT_ATTEMPT_BUDGET,
    execute: Callable[[TrialSpec], TrialReport] = run_trial,
) -> ShrinkResult:
    """Minimise ``report.spec`` while its first violation keeps failing."""
    violation = report.first
    if violation is None:
        raise ValueError("cannot shrink a passing trial")
    result = ShrinkResult(
        original=report.spec,
        spec=report.spec,
        invariant=violation.invariant,
        message=violation.message,
    )
    improved = True
    while improved and result.attempts < attempt_budget:
        improved = False
        for description, candidate in _candidates(result.spec, result.invariant):
            if result.attempts >= attempt_budget:
                break
            result.attempts += 1
            try:
                candidate_report = execute(candidate)
            except Exception:
                continue  # an invalid candidate is simply not a simplification
            failure = candidate_report.first
            if failure is not None and failure.invariant == result.invariant:
                result.spec = candidate
                result.message = failure.message
                result.steps.append(description)
                improved = True
                break
    return result
