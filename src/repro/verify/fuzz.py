"""The fuzz loop: plan trials, execute, check invariants, shrink failures.

Deterministic end to end — ``fuzz(trials, seed)`` derives the same trial
matrix, the same worlds and the same verdicts on every run (that determinism
is itself one of the invariants under test).  Failures are shrunk to minimal
specs and written as replayable JSON artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Sequence

from .artifact import ReproArtifact
from .generators import ENGINES, TrialSpec, plan_trials
from .invariants import Violation
from .runner import TrialReport, run_trial
from .shrink import ShrinkResult, shrink

__all__ = ["FuzzFailure", "FuzzReport", "fuzz"]


@dataclass
class FuzzFailure:
    """One failing trial, after shrinking."""

    trial_index: int
    spec: TrialSpec
    violation: Violation
    shrunk: Optional[ShrinkResult] = None
    artifact_path: Optional[Path] = None

    @property
    def minimal_spec(self) -> TrialSpec:
        return self.shrunk.spec if self.shrunk is not None else self.spec


@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzz run."""

    trials: int
    seed: int
    engines: Sequence[str]
    passed: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def fuzz(
    trials: int,
    seed: int,
    engines: Sequence[str] = ENGINES,
    artifact_dir: Optional[Path] = None,
    shrink_failures: bool = True,
    execute: Callable[[TrialSpec], TrialReport] = run_trial,
    progress: Optional[Callable[[str], None]] = None,
    churn_rate: Optional[float] = None,
    routing: Optional[str] = None,
    large: bool = False,
) -> FuzzReport:
    """Run ``trials`` seeded trials; shrink and save every failure.

    ``execute`` is injectable for tests (e.g. to count executions); the
    default runs real trials.  ``progress`` receives one line per trial.
    ``churn_rate`` pins the churn axis of every ``des-sensjoin`` trial
    (``None`` leaves it to the planner's random draw); ``routing`` pins the
    routing-mode axis the same way, and ``large=True`` plans trials on the
    2k-node large-deployment ladder.
    """
    say = progress if progress is not None else lambda line: None
    report = FuzzReport(trials=trials, seed=seed, engines=tuple(engines))
    specs = plan_trials(
        trials, seed, engines, churn_rate=churn_rate, routing=routing, large=large
    )
    for index, spec in enumerate(specs):
        trial_report = execute(spec)
        if trial_report.passed:
            report.passed += 1
            say(f"trial {index:3d} ok    {spec.describe()}")
            continue
        violation = trial_report.first
        say(f"trial {index:3d} FAIL  {spec.describe()}")
        say(f"          {violation}")
        failure = FuzzFailure(trial_index=index, spec=spec, violation=violation)
        if shrink_failures:
            failure.shrunk = shrink(trial_report, execute=execute)
            if failure.shrunk.steps:
                say(
                    f"          shrunk in {failure.shrunk.attempts} attempt(s): "
                    f"{failure.shrunk.spec.describe()}"
                )
        if artifact_dir is not None:
            artifact = ReproArtifact(
                invariant=violation.invariant,
                message=failure.shrunk.message if failure.shrunk else violation.message,
                spec=failure.minimal_spec,
                original_spec=spec if failure.shrunk else None,
                shrink_steps=list(failure.shrunk.steps) if failure.shrunk else [],
                meta={
                    "master_seed": seed,
                    "trial_index": index,
                    "trials": trials,
                    "engines": list(engines),
                },
            )
            name = f"repro-trial{index:03d}-{violation.invariant}.json"
            failure.artifact_path = artifact.save(Path(artifact_dir) / name)
            say(f"          artifact: {failure.artifact_path}")
        report.failures.append(failure)
    return report
