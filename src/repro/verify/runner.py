"""Trial execution for the differential harness.

:func:`execute_trial` rebuilds a trial's world from its spec, runs the chosen
engine, and packages everything the invariants need: per-round outcomes, the
matching lossless oracle (computed centrally, before any fault lands), the
raw per-node records, live telemetry for single-shot engines, and an
exact-float *fingerprint* of the observable outcome.

:func:`run_trial` is the harness entry point: execute, optionally re-execute
from scratch to cross-check determinism, then evaluate the invariant
catalogue.  It never raises on an engine bug — an unexpected exception is
reported as an ``engine-matches-oracle`` violation so the fuzz loop can
shrink it like any other failure.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..joins.adaptive import AdaptiveJoin
from ..joins.base import (
    ExecutionContext,
    FullTupleRecord,
    JoinOutcome,
    TupleFormat,
    node_tuple,
    oracle_result,
)
from ..joins.des_sensjoin import DesSensJoin, RecoveryPolicy
from ..joins.incremental import IncrementalSensJoin
from ..joins.runner import make_algorithm, run_snapshot
from ..obs.telemetry import Telemetry
from ..query.evaluate import JoinResult
from .generators import ROUND_TIMES, TrialSetup, TrialSpec, build_trial
from .invariants import Violation, all_violations

__all__ = [
    "RoundObservation",
    "TrialExecution",
    "TrialReport",
    "execute_trial",
    "run_trial",
]


@dataclass
class RoundObservation:
    """One engine execution with its matching ground truth."""

    round_index: int
    engine_label: str
    outcome: JoinOutcome
    oracle: JoinResult
    records: List[FullTupleRecord]
    tuple_format: TupleFormat


@dataclass
class TrialExecution:
    """Everything the invariant catalogue inspects for one trial."""

    spec: TrialSpec
    setup: TrialSetup
    rounds: List[RoundObservation]
    registry: object = None  # MetricsRegistry for single-shot engines
    fingerprint: Dict[str, object] = field(default_factory=dict)
    #: Fingerprint of an independent re-execution (determinism cross-check);
    #: ``None`` when the spec did not request one.
    replay_fingerprint: Optional[Dict[str, object]] = None


@dataclass
class TrialReport:
    """Outcome of one fuzz trial: the execution plus its violations."""

    spec: TrialSpec
    violations: List[Violation]
    execution: Optional[TrialExecution] = None

    @property
    def passed(self) -> bool:
        return not self.violations

    @property
    def first(self) -> Optional[Violation]:
        return self.violations[0] if self.violations else None


def _capture_records(fmt: TupleFormat) -> List[FullTupleRecord]:
    """Every alive node's tuple+flags under the current snapshot."""
    records = []
    for node_id in sorted(fmt.world.network.sensor_node_ids):
        record, _flags = node_tuple(fmt, node_id)
        if record is not None:
            records.append(record)
    return records


def _outcome_fingerprint(obs: RoundObservation) -> Dict[str, object]:
    """Exact-float fingerprint of one round's observable outcome."""
    outcome = obs.outcome
    result = outcome.result
    return {
        "engine": obs.engine_label,
        "combinations": tuple(sorted(result.combinations)),
        "rows": tuple(
            sorted(tuple(sorted(row.items())) for row in result.rows)
        ),
        "details": tuple(sorted(outcome.details.items())),
        "response_time_s": outcome.response_time_s,
        "tx_packets": tuple(sorted(outcome.stats.tx_packets_by_phase().items())),
        "retx_packets": tuple(sorted(outcome.stats.retx_packets_by_phase().items())),
        "oracle_combinations": tuple(sorted(obs.oracle.combinations)),
    }


def execute_trial(setup: TrialSetup) -> TrialExecution:
    """Run the spec's engine over its freshly built world."""
    spec = setup.spec
    if spec.uses_rounds:
        rounds = _execute_rounds(setup)
        registry = None
    else:
        rounds, registry = _execute_single_shot(setup)
    fingerprint: Dict[str, object] = {
        f"round{obs.round_index}": _outcome_fingerprint(obs) for obs in rounds
    }
    fingerprint["total_energy"] = setup.network.total_energy()
    return TrialExecution(
        spec=spec,
        setup=setup,
        rounds=rounds,
        registry=registry,
        fingerprint=fingerprint,
    )


def _execute_single_shot(
    setup: TrialSetup,
) -> Tuple[List[RoundObservation], object]:
    spec = setup.spec
    if spec.engine == "des-sensjoin":
        # Churn trials exercise the incremental self-healing path; the
        # fixed-fault trials keep the historical full-rebuild repair.
        recovery = (
            RecoveryPolicy(repair="reattach")
            if spec.churn_rate > 0
            else RecoveryPolicy()
        )
        algorithm = DesSensJoin(
            fault_plan=setup.fault_plan,
            recovery=recovery,
            repair_seed=spec.seed,
        )
    else:
        algorithm = make_algorithm(spec.engine)
    # The oracle and the record capture reflect the pre-fault population:
    # take the same snapshot the engine will re-take (drift is zero for
    # single-shot specs, so the readings are identical).
    setup.world.take_snapshot(0.0)
    fmt = TupleFormat(setup.query, setup.world)
    records = _capture_records(fmt)
    context = ExecutionContext(
        network=setup.network, tree=setup.tree, world=setup.world, query=setup.query
    )
    oracle = oracle_result(context)
    telemetry = Telemetry.capture()
    outcome = run_snapshot(
        setup.network,
        setup.world,
        setup.query,
        algorithm,
        tree=setup.tree,
        snapshot_time=0.0,
        tree_seed=spec.seed,
        telemetry=telemetry,
    )
    obs = RoundObservation(
        round_index=0,
        engine_label=outcome.algorithm,
        outcome=outcome,
        oracle=oracle,
        records=records,
        tuple_format=fmt,
    )
    return [obs], telemetry.registry


def _execute_rounds(setup: TrialSetup) -> List[RoundObservation]:
    """Drive a stateful executor (adaptive / incremental) for two rounds.

    The oracle is captured *after* each round: ``run_round`` takes its own
    snapshot, and the link-layer ARQ makes delivery exact under loss, so
    the post-round world state is exactly what the engine saw.
    """
    spec = setup.spec
    if spec.engine == "adaptive":
        executor = AdaptiveJoin(
            setup.network,
            setup.world,
            setup.query,
            tree=setup.tree,
            tree_seed=spec.seed,
        )
    else:
        executor = IncrementalSensJoin(
            setup.network,
            setup.world,
            setup.query,
            tree=setup.tree,
            tree_seed=spec.seed,
        )
    rounds: List[RoundObservation] = []
    for index, t in enumerate(ROUND_TIMES):
        if spec.engine == "adaptive":
            outcome, chosen = executor.run_round(t)
            label = f"adaptive->{chosen}"
        else:
            outcome = executor.run_round(t)
            label = outcome.algorithm
        fmt = TupleFormat(setup.query, setup.world)
        records = _capture_records(fmt)
        context = ExecutionContext(
            network=setup.network,
            tree=setup.tree,
            world=setup.world,
            query=setup.query,
        )
        rounds.append(
            RoundObservation(
                round_index=index,
                engine_label=label,
                outcome=outcome,
                oracle=oracle_result(context),
                records=records,
                tuple_format=fmt,
            )
        )
    return rounds


def run_trial(spec: TrialSpec) -> TrialReport:
    """Build, execute and check one trial; crashes become violations."""
    try:
        execution = execute_trial(build_trial(spec))
        if spec.check_determinism:
            execution.replay_fingerprint = execute_trial(build_trial(spec)).fingerprint
    except Exception:
        return TrialReport(
            spec=spec,
            violations=[
                Violation(
                    "engine-matches-oracle",
                    "engine raised instead of producing a result:\n"
                    + traceback.format_exc(limit=8),
                )
            ],
        )
    return TrialReport(
        spec=spec, violations=all_violations(execution), execution=execution
    )
