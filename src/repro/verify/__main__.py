"""CLI for the differential harness.

Subcommands::

    python -m repro.verify fuzz --trials 100 --seed 0 [--engines a,b]
        [--artifact-dir DIR] [--no-shrink]
    python -m repro.verify replay ARTIFACT.json
    python -m repro.verify list

``fuzz`` exits 0 iff every trial passed every invariant; failures are shrunk
and written as replayable artifacts.  ``replay`` exits 0 iff the artifact's
violation reproduces (so a fixed bug makes the replay *fail*, flagging the
artifact as stale).  ``list`` prints the invariant catalogue and the trial
axes.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .artifact import ReproArtifact, replay
from .fuzz import fuzz
from .generators import DEPLOYMENTS, ENGINES, LARGE_NODE_LADDER, NODE_LADDER
from .invariants import INVARIANTS


def _cmd_fuzz(args: argparse.Namespace) -> int:
    if args.engines:
        engines = tuple(e.strip() for e in args.engines.split(","))
    elif args.churn is not None:
        # Churn is replayed in-flight by the DES engine only; a churn smoke
        # without an explicit engine list drives just that engine.
        engines = ("des-sensjoin",)
    else:
        engines = ENGINES
    for engine in engines:
        if engine not in ENGINES:
            print(f"unknown engine {engine!r}; known: {', '.join(ENGINES)}", file=sys.stderr)
            return 2
    artifact_dir = Path(args.artifact_dir) if args.artifact_dir else None
    report = fuzz(
        trials=args.trials,
        seed=args.seed,
        engines=engines,
        artifact_dir=artifact_dir,
        shrink_failures=not args.no_shrink,
        progress=print,
        churn_rate=args.churn,
        routing=args.routing,
        large=args.large,
    )
    print(
        f"\n{report.passed}/{report.trials} trial(s) passed, "
        f"{len(report.failures)} failure(s) "
        f"(seed {report.seed}, engines {', '.join(report.engines)})"
    )
    for failure in report.failures:
        print(f"  trial {failure.trial_index}: {failure.violation}")
        if failure.artifact_path is not None:
            print(f"    artifact: {failure.artifact_path}")
    return 0 if report.ok else 1


def _cmd_replay(args: argparse.Namespace) -> int:
    artifact = ReproArtifact.load(Path(args.artifact))
    print(f"replaying {args.artifact}")
    print(f"  invariant: {artifact.invariant}")
    print(f"  spec:      {artifact.spec.describe()}")
    if artifact.shrink_steps:
        print(f"  shrunk via: {'; '.join(artifact.shrink_steps)}")
    outcome = replay(artifact)
    if outcome.reproduced:
        print(f"REPRODUCED: {outcome.violation}")
        return 0
    if outcome.report.violations:
        print("did not reproduce the recorded invariant, but others failed:")
        for violation in outcome.report.violations:
            print(f"  {violation}")
    else:
        print("did not reproduce — every invariant passed (artifact is stale)")
    return 1


def _cmd_list(_args: argparse.Namespace) -> int:
    print("invariants (catalogue order):")
    for invariant in INVARIANTS.values():
        print(f"  {invariant.name}")
        print(f"      {invariant.description}")
    print("\ntrial axes:")
    print(f"  engines:     {', '.join(ENGINES)}")
    print(f"  deployments: {', '.join(DEPLOYMENTS)}")
    print(f"  node counts: {', '.join(str(n) for n in NODE_LADDER)}")
    print(
        "  large ladder: "
        + ", ".join(str(n) for n in LARGE_NODE_LADDER)
        + " (--large)"
    )
    print("  relations:   self (sensors x sensors), two (rel_a x rel_b)")
    print("  routing:     flat (CTP), cluster (grid-cell heads)")
    print("  faults:      node-crash, link-drop, loss-burst (des-sensjoin only)")
    print("  churn:       seeded departure/rejoin churn rate (des-sensjoin only)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Differential correctness harness: fuzz, replay, list.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fuzz = sub.add_parser("fuzz", help="run seeded trials across the matrix")
    p_fuzz.add_argument("--trials", type=int, default=100)
    p_fuzz.add_argument("--seed", type=int, default=0)
    p_fuzz.add_argument(
        "--engines", default="", help="comma-separated subset (default: all)"
    )
    p_fuzz.add_argument(
        "--artifact-dir", default="", help="write repro artifacts for failures here"
    )
    p_fuzz.add_argument(
        "--no-shrink", action="store_true", help="skip shrinking failing trials"
    )
    p_fuzz.add_argument(
        "--churn",
        type=float,
        default=None,
        metavar="RATE",
        help="pin the churn departure fraction of des-sensjoin trials "
        "(restricts the engine list to des-sensjoin unless --engines is given)",
    )
    p_fuzz.add_argument(
        "--routing",
        choices=["flat", "cluster"],
        default=None,
        help="pin the routing-tree mode (default: ~1 in 4 trials use cluster)",
    )
    p_fuzz.add_argument(
        "--large",
        action="store_true",
        help="plan trials on the large-deployment ladder (128..2048 nodes)",
    )
    p_fuzz.set_defaults(func=_cmd_fuzz)

    p_replay = sub.add_parser("replay", help="re-run a saved repro artifact")
    p_replay.add_argument("artifact")
    p_replay.set_defaults(func=_cmd_replay)

    p_list = sub.add_parser("list", help="print the invariant catalogue")
    p_list.set_defaults(func=_cmd_list)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
