"""High-level facade: a sensor network as a queryable database.

:class:`SensorNetworkDB` bundles deployment, data binding, routing and query
execution behind the declarative interface the paper advocates (§III): you
hand it SQL in the TinyDB-flavoured dialect, it hands back result rows plus
the communication-cost report.

>>> db = SensorNetworkDB(node_count=300, seed=7)
>>> report = db.execute('''
...     SELECT A.hum, B.hum FROM sensors A, sensors B
...     WHERE A.temp - B.temp > 18 ONCE
... ''')
>>> report.rows          # the join result           # doctest: +SKIP
>>> report.transmissions # what it cost the network  # doctest: +SKIP

The facade is deliberately thin: everything it does is available through the
underlying packages (``repro.sim``, ``repro.joins``, ...) for users who need
full control.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from . import constants
from .data.relations import SensorWorld
from .errors import QueryError
from .joins.base import JoinOutcome, TupleFormat
from .joins.runner import make_algorithm, run_continuous, run_snapshot
from .joins.sensjoin import SensJoinConfig
from .query.parser import parse_query
from .query.query import JoinQuery, Once, SamplePeriod
from .routing.ctp import build_tree
from .routing.tree import RoutingTree
from .sim.network import DeploymentConfig, Network, deploy_uniform
from .sim.radio import PacketFormat

__all__ = ["SensorNetworkDB", "QueryReport"]


@dataclass
class QueryReport:
    """What :meth:`SensorNetworkDB.execute` returns."""

    query: JoinQuery
    outcome: JoinOutcome

    @property
    def rows(self) -> List[Dict[str, float]]:
        """The SELECT output rows."""
        return self.outcome.result.rows

    @property
    def transmissions(self) -> int:
        """Total link-layer transmissions of this execution."""
        return self.outcome.total_transmissions

    @property
    def retransmissions(self) -> int:
        """Link-layer ARQ retransmissions (zero on a lossless network)."""
        return self.outcome.total_retransmissions

    @property
    def algorithm(self) -> str:
        """Which join method produced the result."""
        return self.outcome.algorithm

    def summary(self) -> str:
        """One-paragraph human-readable execution report."""
        phases = self.outcome.per_phase_transmissions()
        phase_text = ", ".join(f"{name}: {count}" for name, count in sorted(phases.items()))
        retx = self.retransmissions
        retx_text = f", {retx} retransmissions" if retx else ""
        return (
            f"{self.algorithm}: {self.outcome.result.row_count} row(s), "
            f"{self.transmissions} transmissions ({phase_text}){retx_text}, "
            f"max node load {self.outcome.max_node_transmissions()} packets, "
            f"response time {self.outcome.response_time_s:.2f}s"
        )


class SensorNetworkDB:
    """A deployed, data-bound sensor network with a SQL front door."""

    def __init__(
        self,
        node_count: int = 300,
        area_side_m: Optional[float] = None,
        seed: int = 0,
        max_packet_bytes: int = constants.DEFAULT_MAX_PACKET_BYTES,
        length_scale: float = 150.0,
        drift_rate: float = 0.0,
        loss_rate: float = 0.0,
        network: Optional[Network] = None,
        world: Optional[SensorWorld] = None,
    ):
        """Deploy a fresh network (or wrap an existing network + world).

        ``area_side_m`` defaults to the paper's node density.  ``drift_rate``
        makes the fields evolve over time (for ``SAMPLE PERIOD`` queries).
        ``loss_rate`` turns on the lossy link layer with ARQ (worst-link
        packet-loss probability; zero keeps the classic lossless channel).
        """
        if (network is None) != (world is None):
            raise ValueError("pass both network and world, or neither")
        if network is None:
            if area_side_m is None:
                density = constants.PAPER_NODE_COUNT / constants.PAPER_AREA_SIDE_M**2
                area_side_m = math.sqrt(node_count / density)
            config = DeploymentConfig(
                node_count=node_count,
                area_side_m=area_side_m,
                seed=seed,
                loss_rate=loss_rate,
            )
            network = deploy_uniform(config, packet_format=PacketFormat(max_packet_bytes))
            world = SensorWorld.homogeneous(
                network,
                seed=seed,
                length_scale=length_scale,
                drift_rate=drift_rate,
                area_side_m=area_side_m,
            )
        assert world is not None
        self.network = network
        self.world = world
        self.seed = seed
        self.tree: RoutingTree = build_tree(network, seed=seed)

    # -- queries -----------------------------------------------------------------

    def parse(self, sql: str) -> JoinQuery:
        """Parse and validate a query against this network's catalogue."""
        return parse_query(sql, catalog=self.world.catalog)

    def execute(
        self,
        sql: Union[str, JoinQuery],
        algorithm: str = "sens-join",
        sens_config: Optional[SensJoinConfig] = None,
        snapshot_time: float = 0.0,
    ) -> QueryReport:
        """Execute a snapshot (``ONCE``) query and return rows + costs."""
        query = self.parse(sql) if isinstance(sql, str) else sql
        if not isinstance(query.mode, Once):
            raise QueryError(
                "execute() runs snapshot queries; use execute_stream() for "
                "SAMPLE PERIOD queries"
            )
        outcome = run_snapshot(
            self.network,
            self.world,
            query,
            make_algorithm(algorithm, sens_config),
            tree=self.tree,
            snapshot_time=snapshot_time,
            tree_seed=self.seed,
        )
        return QueryReport(query, outcome)

    def execute_stream(
        self,
        sql: Union[str, JoinQuery],
        executions: int = 5,
        algorithm: str = "sens-join",
    ) -> List[QueryReport]:
        """Execute a ``SAMPLE PERIOD`` query for several rounds."""
        query = self.parse(sql) if isinstance(sql, str) else sql
        if not isinstance(query.mode, SamplePeriod):
            raise QueryError("execute_stream() expects a SAMPLE PERIOD query")
        outcomes = run_continuous(
            self.network,
            self.world,
            query,
            make_algorithm(algorithm, None),
            executions=executions,
            tree=self.tree,
        )
        return [QueryReport(query, outcome) for outcome in outcomes]

    def explain(self, sql: Union[str, JoinQuery]) -> str:
        """Describe how SENS-Join would process the query (no execution)."""
        query = self.parse(sql) if isinstance(sql, str) else sql
        fmt = TupleFormat(query, self.world)
        lines = [
            f"query: {query.sql().splitlines()[0]} ...",
            f"relations: {', '.join(f'{n} AS {a}' for n, a in query.relations)}",
            f"join attributes: {fmt.join_attributes} "
            f"({fmt.raw_join_tuple_bytes} bytes raw)",
            f"full tuple: {fmt.full_attributes} ({fmt.full_tuple_bytes} bytes)",
            "join-attribute ratio: "
            + ", ".join(
                f"{alias}={query.join_attribute_ratio(alias):.0%}" for alias in query.aliases
            ),
            f"quantizer: {fmt.quantizer!r}",
            f"plan: collect join-attribute quadtree (Treecut D_max="
            f"{constants.DEFAULT_TREECUT_DMAX_BYTES}B) -> base-station filter "
            "-> selective filter forwarding -> collect matching full tuples",
        ]
        return "\n".join(lines)

    def __repr__(self) -> str:
        nodes = len(self.network.sensor_node_ids)
        return f"<SensorNetworkDB {nodes} nodes, tree height {self.tree.height}>"
