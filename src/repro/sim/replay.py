"""Cross-validation of the analytic timing model through the DES kernel.

The join protocols compute their response times analytically (per-node
critical paths folded into the tree traversals).  This module recomputes the
same quantity *independently*: it takes the channel's transmission log, spawns
one kernel process per node, and lets the discrete-event machinery derive the
phase's completion time — each node transmits only after all of its children
have (collection phases), or after its parent's broadcast arrived
(dissemination phases).

Tests assert that the DES-derived times equal the analytic ones exactly;
any divergence would mean the hand-rolled critical-path code and the
simulated schedule disagree.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, Iterable, List

from ..errors import SimulationError
from .kernel import Environment
from .radio import Transmission

__all__ = ["replay_collection_phase", "replay_dissemination_phase"]


def _transmissions_by_sender(
    transmissions: Iterable[Transmission], phase: str
) -> Dict[int, List[Transmission]]:
    by_sender: Dict[int, List[Transmission]] = defaultdict(list)
    for transmission in transmissions:
        if transmission.phase == phase:
            by_sender[transmission.sender].append(transmission)
    return by_sender


def replay_collection_phase(
    tree,
    transmissions: Iterable[Transmission],
    phase: str,
    latency_for: Callable[[int], float],
    participants: Iterable[int] | None = None,
) -> float:
    """DES completion time of an upward (post-order) phase.

    Every participating node waits for all of its participating children,
    then spends the serialisation latency of whatever it transmitted in
    ``phase`` (zero if it sent nothing).  Returns the time at which the root
    has heard from every child — the phase's critical path.

    ``participants`` restricts the replay to a subset of nodes (e.g. the
    non-exited nodes of SENS-Join's final phase); children outside the set
    contribute no dependency.
    """
    by_sender = _transmissions_by_sender(transmissions, phase)
    member = set(participants) if participants is not None else set(tree.node_ids)
    env = Environment()
    done = {node_id: env.event() for node_id in tree.node_ids if node_id in member}

    def node_process(node_id: int):
        child_events = [
            done[child] for child in tree.children(node_id) if child in done
        ]
        if child_events:
            yield env.all_of(child_events)
        delay = sum(
            latency_for(transmission.payload_bytes)
            for transmission in by_sender.get(node_id, [])
        )
        if delay:
            yield env.timeout(delay)
        done[node_id].succeed(env.now)

    for node_id in done:
        env.process(node_process(node_id))
    if tree.root not in done:
        raise SimulationError("the root must participate in a collection phase")
    return float(env.run(until=done[tree.root]))


def replay_dissemination_phase(
    tree,
    transmissions: Iterable[Transmission],
    phase: str,
    latency_for: Callable[[int], float],
) -> Dict[int, float]:
    """DES arrival times of a downward (pre-order) broadcast phase.

    The root broadcasts at time 0; every other broadcaster waits for its own
    arrival first.  Returns node -> arrival time for every node that received
    the phase's broadcasts (the root arrives at 0).
    """
    by_sender = _transmissions_by_sender(transmissions, phase)
    env = Environment()
    arrival = {tree.root: env.event()}
    for sends in by_sender.values():
        for transmission in sends:
            for receiver in transmission.receivers:
                arrival.setdefault(receiver, env.event())

    def broadcaster(node_id: int):
        yield arrival[node_id]
        for transmission in by_sender.get(node_id, []):
            yield env.timeout(latency_for(transmission.payload_bytes))
            for receiver in transmission.receivers:
                if not arrival[receiver].triggered:
                    arrival[receiver].succeed(env.now)

    for node_id in by_sender:
        arrival.setdefault(node_id, env.event())
        env.process(broadcaster(node_id))
    arrival[tree.root].succeed(0.0)
    env.run()
    times: Dict[int, float] = {}
    for node_id, event in arrival.items():
        if event.triggered:
            times[node_id] = float(event.value)
    return times
