"""Simulation substrate: DES kernel, nodes, radio, energy, deployment.

This package replaces the paper's ns-2 testbed (see DESIGN.md, substitution
table).  The public surface is re-exported here.
"""

from .energy import EnergyLedger, EnergyModel
from .faults import (
    Fault,
    FaultInjector,
    FaultPlan,
    random_crash_plan,
)
from .kernel import AllOf, Environment, Event, Interrupt, Process, Timeout
from .network import (
    DeploymentConfig,
    Network,
    deploy_clustered,
    deploy_grid,
    deploy_uniform,
)
from .node import BASE_STATION_ID, SensorNode
from .radio import Channel, PacketFormat, Transmission
from .replay import replay_collection_phase, replay_dissemination_phase
from .stats import NodeLoad, TransmissionStats
from .trace import ListTracer, NullTracer, TraceEvent, Tracer

__all__ = [
    "AllOf",
    "BASE_STATION_ID",
    "Channel",
    "DeploymentConfig",
    "EnergyLedger",
    "EnergyModel",
    "Environment",
    "Event",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "Interrupt",
    "ListTracer",
    "Network",
    "NodeLoad",
    "NullTracer",
    "PacketFormat",
    "Process",
    "SensorNode",
    "Timeout",
    "TraceEvent",
    "Tracer",
    "Transmission",
    "TransmissionStats",
    "deploy_clustered",
    "deploy_grid",
    "deploy_uniform",
    "random_crash_plan",
    "replay_collection_phase",
    "replay_dissemination_phase",
]
