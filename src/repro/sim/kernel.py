"""A small discrete-event simulation kernel.

The SENS-Join paper evaluates on ns-2; this module provides the local
substitute: a generator-based process-interaction kernel in the style of
SimPy (which is not available in this environment).  Protocol code is written
as Python generator functions that ``yield`` events:

>>> env = Environment()
>>> log = []
>>> def proc(env, name, delay):
...     yield env.timeout(delay)
...     log.append((env.now, name))
>>> _ = env.process(proc(env, "a", 2.0))
>>> _ = env.process(proc(env, "b", 1.0))
>>> env.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]

Supported primitives
--------------------
``Environment.timeout(delay)``
    An event that fires ``delay`` time units in the future.
``Environment.event()``
    A bare event that some other process triggers via ``succeed``.
``Environment.process(generator)``
    Registers a process; the returned :class:`Process` is itself an event
    that fires when the generator finishes (carrying its return value).
``AllOf(env, events)``
    Fires once every listed event has fired.

Determinism
-----------
Events scheduled for the same time fire in insertion order (a monotonically
increasing tiebreaker is part of the heap key), so simulations are exactly
reproducible run-to-run.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from ..errors import SimulationError

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "Interrupt",
]


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries whatever object the interrupter supplied.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event has three states: *pending* (created, not triggered),
    *triggered* (scheduled to fire) and *processed* (its callbacks ran).
    ``value`` carries the payload passed to :meth:`succeed` or the exception
    passed to :meth:`fail`.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None  # None = not triggered yet
        self._processed = False

    # -- state inspection --------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only valid once triggered)."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The payload of a succeeded event / exception of a failed one."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._value

    # -- triggering --------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional payload."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes will see the exception re-raised at their
        ``yield`` statement.
        """
        if self._ok is not None:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() expects an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def _fire(self) -> None:
        """Hook invoked by the environment at fire time, before callbacks.

        Events triggered via :meth:`succeed`/:meth:`fail` carry their state
        already; subclasses that self-schedule (:class:`Timeout`) override
        this to materialise their state only once the delay has elapsed.
        """


class Timeout(Event):
    """An event that fires ``delay`` time units after creation.

    The event is scheduled immediately but stays *pending* until the delay
    elapses: ``triggered`` is False and ``value`` unreadable before the fire
    time, exactly like an externally triggered event.
    """

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._pending_value = value
        env._schedule(self, delay=delay)

    def _fire(self) -> None:
        self._ok = True
        self._value = self._pending_value

    def succeed(self, value: Any = None) -> "Event":
        raise SimulationError("a Timeout fires by itself; it cannot be succeeded")

    def fail(self, exception: BaseException) -> "Event":
        raise SimulationError("a Timeout fires by itself; it cannot be failed")


class Process(Event):
    """Wraps a generator; also an event that fires when the generator ends.

    The generator may ``return value``; that value becomes the event payload
    so parent processes can ``result = yield env.process(child(...))``.
    """

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "send"):
            raise SimulationError(
                "process() expects a generator (did you forget to call the "
                "generator function?)"
            )
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        # Kick off the process at the current simulation time.
        init = Event(env)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        env._schedule(init)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if not self.is_alive:
            raise SimulationError("cannot interrupt a finished process")
        # Detach from whatever the process was waiting on.
        if self._target is not None and self._resume in self._target.callbacks:
            self._target.callbacks.remove(self._resume)
            self._target = None
        wakeup = Event(self.env)
        wakeup._ok = False
        wakeup._value = Interrupt(cause)
        wakeup.callbacks.append(self._resume)
        self.env._schedule(wakeup)

    # -- engine ------------------------------------------------------------

    def _resume(self, event: Event) -> None:
        self._target = None
        try:
            if event._ok:
                next_event = self._generator.send(event._value)
            else:
                next_event = self._generator.throw(event._value)
        except StopIteration as stop:
            self._ok = True
            self._value = stop.value
            self.env._schedule(self)
            return
        except Interrupt as exc:
            # Uncaught interrupt terminates the process unsuccessfully.
            self._ok = False
            self._value = exc
            self.env._schedule(self)
            return
        if not isinstance(next_event, Event):
            raise SimulationError(
                f"process yielded {next_event!r}; processes must yield Event "
                "instances (timeout, event, process, ...)"
            )
        if next_event._processed:
            # The event already fired; resume immediately (at current time).
            # The bridge event becomes the process's target so an interrupt
            # arriving before it fires can detach it (otherwise the process
            # would be resumed twice: once by the bridge, once by the
            # interrupt's wakeup).
            immediate = Event(self.env)
            immediate._ok = next_event._ok
            immediate._value = next_event._value
            immediate.callbacks.append(self._resume)
            self._target = immediate
            self.env._schedule(immediate)
        else:
            self._target = next_event
            next_event.callbacks.append(self._resume)


class AllOf(Event):
    """Fires when all of the given events have fired.

    The payload is a list with the values of the child events, in the order
    they were passed in.  If any child fails, this event fails with the first
    failure.
    """

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._remaining = len(self._events)
        if self._remaining == 0:
            self.succeed([])
            return
        for event in self._events:
            if event._processed:
                self._on_child(event)
            else:
                event.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._ok is not None:
            return  # already failed
        if not event._ok:
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e._value for e in self._events])


class Environment:
    """Holds the simulation clock and the pending-event queue.

    The queue is *bucketed by timestamp*: a heap orders the distinct pending
    times and a deque per time holds that instant's events in insertion
    order.  Radio traffic schedules bursts of same-timestamp events (every
    receiver of a broadcast, every hop of a dissemination wave), so most
    scheduling is an O(1) deque append instead of an O(log n) heap push —
    and FIFO-per-timestamp is exactly the insertion-order tiebreaking the
    old ``(time, serial, event)`` heap provided, so runs stay reproducible
    event-for-event.
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._times: list[float] = []  # heap of distinct pending times
        self._buckets: dict[float, deque[Event]] = {}

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    # -- event factories ----------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Register ``generator`` as a process starting now."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event that fires when every event in ``events`` has fired."""
        return AllOf(self, events)

    def every(
        self,
        period: float,
        callback: Callable[[float], Any],
        until: Optional[float] = None,
    ) -> Process:
        """Invoke ``callback(now)`` every ``period`` time units, as a process.

        The callback fires first at ``now + period`` (never at registration
        time) and then at every period boundary, in the deterministic
        insertion-order position the bucketed queue gives it — re-running
        the same simulation samples the same states.  With ``until`` the process
        stops after the last tick at or before that time; without it the
        process ticks for as long as the simulation is driven (pending
        timeouts past the run horizon are simply never fired, so an
        unbounded periodic process cannot stall ``run(until=...)``).

        This is the registration point for
        :class:`repro.obs.timeseries.MetricsSampler` — periodic metric
        snapshots are ordinary kernel processes, so sampling never perturbs
        the deterministic event order of the protocol processes themselves.
        """
        if period <= 0:
            raise SimulationError(f"periodic callback needs period > 0: {period!r}")

        def _ticker() -> Generator:
            while True:
                yield self.timeout(period)
                if until is not None and self._now > until:
                    return
                callback(self._now)

        return self.process(_ticker())

    # -- scheduling ---------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        when = self._now + delay
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = deque((event,))
            heapq.heappush(self._times, when)
        else:
            bucket.append(event)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._times[0] if self._times else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._times:
            raise SimulationError("no scheduled events")
        when = self._times[0]
        bucket = self._buckets[when]
        event = bucket.popleft()
        if not bucket:
            heapq.heappop(self._times)
            del self._buckets[when]
        self._now = when
        event._fire()
        event._processed = True
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        Parameters
        ----------
        until:
            ``None`` — run until no events remain.
            a number — run until the clock reaches that time.
            an :class:`Event` — run until that event has been processed and
            return its value (re-raising its exception if it failed).
        """
        if isinstance(until, Event):
            target = until
            while not target._processed:
                if not self._times:
                    raise SimulationError(
                        "simulation ran out of events before the awaited "
                        "event fired (deadlock?)"
                    )
                self.step()
            if target._ok:
                return target._value
            raise target._value
        deadline = float("inf") if until is None else float(until)
        # Tight drain: whole buckets at a time, without re-consulting the
        # heap per event.  Callbacks may append to the *current* bucket
        # (zero-delay scheduling at the current time) — the inner loop picks
        # those up in insertion order, exactly like the per-event heap did.
        # Earlier times cannot appear (delays are never negative).
        times = self._times
        buckets = self._buckets
        heappop = heapq.heappop
        while times and times[0] <= deadline:
            when = times[0]
            bucket = buckets[when]
            self._now = when
            try:
                while bucket:
                    event = bucket.popleft()
                    event._fire()
                    event._processed = True
                    callbacks, event.callbacks = event.callbacks, []
                    for callback in callbacks:
                        callback(event)
            finally:
                # Keep the bucket invariant (present => non-empty) even if a
                # callback raised mid-drain.
                if not bucket:
                    heappop(times)
                    del buckets[when]
        if until is not None:
            self._now = max(self._now, deadline) if deadline != float("inf") else self._now
        return None

    def run_until(self, event: Event, deadline: float) -> bool:
        """Run until ``event`` is processed, bounded by a wall-clock deadline.

        Unlike ``run(until=event)``, a starved wait is not an error — it is
        an answer.  Returns ``True`` when the event fired at or before the
        deadline.  Returns ``False`` in two stall cases the §IV-F recovery
        logic distinguishes by the clock it leaves behind:

        * the queue drained with the event still pending — the simulated
          system has gone quiet and the event can never fire; the clock
          stays at the last processed event (the stall instant);
        * the next scheduled event lies beyond ``deadline`` — the clock
          advances exactly to the deadline (the watchdog fired first).
        """
        while not event._processed:
            next_time = self.peek()
            if next_time > deadline:
                if next_time != float("inf"):
                    self.run(until=deadline)
                return False
            self.step()
        return True
