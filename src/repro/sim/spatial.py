"""Uniform spatial grid index over node positions.

The unit-disk connectivity graph (§VI, "General setting") only ever asks one
geometric question: *which nodes lie within radio range of a point?*  The
seed implementation answered it by materialising the full O(n²) pairwise
distance matrix and rebuilding it from scratch on every crash/rejoin/move,
which caps experiments at a few thousand nodes.  This module replaces that
with the classic uniform-grid spatial hash:

* the plane is partitioned into square cells of side ``cell_m`` (the network
  uses ``cell_m = radio_range_m``);
* every indexed item lives in exactly one cell, found by flooring its
  coordinates — O(1) insert / remove / move;
* a range query with radius ``r <= cell_m`` only has to inspect the 3×3
  block of cells around the query point, so neighbour discovery is O(k) in
  the local population instead of O(n).

Positions are stored in *array-backed columns* (``array('d')`` x/y columns
with swap-remove slot recycling) rather than per-item tuples, so a 100k-node
deployment keeps its geometry in two flat double arrays instead of 100k
boxed pairs.

Float parity
------------
The whole point of the index is to be a pure drop-in for the dense build, so
the membership predicate reproduces the reference computation bit for bit:
``dx*dx + dy*dy <= limit2`` on IEEE doubles, with ``limit2`` computed by the
caller exactly as the dense path did (``radio_range_m**2``).  Subtraction,
multiplication and the single addition happen in the same order as the
vectorised ``einsum`` reference, so the resulting adjacency sets are
set-identical — the property suite in ``tests/test_sim_spatial.py`` pins
this across deployment shapes and churn sequences.
"""

from __future__ import annotations

import math
from array import array
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["SpatialGridIndex", "grid_cell"]

Cell = Tuple[int, int]


def grid_cell(x: float, y: float, cell_m: float) -> Cell:
    """Cell coordinates of point ``(x, y)`` on a grid of pitch ``cell_m``.

    Shared by the index and the cluster-head routing layer so both agree on
    cell membership (heads are elected per occupied grid cell).
    """
    return (math.floor(x / cell_m), math.floor(y / cell_m))


class SpatialGridIndex:
    """Spatial hash of integer-keyed points with O(1) updates.

    Items are integer ids (node ids in practice).  The index answers
    range queries of radius up to ``cell_m`` by scanning the 3×3 cell
    neighbourhood of the query point; larger radii would need a wider
    scan window and are rejected loudly rather than answered wrongly.
    """

    __slots__ = ("cell_m", "_cells", "_slot", "_ids", "_xs", "_ys")

    def __init__(self, cell_m: float):
        if cell_m <= 0:
            raise ValueError(f"cell size must be positive, got {cell_m}")
        self.cell_m = float(cell_m)
        #: cell -> set of item ids resident in that cell
        self._cells: Dict[Cell, set[int]] = {}
        #: item id -> slot in the position columns
        self._slot: Dict[int, int] = {}
        #: slot -> item id (dense, swap-remove keeps it gap-free)
        self._ids: List[int] = []
        self._xs = array("d")
        self._ys = array("d")

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, item: int) -> bool:
        return item in self._slot

    # -- updates -------------------------------------------------------------

    def insert(self, item: int, x: float, y: float) -> None:
        """Add ``item`` at ``(x, y)``.  Re-inserting an indexed item is a bug."""
        if item in self._slot:
            raise ValueError(f"item already indexed: {item}")
        self._slot[item] = len(self._ids)
        self._ids.append(item)
        self._xs.append(float(x))
        self._ys.append(float(y))
        self._cells.setdefault(grid_cell(x, y, self.cell_m), set()).add(item)

    def remove(self, item: int) -> None:
        """Drop ``item`` from the index (swap-remove keeps columns dense)."""
        slot = self._slot.pop(item)
        cell = grid_cell(self._xs[slot], self._ys[slot], self.cell_m)
        members = self._cells[cell]
        members.discard(item)
        if not members:
            del self._cells[cell]
        last = len(self._ids) - 1
        if slot != last:
            moved = self._ids[last]
            self._ids[slot] = moved
            self._xs[slot] = self._xs[last]
            self._ys[slot] = self._ys[last]
            self._slot[moved] = slot
        self._ids.pop()
        self._xs.pop()
        self._ys.pop()

    def discard(self, item: int) -> None:
        """Remove ``item`` if present; no-op otherwise."""
        if item in self._slot:
            self.remove(item)

    def move(self, item: int, x: float, y: float) -> None:
        """Relocate an indexed item (O(1): at most one cell handoff)."""
        slot = self._slot[item]
        old_cell = grid_cell(self._xs[slot], self._ys[slot], self.cell_m)
        new_cell = grid_cell(x, y, self.cell_m)
        self._xs[slot] = float(x)
        self._ys[slot] = float(y)
        if new_cell != old_cell:
            members = self._cells[old_cell]
            members.discard(item)
            if not members:
                del self._cells[old_cell]
            self._cells.setdefault(new_cell, set()).add(item)

    # -- queries -------------------------------------------------------------

    def position(self, item: int) -> Tuple[float, float]:
        """Stored ``(x, y)`` of an indexed item."""
        slot = self._slot[item]
        return (self._xs[slot], self._ys[slot])

    def cell_of(self, item: int) -> Cell:
        """Grid cell an indexed item currently resides in."""
        slot = self._slot[item]
        return grid_cell(self._xs[slot], self._ys[slot], self.cell_m)

    def occupied_cells(self) -> Iterator[Tuple[Cell, frozenset[int]]]:
        """Every non-empty cell with its resident item ids (sorted by cell)."""
        for cell in sorted(self._cells):
            yield cell, frozenset(self._cells[cell])

    def neighbours_within(
        self,
        x: float,
        y: float,
        limit2: float,
        exclude: Optional[int] = None,
    ) -> List[int]:
        """Items within squared distance ``limit2`` of ``(x, y)``.

        ``limit2`` is the *squared* radius, precomputed by the caller so the
        comparison reproduces the reference build's exact float expression.
        The radius must not exceed the cell size — the scan window is the
        3×3 block around the query point.
        """
        if limit2 > self.cell_m * self.cell_m:
            raise ValueError(
                f"query radius exceeds cell size {self.cell_m}; "
                "the 3x3 scan window would miss neighbours"
            )
        cx = math.floor(x / self.cell_m)
        cy = math.floor(y / self.cell_m)
        cells = self._cells
        slot_of = self._slot
        xs = self._xs
        ys = self._ys
        out: List[int] = []
        for gx in (cx - 1, cx, cx + 1):
            for gy in (cy - 1, cy, cy + 1):
                members = cells.get((gx, gy))
                if not members:
                    continue
                for item in members:
                    if item == exclude:
                        continue
                    slot = slot_of[item]
                    dx = x - xs[slot]
                    dy = y - ys[slot]
                    if dx * dx + dy * dy <= limit2:
                        out.append(item)
        return out
