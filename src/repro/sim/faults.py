"""Deterministic in-flight fault injection for the DES engine (§IV-F).

The paper's error-tolerance design is reactive: "If a link goes down during
the execution of a query, we rely upon the tree protocol to re-establish the
routing structure.  Afterwards, we simply re-execute the query."  To exercise
that path *inside* the simulation (rather than between abstract attempts, as
:func:`repro.joins.runner.run_with_failures` does), this module schedules
topology changes at simulated times on the DES kernel:

``node-crash``
    The node dies mid-query: it vanishes from the connectivity graph and its
    protocol process is interrupted, so anything it had buffered (proxied
    Treecut tuples, subtree filters) is lost with it.
``link-drop``
    A bidirectional link goes down permanently; sends across it exhaust the
    link-layer ARQ budget and fail.
``loss-burst``
    A transient interference burst: for ``duration_s`` every link loses each
    packet with at least ``loss_rate`` probability.  The ARQ absorbs the
    burst (extra retransmissions, no protocol failure) unless it exceeds the
    retry bound.

A :class:`FaultPlan` is an immutable, time-sorted schedule; building one from
a seed (:func:`random_crash_plan`) is deterministic, so a fixed plan yields
identical retries, ledgers and recall on every run.  :class:`FaultInjector`
replays the plan as a kernel process sharing the engine's
:class:`~repro.sim.kernel.Environment`, emitting one
:data:`~repro.sim.trace.FAULT_INJECT` trace event per applied fault.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..obs.telemetry import NULL_TELEMETRY, Telemetry
from .kernel import Environment, Process
from .network import Network
from .node import BASE_STATION_ID
from .trace import FAULT_INJECT, NullTracer, Tracer

__all__ = [
    "NODE_CRASH",
    "LINK_DROP",
    "LOSS_BURST",
    "Fault",
    "FaultPlan",
    "FaultInjector",
    "random_crash_plan",
]

NODE_CRASH = "node-crash"
LINK_DROP = "link-drop"
LOSS_BURST = "loss-burst"

_KINDS = (NODE_CRASH, LINK_DROP, LOSS_BURST)


@dataclass(frozen=True)
class Fault:
    """One scheduled fault; validated at construction, applied at ``time_s``."""

    time_s: float
    kind: str
    node_a: int = -1
    node_b: int = -1
    #: ``loss-burst`` only: how long the burst lasts.
    duration_s: float = 0.0
    #: ``loss-burst`` only: per-packet loss probability floor during the burst.
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError(f"fault time must be non-negative, got {self.time_s}")
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {', '.join(_KINDS)}"
            )
        if self.kind == NODE_CRASH:
            if self.node_a < 0:
                raise ValueError("node-crash needs a target node_a")
            if self.node_a == BASE_STATION_ID:
                raise ValueError("the base station is mains powered and does not crash")
        elif self.kind == LINK_DROP:
            if self.node_a < 0 or self.node_b < 0:
                raise ValueError("link-drop needs both node_a and node_b")
            if self.node_a == self.node_b:
                raise ValueError(f"a node has no link to itself: {self.node_a}")
        else:  # LOSS_BURST
            if self.duration_s <= 0:
                raise ValueError("loss-burst needs a positive duration_s")
            if not 0.0 < self.loss_rate <= 1.0:
                raise ValueError(
                    f"loss-burst loss_rate must be in (0, 1], got {self.loss_rate}"
                )

    def _sort_key(self) -> Tuple[float, str, int, int]:
        return (self.time_s, self.kind, self.node_a, self.node_b)

    def to_dict(self) -> dict:
        """JSON-ready representation (for repro artifacts and traces)."""
        return {
            "time_s": self.time_s,
            "kind": self.kind,
            "node_a": self.node_a,
            "node_b": self.node_b,
            "duration_s": self.duration_s,
            "loss_rate": self.loss_rate,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Fault":
        """Inverse of :meth:`to_dict`; re-runs construction validation."""
        return cls(
            time_s=float(data["time_s"]),
            kind=str(data["kind"]),
            node_a=int(data.get("node_a", -1)),
            node_b=int(data.get("node_b", -1)),
            duration_s=float(data.get("duration_s", 0.0)),
            loss_rate=float(data.get("loss_rate", 0.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of faults, sorted by injection time."""

    faults: Tuple[Fault, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.faults, key=Fault._sort_key))
        object.__setattr__(self, "faults", ordered)

    @classmethod
    def empty(cls) -> "FaultPlan":
        """A plan that injects nothing (the engine treats it as no plan)."""
        return cls(())

    def to_dict(self) -> dict:
        """JSON-ready representation; round-trips through :meth:`from_dict`."""
        return {"faults": [fault.to_dict() for fault in self.faults]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output (order-insensitive)."""
        return cls(tuple(Fault.from_dict(entry) for entry in data.get("faults", ())))

    @property
    def crashed_nodes(self) -> Tuple[int, ...]:
        """Targets of the plan's node crashes, in injection order."""
        return tuple(f.node_a for f in self.faults if f.kind == NODE_CRASH)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)


def random_crash_plan(
    node_ids: Sequence[int],
    crash_count: int,
    horizon_s: float = 1.0,
    seed: int = 0,
) -> FaultPlan:
    """Crash ``crash_count`` distinct nodes at uniform times in ``[0, horizon_s]``.

    Deterministic for a fixed ``seed``: the same victims crash at the same
    simulated times on every run.  The base station is never a victim.
    """
    if crash_count < 0:
        raise ValueError(f"negative crash count: {crash_count}")
    if horizon_s < 0:
        raise ValueError(f"negative horizon: {horizon_s}")
    candidates = sorted(n for n in node_ids if n != BASE_STATION_ID)
    if crash_count > len(candidates):
        raise ValueError(
            f"cannot crash {crash_count} of {len(candidates)} candidate nodes"
        )
    rng = random.Random(seed)
    victims = rng.sample(candidates, k=crash_count)
    faults = tuple(
        Fault(time_s=rng.uniform(0.0, horizon_s), kind=NODE_CRASH, node_a=victim)
        for victim in victims
    )
    return FaultPlan(faults)


class FaultInjector:
    """Replays a :class:`FaultPlan` on a live simulation.

    Runs as a kernel process on the engine's environment; each fault is
    applied at its scheduled simulated time.  ``on_node_crash`` lets the
    engine interrupt the dead node's protocol process the instant the crash
    lands (the process must not keep sending from beyond the grave).

    Loss bursts are implemented by swapping the channel's
    ``loss_probability`` for a wrapper that floors every link at the highest
    active burst rate; the original callable (possibly ``None``) is restored
    when the last burst expires.
    """

    def __init__(
        self,
        env: Environment,
        network: Network,
        plan: FaultPlan,
        tracer: Optional[Tracer] = None,
        on_node_crash: Optional[Callable[[int], None]] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.env = env
        self.network = network
        self.plan = plan
        self.tracer = tracer if tracer is not None else NullTracer()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.on_node_crash = on_node_crash
        self.applied: List[Fault] = []
        self._active_bursts: List[float] = []
        self._base_loss: Optional[Callable[[int, int], float]] = None

    def start(self) -> Process:
        """Register the injection process; call once, before ``env.run``."""
        return self.env.process(self._run())

    # -- internals -----------------------------------------------------------

    def _run(self):
        for fault in self.plan:
            delay = fault.time_s - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self._apply(fault)

    def _apply(self, fault: Fault) -> None:
        if fault.kind == NODE_CRASH:
            node = self.network.nodes.get(fault.node_a)
            if node is None:
                raise SimulationError(f"fault targets unknown node {fault.node_a}")
            if node.alive:
                self.network.fail_node(fault.node_a)
                if self.on_node_crash is not None:
                    self.on_node_crash(fault.node_a)
        elif fault.kind == LINK_DROP:
            self.network.fail_link(fault.node_a, fault.node_b)
        else:
            self._start_burst(fault)
        self.applied.append(fault)
        reg = self.telemetry.registry
        if reg.enabled:
            reg.counter("faults_injected_total", kind=fault.kind).inc()
        self.tracer.emit(
            self.env.now,
            fault.node_a,
            FAULT_INJECT,
            fault=fault.kind,
            node_b=fault.node_b,
            duration_s=fault.duration_s,
            loss_rate=fault.loss_rate,
        )

    def _burst_loss(self, sender: int, receiver: int) -> float:
        base = self._base_loss(sender, receiver) if self._base_loss is not None else 0.0
        if not self._active_bursts:
            return base
        return max(base, max(self._active_bursts))

    def _start_burst(self, fault: Fault) -> None:
        channel = self.network.channel
        if not self._active_bursts:
            self._base_loss = channel.loss_probability
            channel.loss_probability = self._burst_loss
        self._active_bursts.append(fault.loss_rate)
        self.env.process(self._end_burst(fault.loss_rate, fault.duration_s))

    def _end_burst(self, loss_rate: float, duration_s: float):
        yield self.env.timeout(duration_s)
        self._active_bursts.remove(loss_rate)
        if not self._active_bursts:
            self.network.channel.loss_probability = self._base_loss
            self._base_loss = None
