"""Deterministic in-flight fault injection for the DES engine (§IV-F).

The paper's error-tolerance design is reactive: "If a link goes down during
the execution of a query, we rely upon the tree protocol to re-establish the
routing structure.  Afterwards, we simply re-execute the query."  To exercise
that path *inside* the simulation (rather than between abstract attempts, as
:func:`repro.joins.runner.run_with_failures` does), this module schedules
topology changes at simulated times on the DES kernel:

``node-crash``
    The node dies mid-query: it vanishes from the connectivity graph and its
    protocol process is interrupted, so anything it had buffered (proxied
    Treecut tuples, subtree filters) is lost with it.
``link-drop``
    A bidirectional link goes down permanently; sends across it exhaust the
    link-layer ARQ budget and fail.
``loss-burst``
    A transient interference burst: for ``duration_s`` every link loses each
    packet with at least ``loss_rate`` probability.  The ARQ absorbs the
    burst (extra retransmissions, no protocol failure) unless it exceeds the
    retry bound.
``node-rejoin``
    A departed node comes back, optionally at a perturbed position (battery
    swap, reboot after transient failure).  Its links are rewired from the
    unit-disk rule at the new coordinates.
``node-move``
    One waypoint mobility step: the node relocates and the unit-disk
    adjacency is rebuilt around it (links appear and disappear).

A :class:`FaultPlan` is an immutable, time-sorted schedule; building one from
a seed (:func:`random_crash_plan`) is deterministic, so a fixed plan yields
identical retries, ledgers and recall on every run.  :class:`FaultInjector`
replays the plan as a kernel process sharing the engine's
:class:`~repro.sim.kernel.Environment`, emitting one
:data:`~repro.sim.trace.FAULT_INJECT` trace event per applied fault.

:class:`ChurnModel` generalizes the fixed schedule into a seeded *process*
description — hazard-rate departures, timed rejoins at perturbed positions,
and waypoint mobility steps — that :meth:`ChurnModel.materialize` expands
into a concrete, replayable :class:`FaultPlan` against a given topology.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..obs.telemetry import NULL_TELEMETRY, Telemetry
from .kernel import Environment, Process
from .network import Network
from .node import BASE_STATION_ID
from .trace import FAULT_INJECT, NullTracer, Tracer

__all__ = [
    "NODE_CRASH",
    "LINK_DROP",
    "LOSS_BURST",
    "NODE_REJOIN",
    "NODE_MOVE",
    "Fault",
    "FaultPlan",
    "ChurnModel",
    "FaultInjector",
    "random_crash_plan",
]

NODE_CRASH = "node-crash"
LINK_DROP = "link-drop"
LOSS_BURST = "loss-burst"
NODE_REJOIN = "node-rejoin"
NODE_MOVE = "node-move"

_KINDS = (NODE_CRASH, LINK_DROP, LOSS_BURST, NODE_REJOIN, NODE_MOVE)

#: Kinds whose application reads the optional ``x``/``y`` position payload.
_POSITIONED_KINDS = (NODE_REJOIN, NODE_MOVE)


@dataclass(frozen=True)
class Fault:
    """One scheduled fault; validated at construction, applied at ``time_s``."""

    time_s: float
    kind: str
    node_a: int = -1
    node_b: int = -1
    #: ``loss-burst`` only: how long the burst lasts.
    duration_s: float = 0.0
    #: ``loss-burst`` only: per-packet loss probability floor during the burst.
    loss_rate: float = 0.0
    #: ``node-rejoin``/``node-move`` only: target position.  A rejoin with
    #: both left ``None`` revives the node where it died.
    x: Optional[float] = None
    y: Optional[float] = None

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError(f"fault time must be non-negative, got {self.time_s}")
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {', '.join(_KINDS)}"
            )
        if self.kind == NODE_CRASH:
            if self.node_a < 0:
                raise ValueError("node-crash needs a target node_a")
            if self.node_a == BASE_STATION_ID:
                raise ValueError("the base station is mains powered and does not crash")
        elif self.kind == LINK_DROP:
            if self.node_a < 0 or self.node_b < 0:
                raise ValueError("link-drop needs both node_a and node_b")
            if self.node_a == self.node_b:
                raise ValueError(f"a node has no link to itself: {self.node_a}")
        elif self.kind == LOSS_BURST:
            if self.duration_s <= 0:
                raise ValueError("loss-burst needs a positive duration_s")
            if not 0.0 < self.loss_rate <= 1.0:
                raise ValueError(
                    f"loss-burst loss_rate must be in (0, 1], got {self.loss_rate}"
                )
        else:  # NODE_REJOIN / NODE_MOVE
            if self.node_a < 0:
                raise ValueError(f"{self.kind} needs a target node_a")
            if self.node_a == BASE_STATION_ID:
                raise ValueError("the base station neither departs nor moves")
            if (self.x is None) != (self.y is None):
                raise ValueError(f"{self.kind} needs both x and y (or neither)")
            if self.kind == NODE_MOVE and self.x is None:
                raise ValueError("node-move needs a destination (x, y)")

    def _sort_key(self) -> Tuple[float, str, int, int]:
        return (self.time_s, self.kind, self.node_a, self.node_b)

    def to_dict(self) -> dict:
        """JSON-ready representation (for repro artifacts and traces).

        The position payload is emitted only for the positioned kinds, so
        pre-churn plans serialize exactly as they always did.
        """
        data = {
            "time_s": self.time_s,
            "kind": self.kind,
            "node_a": self.node_a,
            "node_b": self.node_b,
            "duration_s": self.duration_s,
            "loss_rate": self.loss_rate,
        }
        if self.x is not None:
            data["x"] = self.x
            data["y"] = self.y
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Fault":
        """Inverse of :meth:`to_dict`; re-runs construction validation."""
        x = data.get("x")
        y = data.get("y")
        return cls(
            time_s=float(data["time_s"]),
            kind=str(data["kind"]),
            node_a=int(data.get("node_a", -1)),
            node_b=int(data.get("node_b", -1)),
            duration_s=float(data.get("duration_s", 0.0)),
            loss_rate=float(data.get("loss_rate", 0.0)),
            x=float(x) if x is not None else None,
            y=float(y) if y is not None else None,
        )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of faults, sorted by injection time."""

    faults: Tuple[Fault, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.faults, key=Fault._sort_key))
        object.__setattr__(self, "faults", ordered)

    @classmethod
    def empty(cls) -> "FaultPlan":
        """A plan that injects nothing (the engine treats it as no plan)."""
        return cls(())

    def to_dict(self) -> dict:
        """JSON-ready representation; round-trips through :meth:`from_dict`."""
        return {"faults": [fault.to_dict() for fault in self.faults]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output (order-insensitive)."""
        return cls(tuple(Fault.from_dict(entry) for entry in data.get("faults", ())))

    @property
    def crashed_nodes(self) -> Tuple[int, ...]:
        """Targets of the plan's node crashes, in injection order."""
        return tuple(f.node_a for f in self.faults if f.kind == NODE_CRASH)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)


def random_crash_plan(
    node_ids: Sequence[int],
    crash_count: int,
    horizon_s: float = 1.0,
    seed: int = 0,
) -> FaultPlan:
    """Crash ``crash_count`` distinct nodes at uniform times in ``[0, horizon_s]``.

    Deterministic for a fixed ``seed``: the same victims crash at the same
    simulated times on every run.  The base station is never a victim.
    """
    if crash_count < 0:
        raise ValueError(f"negative crash count: {crash_count}")
    if horizon_s < 0:
        raise ValueError(f"negative horizon: {horizon_s}")
    candidates = sorted(n for n in node_ids if n != BASE_STATION_ID)
    if crash_count > len(candidates):
        raise ValueError(
            f"cannot crash {crash_count} of {len(candidates)} candidate nodes"
        )
    rng = random.Random(seed)
    victims = rng.sample(candidates, k=crash_count)
    faults = tuple(
        Fault(time_s=rng.uniform(0.0, horizon_s), kind=NODE_CRASH, node_a=victim)
        for victim in victims
    )
    return FaultPlan(faults)


@dataclass(frozen=True)
class ChurnModel:
    """A seeded continuous-churn process over a deployment.

    Where :class:`FaultPlan` is a fixed schedule, a churn model is a
    *distribution* over schedules: per-node hazard-rate departures (each
    alive node departs after an exponential holding time), timed rejoins at
    positions perturbed from the departure point, and Poisson waypoint
    mobility steps that relocate nodes and rewire their unit-disk links.

    The model is pure data; :meth:`materialize` expands it against a
    concrete topology into an ordinary :class:`FaultPlan` using only
    ``random.Random(seed)`` state, so a (model, network) pair always yields
    the same plan — churn runs replay deterministically and round-trip
    through repro artifacts like any other fault schedule.

    A model with zero ``departure_rate`` and zero ``move_rate`` is falsy and
    materializes to the empty plan: engines and the broker treat it exactly
    as "no churn", preserving byte-identity of churn-free runs.
    """

    #: Per-node departure hazard (departures per node-second); the holding
    #: time before a node departs is ``Exp(departure_rate)``.
    departure_rate: float = 0.0
    #: Mean downtime before a departed node rejoins; ``0`` makes departures
    #: permanent.  Actual downtime is uniform in ``[0.5, 1.5] * mean``.
    rejoin_delay_s: float = 0.0
    #: Per-axis uniform perturbation of the rejoin position (battery-swapped
    #: nodes rarely land on the exact same spot); ``0`` rejoins in place.
    rejoin_jitter_m: float = 0.0
    #: Per-node waypoint-step hazard (steps per node-second).
    move_rate: float = 0.0
    #: Per-axis uniform displacement bound of one waypoint step.
    move_step_m: float = 0.0
    #: Churn is generated for simulated times in ``[0, horizon_s)``.
    horizon_s: float = 1.0
    seed: int = 0
    #: Cap on the fraction of sensor nodes that may depart over the horizon
    #: (earliest departures win); keeps heavy-tailed draws from emptying the
    #: deployment.
    max_departed_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.departure_rate < 0 or self.move_rate < 0:
            raise ValueError("churn rates must be non-negative")
        if self.rejoin_delay_s < 0 or self.rejoin_jitter_m < 0 or self.move_step_m < 0:
            raise ValueError("churn delays and distances must be non-negative")
        if self.horizon_s <= 0:
            raise ValueError(f"churn horizon must be positive, got {self.horizon_s}")
        if not 0.0 <= self.max_departed_fraction <= 1.0:
            raise ValueError(
                f"max_departed_fraction must be in [0, 1], got {self.max_departed_fraction}"
            )
        if self.move_rate > 0 and self.move_step_m <= 0:
            raise ValueError("mobility needs a positive move_step_m")

    def __bool__(self) -> bool:
        """True iff the model can generate any fault at all."""
        return self.departure_rate > 0 or self.move_rate > 0

    @classmethod
    def from_departure_fraction(
        cls,
        fraction: float,
        horizon_s: float = 1.0,
        seed: int = 0,
        **kwargs,
    ) -> "ChurnModel":
        """Model whose *expected* departed fraction over the horizon is ``fraction``.

        Inverts the exponential survival function: ``P(depart before H) =
        1 - exp(-rate * H) = fraction``.  Extra keyword arguments (rejoin,
        mobility) pass through to the constructor.
        """
        if not 0.0 <= fraction < 1.0:
            raise ValueError(f"departure fraction must be in [0, 1), got {fraction}")
        rate = -math.log(1.0 - fraction) / horizon_s if fraction > 0 else 0.0
        return cls(departure_rate=rate, horizon_s=horizon_s, seed=seed, **kwargs)

    def to_dict(self) -> dict:
        """JSON-ready representation; round-trips through :meth:`from_dict`."""
        return {
            "departure_rate": self.departure_rate,
            "rejoin_delay_s": self.rejoin_delay_s,
            "rejoin_jitter_m": self.rejoin_jitter_m,
            "move_rate": self.move_rate,
            "move_step_m": self.move_step_m,
            "horizon_s": self.horizon_s,
            "seed": self.seed,
            "max_departed_fraction": self.max_departed_fraction,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChurnModel":
        """Inverse of :meth:`to_dict`; re-runs construction validation."""
        return cls(
            departure_rate=float(data.get("departure_rate", 0.0)),
            rejoin_delay_s=float(data.get("rejoin_delay_s", 0.0)),
            rejoin_jitter_m=float(data.get("rejoin_jitter_m", 0.0)),
            move_rate=float(data.get("move_rate", 0.0)),
            move_step_m=float(data.get("move_step_m", 0.0)),
            horizon_s=float(data.get("horizon_s", 1.0)),
            seed=int(data.get("seed", 0)),
            max_departed_fraction=float(data.get("max_departed_fraction", 0.5)),
        )

    def materialize(self, network: Network) -> FaultPlan:
        """Expand the model into a concrete plan for ``network``'s topology.

        Deterministic: node ids are visited in sorted order and every draw
        comes from one ``random.Random`` stream keyed on ``seed``, so the
        same (model, deployment) pair replays identically.  Rejoin positions
        perturb the node's *pre-churn* coordinates.
        """
        if not self:
            return FaultPlan.empty()
        rng = random.Random(f"churn-{self.seed}")
        candidates = sorted(
            node_id
            for node_id, node in network.nodes.items()
            if node_id != BASE_STATION_ID and node.alive
        )
        faults: List[Fault] = []
        if self.departure_rate > 0:
            departures = []
            for node_id in candidates:
                holding = rng.expovariate(self.departure_rate)
                if holding < self.horizon_s:
                    departures.append((holding, node_id))
            departures.sort()
            cap = int(len(candidates) * self.max_departed_fraction)
            departures = departures[:cap]
            for time_s, node_id in departures:
                faults.append(Fault(time_s=time_s, kind=NODE_CRASH, node_a=node_id))
                if self.rejoin_delay_s > 0:
                    downtime = rng.uniform(0.5, 1.5) * self.rejoin_delay_s
                    back_at = time_s + downtime
                    jitter = self.rejoin_jitter_m
                    # Draw the perturbation unconditionally so the stream
                    # advances identically whether or not the rejoin lands
                    # inside the horizon.
                    dx = rng.uniform(-jitter, jitter)
                    dy = rng.uniform(-jitter, jitter)
                    if back_at < self.horizon_s:
                        node = network.nodes[node_id]
                        position = (
                            {"x": node.x + dx, "y": node.y + dy}
                            if jitter > 0
                            else {}
                        )
                        faults.append(
                            Fault(
                                time_s=back_at,
                                kind=NODE_REJOIN,
                                node_a=node_id,
                                **position,
                            )
                        )
        if self.move_rate > 0:
            for node_id in candidates:
                node = network.nodes[node_id]
                cur_x, cur_y = node.x, node.y
                time_s = rng.expovariate(self.move_rate)
                while time_s < self.horizon_s:
                    cur_x += rng.uniform(-self.move_step_m, self.move_step_m)
                    cur_y += rng.uniform(-self.move_step_m, self.move_step_m)
                    faults.append(
                        Fault(
                            time_s=time_s,
                            kind=NODE_MOVE,
                            node_a=node_id,
                            x=cur_x,
                            y=cur_y,
                        )
                    )
                    time_s += rng.expovariate(self.move_rate)
        return FaultPlan(tuple(faults))


class FaultInjector:
    """Replays a :class:`FaultPlan` on a live simulation.

    Runs as a kernel process on the engine's environment; each fault is
    applied at its scheduled simulated time.  ``on_node_crash`` lets the
    engine interrupt the dead node's protocol process the instant the crash
    lands (the process must not keep sending from beyond the grave);
    ``on_node_rejoin`` symmetrically lets it spawn a protocol process for a
    node that came back mid-run (or mark the topology dirty for the next
    repair pass).

    Loss bursts are implemented by swapping the channel's
    ``loss_probability`` for a wrapper that floors every link at the highest
    active burst rate; the original callable (possibly ``None``) is restored
    when the last burst expires.
    """

    def __init__(
        self,
        env: Environment,
        network: Network,
        plan: FaultPlan,
        tracer: Optional[Tracer] = None,
        on_node_crash: Optional[Callable[[int], None]] = None,
        telemetry: Optional[Telemetry] = None,
        on_node_rejoin: Optional[Callable[[int], None]] = None,
    ):
        self.env = env
        self.network = network
        self.plan = plan
        self.tracer = tracer if tracer is not None else NullTracer()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.on_node_crash = on_node_crash
        self.on_node_rejoin = on_node_rejoin
        self.applied: List[Fault] = []
        self._active_bursts: List[float] = []
        self._base_loss: Optional[Callable[[int, int], float]] = None

    def start(self) -> Process:
        """Register the injection process; call once, before ``env.run``."""
        return self.env.process(self._run())

    # -- internals -----------------------------------------------------------

    def _run(self):
        for fault in self.plan:
            delay = fault.time_s - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self._apply(fault)

    def _apply(self, fault: Fault) -> None:
        if fault.kind == NODE_CRASH:
            node = self.network.nodes.get(fault.node_a)
            if node is None:
                raise SimulationError(f"fault targets unknown node {fault.node_a}")
            if node.alive:
                self.network.fail_node(fault.node_a)
                if self.on_node_crash is not None:
                    self.on_node_crash(fault.node_a)
        elif fault.kind == LINK_DROP:
            self.network.fail_link(fault.node_a, fault.node_b)
        elif fault.kind == NODE_REJOIN:
            self.network.revive_node(fault.node_a, fault.x, fault.y)
            if self.on_node_rejoin is not None:
                self.on_node_rejoin(fault.node_a)
        elif fault.kind == NODE_MOVE:
            self.network.move_node(fault.node_a, fault.x, fault.y)
        else:
            self._start_burst(fault)
        self.applied.append(fault)
        reg = self.telemetry.registry
        if reg.enabled:
            reg.counter("faults_injected_total", kind=fault.kind).inc()
        detail = {
            "fault": fault.kind,
            "node_b": fault.node_b,
            "duration_s": fault.duration_s,
            "loss_rate": fault.loss_rate,
        }
        if fault.kind in _POSITIONED_KINDS:
            # Position payload only for the churn kinds: pre-churn traces
            # keep their exact historical shape.
            detail["x"] = fault.x
            detail["y"] = fault.y
        self.tracer.emit(self.env.now, fault.node_a, FAULT_INJECT, **detail)

    def _burst_loss(self, sender: int, receiver: int) -> float:
        base = self._base_loss(sender, receiver) if self._base_loss is not None else 0.0
        if not self._active_bursts:
            return base
        return max(base, max(self._active_bursts))

    def _start_burst(self, fault: Fault) -> None:
        channel = self.network.channel
        if not self._active_bursts:
            self._base_loss = channel.loss_probability
            channel.loss_probability = self._burst_loss
        self._active_bursts.append(fault.loss_rate)
        self.env.process(self._end_burst(fault.loss_rate, fault.duration_s))

    def _end_burst(self, loss_rate: float, duration_s: float):
        yield self.env.timeout(duration_s)
        self._active_bursts.remove(loss_rate)
        if not self._active_bursts:
            self.network.channel.loss_probability = self._base_loss
            self._base_loss = None
