"""Transmission statistics collection.

The experiments in §VI report two families of quantities:

* **overall communication costs** — the total number of link-layer
  transmissions across the whole network for one query execution, optionally
  broken down by protocol phase (Fig. 15);
* **per-node communication costs** — transmissions per node, plotted against
  the node's number of routing-tree descendants (Fig. 11), because the most
  loaded nodes (near the root) determine network lifetime.

:class:`TransmissionStats` is the single accounting sink both join
implementations write into.  Every ``record_tx`` call is tagged with the
sending node and a phase label, so any of the paper's breakdowns can be
recovered afterwards.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping

__all__ = ["TransmissionStats", "NodeLoad", "PHASE_LABELS"]

#: Canonical phase labels used by the protocols in :mod:`repro.joins`.
PHASE_LABELS = (
    "query-dissemination",
    "join-attribute-collection",
    "filter-dissemination",
    "final-result",
    "external-collection",
    "tree-maintenance",
)


@dataclass(frozen=True)
class NodeLoad:
    """Per-node load summary row (one point in a Fig. 11 style scatter)."""

    node_id: int
    descendants: int
    tx_packets: int
    tx_bytes: int
    rx_packets: int
    rx_bytes: int
    #: ARQ retransmissions; zero on a lossless channel.
    retx_packets: int = 0

    @property
    def total_packets(self) -> int:
        """Transmitted plus received packets (radio duty proxy).

        Retransmissions are excluded so the value matches the paper's
        lossless transmission metric; add :attr:`retx_packets` for the full
        radio duty under loss.
        """
        return self.tx_packets + self.rx_packets


class TransmissionStats:
    """Accumulates per-node, per-phase packet and byte counters."""

    def __init__(self) -> None:
        self._tx_packets: Dict[int, Dict[str, int]] = defaultdict(lambda: defaultdict(int))
        self._tx_bytes: Dict[int, Dict[str, int]] = defaultdict(lambda: defaultdict(int))
        self._rx_packets: Dict[int, Dict[str, int]] = defaultdict(lambda: defaultdict(int))
        self._rx_bytes: Dict[int, Dict[str, int]] = defaultdict(lambda: defaultdict(int))
        self._retx_packets: Dict[int, Dict[str, int]] = defaultdict(lambda: defaultdict(int))
        self._retx_bytes: Dict[int, Dict[str, int]] = defaultdict(lambda: defaultdict(int))

    # -- recording ----------------------------------------------------------

    def record_tx(self, node_id: int, phase: str, packets: int, payload_bytes: int) -> None:
        """Record that ``node_id`` transmitted ``packets`` in ``phase``."""
        if packets < 0 or payload_bytes < 0:
            raise ValueError("packet and byte counts must be non-negative")
        self._tx_packets[node_id][phase] += packets
        self._tx_bytes[node_id][phase] += payload_bytes

    def record_rx(self, node_id: int, phase: str, packets: int, payload_bytes: int) -> None:
        """Record that ``node_id`` received ``packets`` in ``phase``."""
        if packets < 0 or payload_bytes < 0:
            raise ValueError("packet and byte counts must be non-negative")
        self._rx_packets[node_id][phase] += packets
        self._rx_bytes[node_id][phase] += payload_bytes

    def record_retx(self, node_id: int, phase: str, packets: int, payload_bytes: int) -> None:
        """Record ARQ retransmissions by ``node_id`` in ``phase``.

        Kept in a separate dimension from :meth:`record_tx` so loss studies
        never perturb the paper's first-transmission metric.
        """
        if packets < 0 or payload_bytes < 0:
            raise ValueError("packet and byte counts must be non-negative")
        self._retx_packets[node_id][phase] += packets
        self._retx_bytes[node_id][phase] += payload_bytes

    # -- aggregation ---------------------------------------------------------

    def total_tx_packets(self, phases: Iterable[str] | None = None) -> int:
        """Total transmissions network-wide, optionally restricted to phases."""
        wanted = None if phases is None else set(phases)
        total = 0
        for by_phase in self._tx_packets.values():
            for phase, count in by_phase.items():
                if wanted is None or phase in wanted:
                    total += count
        return total

    def total_tx_bytes(self, phases: Iterable[str] | None = None) -> int:
        """Total payload bytes transmitted network-wide."""
        wanted = None if phases is None else set(phases)
        total = 0
        for by_phase in self._tx_bytes.values():
            for phase, count in by_phase.items():
                if wanted is None or phase in wanted:
                    total += count
        return total

    def tx_packets_by_phase(self) -> Dict[str, int]:
        """Network-wide transmissions per phase (Fig. 15 breakdown)."""
        result: Dict[str, int] = defaultdict(int)
        for by_phase in self._tx_packets.values():
            for phase, count in by_phase.items():
                result[phase] += count
        return dict(result)

    def node_tx_packets(self, node_id: int, phases: Iterable[str] | None = None) -> int:
        """Transmissions by one node, optionally restricted to phases."""
        by_phase = self._tx_packets.get(node_id, {})
        if phases is None:
            return sum(by_phase.values())
        wanted = set(phases)
        return sum(count for phase, count in by_phase.items() if phase in wanted)

    def node_rx_packets(self, node_id: int) -> int:
        """Packets received by one node across all phases."""
        return sum(self._rx_packets.get(node_id, {}).values())

    def total_retx_packets(self, phases: Iterable[str] | None = None) -> int:
        """Total ARQ retransmissions network-wide, optionally per phases."""
        wanted = None if phases is None else set(phases)
        total = 0
        for by_phase in self._retx_packets.values():
            for phase, count in by_phase.items():
                if wanted is None or phase in wanted:
                    total += count
        return total

    def retx_packets_by_phase(self) -> Dict[str, int]:
        """Network-wide ARQ retransmissions per phase."""
        result: Dict[str, int] = defaultdict(int)
        for by_phase in self._retx_packets.values():
            for phase, count in by_phase.items():
                result[phase] += count
        return dict(result)

    def node_retx_packets(self, node_id: int) -> int:
        """ARQ retransmissions by one node across all phases."""
        return sum(self._retx_packets.get(node_id, {}).values())

    def per_node_loads(self, descendants: Mapping[int, int]) -> list[NodeLoad]:
        """Per-node load rows joined with routing-tree descendant counts.

        ``descendants`` maps node id -> number of descendants; nodes present
        in either mapping appear in the output (missing counters are zero).
        """
        node_ids = (
            set(descendants)
            | set(self._tx_packets)
            | set(self._rx_packets)
            | set(self._retx_packets)
        )
        rows = []
        for node_id in sorted(node_ids):
            rows.append(
                NodeLoad(
                    node_id=node_id,
                    descendants=descendants.get(node_id, 0),
                    tx_packets=sum(self._tx_packets.get(node_id, {}).values()),
                    tx_bytes=sum(self._tx_bytes.get(node_id, {}).values()),
                    rx_packets=sum(self._rx_packets.get(node_id, {}).values()),
                    rx_bytes=sum(self._rx_bytes.get(node_id, {}).values()),
                    retx_packets=sum(self._retx_packets.get(node_id, {}).values()),
                )
            )
        return rows

    def max_node_tx_packets(self, phases: Iterable[str] | None = None) -> int:
        """Transmissions of the most loaded node (network-lifetime proxy)."""
        best = 0
        for node_id in self._tx_packets:
            best = max(best, self.node_tx_packets(node_id, phases))
        return best

    def merge(self, other: "TransmissionStats") -> None:
        """Add every counter of ``other`` into this collector."""
        for node_id, by_phase in other._tx_packets.items():
            for phase, count in by_phase.items():
                self._tx_packets[node_id][phase] += count
        for node_id, by_phase in other._tx_bytes.items():
            for phase, count in by_phase.items():
                self._tx_bytes[node_id][phase] += count
        for node_id, by_phase in other._rx_packets.items():
            for phase, count in by_phase.items():
                self._rx_packets[node_id][phase] += count
        for node_id, by_phase in other._rx_bytes.items():
            for phase, count in by_phase.items():
                self._rx_bytes[node_id][phase] += count
        for node_id, by_phase in other._retx_packets.items():
            for phase, count in by_phase.items():
                self._retx_packets[node_id][phase] += count
        for node_id, by_phase in other._retx_bytes.items():
            for phase, count in by_phase.items():
                self._retx_bytes[node_id][phase] += count
