"""Network deployment and connectivity.

Implements the paper's simulation setting (§VI, "General setting"): nodes are
placed uniformly at random in a square area, every node has a fixed radio
range (50 m) and links are bidirectional — i.e. the connectivity graph is a
unit-disk graph.  The base station sits at a configurable position (centre of
an edge by default, a common choice for data-collection deployments).

The module also provides the failure-injection hooks used by the
error-tolerance design of §IV-F: :meth:`Network.fail_node` and
:meth:`Network.fail_link` mutate the connectivity graph mid-experiment; the
routing layer then repairs the tree and the runner re-executes the query.

Deployment generators
---------------------
``deploy_uniform``   — the paper's setting: uniform random placement.
``deploy_grid``      — regular grid with jitter (useful for debugging,
                       deterministic structure).
``deploy_clustered`` — Gaussian clusters (exercises the "specific node
                       distributions" of the related-work baselines).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import constants
from ..errors import NetworkError
from .energy import EnergyLedger, EnergyModel
from .node import BASE_STATION_ID, SensorNode
from .radio import ArqConfig, Channel, PacketFormat
from .spatial import SpatialGridIndex
from .stats import TransmissionStats

__all__ = [
    "Network",
    "DeploymentConfig",
    "LinkQuality",
    "deploy_uniform",
    "deploy_grid",
    "deploy_clustered",
]


@dataclass(frozen=True)
class LinkQuality:
    """Distance-based per-link packet-loss model.

    Every unit-disk link gets a deterministic packet-reception ratio from
    its length: a link at distance ``d`` (of range ``r``) loses each packet
    independently with probability ``loss_rate * (d / r) ** distance_exponent``.
    Short links are near-perfect; links close to the unit-disk boundary
    approach the configured ``loss_rate`` — the empirical "grey zone" shape.
    ``loss_rate`` is thus the worst-link loss probability and the single
    knob the loss studies sweep.

    ``seed`` seeds the channel's ARQ draws, so a given (deployment, seed)
    pair sees exactly the same loss realisation on every run.
    """

    loss_rate: float = 0.0
    distance_exponent: float = constants.DEFAULT_LOSS_DISTANCE_EXPONENT
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {self.loss_rate}")
        if self.distance_exponent < 0:
            raise ValueError(
                f"distance_exponent must be non-negative, got {self.distance_exponent}"
            )

    @property
    def enabled(self) -> bool:
        """True when the model actually induces loss."""
        return self.loss_rate > 0.0

    def loss_probability(self, distance_m: float, range_m: float) -> float:
        """Per-packet loss probability of a link at ``distance_m``."""
        if range_m <= 0:
            raise ValueError(f"radio range must be positive, got {range_m}")
        ratio = min(distance_m, range_m) / range_m
        return self.loss_rate * ratio**self.distance_exponent

    def prr(self, distance_m: float, range_m: float) -> float:
        """Packet-reception ratio of a link at ``distance_m``."""
        return 1.0 - self.loss_probability(distance_m, range_m)


@dataclass(frozen=True)
class DeploymentConfig:
    """Parameters of a deployment (defaults = the paper's §VI setting)."""

    node_count: int = constants.PAPER_NODE_COUNT
    area_side_m: float = constants.PAPER_AREA_SIDE_M
    radio_range_m: float = constants.DEFAULT_RADIO_RANGE_M
    seed: int = 0
    base_station_position: Optional[tuple[float, float]] = None
    #: Worst-link packet-loss probability (see :class:`LinkQuality`).  Zero
    #: keeps the whole loss/ARQ layer switched off.
    loss_rate: float = 0.0
    #: Routing-tree construction mode: ``"flat"`` = plain min-hop CTP tree,
    #: ``"cluster"`` = grid-cell cluster heads aggregating into the CTP
    #: backbone (see :mod:`repro.routing.cluster`).
    routing: str = "flat"

    def __post_init__(self) -> None:
        if self.node_count < 2:
            raise ValueError("a network needs at least a base station and one node")
        if self.area_side_m <= 0 or self.radio_range_m <= 0:
            raise ValueError("area side and radio range must be positive")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {self.loss_rate}")
        if self.routing not in ("flat", "cluster"):
            raise ValueError(f"unknown routing mode: {self.routing!r}")

    def scaled(self, node_count: int) -> "DeploymentConfig":
        """Same density, different node count (the Fig. 14 sweep).

        The paper varies the number of nodes "and at the same time ... the
        area of the network to keep the node density constant".
        """
        density = self.node_count / (self.area_side_m**2)
        side = math.sqrt(node_count / density)
        return DeploymentConfig(
            node_count=node_count,
            area_side_m=side,
            radio_range_m=self.radio_range_m,
            seed=self.seed,
            base_station_position=None,
            loss_rate=self.loss_rate,
            routing=self.routing,
        )


class Network:
    """A deployed sensor network: nodes, unit-disk links, shared channel."""

    def __init__(
        self,
        nodes: Sequence[SensorNode],
        radio_range_m: float,
        packet_format: Optional[PacketFormat] = None,
        energy_model: Optional[EnergyModel] = None,
        link_quality: Optional[LinkQuality] = None,
        arq: Optional[ArqConfig] = None,
    ):
        if not nodes:
            raise NetworkError("empty node list")
        ids = [node.node_id for node in nodes]
        if len(set(ids)) != len(ids):
            raise NetworkError("duplicate node ids in deployment")
        if BASE_STATION_ID not in set(ids):
            raise NetworkError(f"deployment lacks a base station (id {BASE_STATION_ID})")
        self.nodes: Dict[int, SensorNode] = {node.node_id: node for node in nodes}
        self.radio_range_m = radio_range_m
        self.packet_format = packet_format or PacketFormat()
        model = energy_model or EnergyModel()
        self.energy_model = model
        for node in self.nodes.values():
            node.ledger = EnergyLedger(_model=model)
        self.stats = TransmissionStats()
        # A disabled (loss_rate=0) model is normalised to None so the channel
        # takes its lossless fast path and stays a strict no-op.
        self.link_quality = (
            link_quality if link_quality is not None and link_quality.enabled else None
        )
        self.channel = Channel(
            self.packet_format,
            self.stats,
            {node_id: node.ledger for node_id, node in self.nodes.items()},
            loss_probability=(
                self.link_loss_probability if self.link_quality is not None else None
            ),
            arq=arq,
            arq_seed=self.link_quality.seed if self.link_quality is not None else 0,
            link_up=self.link_up,
        )
        self._adjacency: Dict[int, set[int]] = {}
        self._failed_links: set[frozenset[int]] = set()
        # Squared-range threshold, computed once with the same expression the
        # dense reference build used (bit-for-bit float parity matters: the
        # grid index must be a pure drop-in — see tests/test_sim_spatial.py).
        self._range2 = self.radio_range_m**2
        self._index = SpatialGridIndex(radio_range_m)
        self._rebuild_adjacency()

    # -- construction -------------------------------------------------------

    def _rebuild_adjacency(self) -> None:
        """Recompute the unit-disk graph over alive nodes, minus failed links.

        Built through the uniform grid index in O(n·k) where k is the local
        neighbourhood population — the dense O(n²) build survives only as
        the :meth:`_reference_adjacency` twin for the property suite.  Only
        deployment-time construction pays this full pass; failure injection
        and churn go through the incremental :meth:`_attach`/:meth:`_detach`
        updates instead.
        """
        index = SpatialGridIndex(self.radio_range_m)
        alive = [node for node in self.nodes.values() if node.alive]
        for node in alive:
            index.insert(node.node_id, node.x, node.y)
        self._index = index
        adjacency: Dict[int, set[int]] = {}
        failed = self._failed_links
        limit2 = self._range2
        for node in alive:
            neighbours = index.neighbours_within(
                node.x, node.y, limit2, exclude=node.node_id
            )
            if failed:
                node_id = node.node_id
                neighbours = [
                    other
                    for other in neighbours
                    if frozenset((node_id, other)) not in failed
                ]
            adjacency[node.node_id] = set(neighbours)
        self._adjacency = adjacency

    def _reference_adjacency(self) -> Dict[int, set[int]]:
        """Brute-force O(n²) unit-disk build — the reference twin.

        This is the seed implementation's dense pairwise build, kept (like
        the codec ``_reference_*`` twins) as the trusted oracle the property
        tests compare the grid index against.  Never called on the hot path.
        """
        alive = [node for node in self.nodes.values() if node.alive]
        coords = np.array([[node.x, node.y] for node in alive])
        ids = [node.node_id for node in alive]
        adjacency: Dict[int, set[int]] = {node_id: set() for node_id in ids}
        if len(alive) < 2:
            return adjacency
        deltas = coords[:, None, :] - coords[None, :, :]
        dist2 = np.einsum("ijk,ijk->ij", deltas, deltas)
        within = dist2 <= self.radio_range_m**2
        rows, cols = np.nonzero(np.triu(within, k=1))
        for i, j in zip(rows.tolist(), cols.tolist()):
            a, b = ids[i], ids[j]
            if frozenset((a, b)) in self._failed_links:
                continue
            adjacency[a].add(b)
            adjacency[b].add(a)
        return adjacency

    # -- incremental maintenance --------------------------------------------

    def _detach(self, node_id: int) -> None:
        """Remove a node's edges and index entry (it died or is moving)."""
        for other in self._adjacency.pop(node_id, set()):
            self._adjacency[other].discard(node_id)
        self._index.discard(node_id)

    def _attach(self, node: SensorNode) -> None:
        """Index an alive node at its current position and wire local edges."""
        self._index.insert(node.node_id, node.x, node.y)
        node_id = node.node_id
        neighbours: set[int] = set()
        for other in self._index.neighbours_within(
            node.x, node.y, self._range2, exclude=node_id
        ):
            if frozenset((node_id, other)) in self._failed_links:
                continue
            neighbours.add(other)
            self._adjacency[other].add(node_id)
        self._adjacency[node_id] = neighbours

    # -- topology queries ----------------------------------------------------

    def neighbours(self, node_id: int) -> set[int]:
        """Ids of nodes within radio range of ``node_id`` (alive, link up)."""
        try:
            return self._adjacency[node_id]
        except KeyError:
            raise NetworkError(f"unknown or dead node: {node_id}") from None

    def link_up(self, a: int, b: int) -> bool:
        """True when ``a`` and ``b`` are both alive and their link is usable.

        The adjacency structure is rebuilt over alive nodes minus failed
        links, so a single membership test answers all three questions
        (endpoints alive, within range, link not failed).
        """
        return b in self._adjacency.get(a, ())

    @property
    def node_ids(self) -> List[int]:
        """All node ids (including the base station), sorted."""
        return sorted(self.nodes)

    @property
    def sensor_node_ids(self) -> List[int]:
        """All alive non-base-station node ids, sorted."""
        return sorted(
            node_id
            for node_id, node in self.nodes.items()
            if node.alive and not node.is_base_station
        )

    @property
    def base_station(self) -> SensorNode:
        """The distinguished powered root node."""
        return self.nodes[BASE_STATION_ID]

    def is_connected(self) -> bool:
        """True if every alive node can reach the base station."""
        alive = {node_id for node_id, node in self.nodes.items() if node.alive}
        if BASE_STATION_ID not in alive:
            return False
        seen = {BASE_STATION_ID}
        frontier = [BASE_STATION_ID]
        while frontier:
            current = frontier.pop()
            for neighbour in self._adjacency.get(current, ()):
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return seen == alive

    def average_degree(self) -> float:
        """Mean neighbourhood size (the paper quotes 6-15 as typical)."""
        if not self._adjacency:
            return 0.0
        return sum(len(n) for n in self._adjacency.values()) / len(self._adjacency)

    # -- link quality ---------------------------------------------------------

    def link_loss_probability(self, a: int, b: int) -> float:
        """Per-packet loss probability of the link ``a``-``b``.

        Zero when no :class:`LinkQuality` model is attached.
        """
        if self.link_quality is None:
            return 0.0
        node_a = self.nodes.get(a)
        node_b = self.nodes.get(b)
        if node_a is None or node_b is None:
            raise NetworkError(f"unknown node: {a if node_a is None else b}")
        return self.link_quality.loss_probability(
            node_a.distance_to(node_b), self.radio_range_m
        )

    def link_prr(self, a: int, b: int) -> float:
        """Packet-reception ratio of the link ``a``-``b`` (1.0 when lossless)."""
        return 1.0 - self.link_loss_probability(a, b)

    def link_etx(self, a: int, b: int) -> float:
        """Expected transmission count of the link ``a``-``b`` (ETX = 1/PRR)."""
        return 1.0 / self.link_prr(a, b)

    # -- failure injection (§IV-F) -------------------------------------------

    def fail_node(self, node_id: int) -> None:
        """Kill a node: it disappears from the graph and sends nothing more.

        Idempotent: killing an already dead node changes nothing.
        """
        if node_id == BASE_STATION_ID:
            raise NetworkError("the base station is mains powered and does not fail")
        node = self.nodes.get(node_id)
        if node is None:
            raise NetworkError(f"unknown node: {node_id}")
        if not node.alive:
            return
        node.alive = False
        self._detach(node_id)

    def fail_link(self, a: int, b: int) -> None:
        """Take down the (bidirectional) link between ``a`` and ``b``."""
        for node_id in (a, b):
            if node_id not in self.nodes:
                raise NetworkError(f"unknown node: {node_id}")
        if a == b:
            raise NetworkError(f"a node has no link to itself: {a}")
        key = frozenset((a, b))
        self._failed_links.add(key)
        self._adjacency.get(a, set()).discard(b)
        self._adjacency.get(b, set()).discard(a)

    def revive_node(self, node_id: int, x: Optional[float] = None, y: Optional[float] = None) -> None:
        """Bring a departed node back, optionally at a new position (churn).

        The rejoin model of the continuous-churn subsystem: a node that
        earlier left the network (``fail_node``) powers up again, possibly
        at a perturbed position, and the unit-disk links are rewired
        accordingly.  Reviving an alive node only applies the position
        update (idempotent otherwise).  The node keeps its last sensor
        readings — it does not re-sample until the next world snapshot.
        """
        if node_id == BASE_STATION_ID:
            raise NetworkError("the base station is mains powered and never departs")
        node = self.nodes.get(node_id)
        if node is None:
            raise NetworkError(f"unknown node: {node_id}")
        moved = False
        if x is not None:
            node.x = float(x)
            moved = True
        if y is not None:
            node.y = float(y)
            moved = True
        if node.alive and not moved:
            return
        if node.alive:
            self._detach(node_id)
        node.alive = True
        self._attach(node)

    def move_node(self, node_id: int, x: float, y: float) -> None:
        """One waypoint mobility step: relocate a node and rewire its links.

        Dead nodes may be moved (their position matters once they rejoin)
        but only an alive node's move triggers an adjacency rebuild.
        """
        if node_id == BASE_STATION_ID:
            raise NetworkError("the base station does not move")
        node = self.nodes.get(node_id)
        if node is None:
            raise NetworkError(f"unknown node: {node_id}")
        node.x = float(x)
        node.y = float(y)
        if node.alive:
            self._detach(node_id)
            self._attach(node)

    def restore_link(self, a: int, b: int) -> None:
        """Bring a previously failed link back up (if still within range).

        Idempotent, and consistent with node state: the adjacency rebuild
        only spans alive nodes, so restoring a link to a dead node never
        resurrects connectivity.
        """
        for node_id in (a, b):
            if node_id not in self.nodes:
                raise NetworkError(f"unknown node: {node_id}")
        if a == b:
            raise NetworkError(f"a node has no link to itself: {a}")
        self._failed_links.discard(frozenset((a, b)))
        node_a, node_b = self.nodes[a], self.nodes[b]
        if not (node_a.alive and node_b.alive):
            return
        dx = node_a.x - node_b.x
        dy = node_a.y - node_b.y
        if dx * dx + dy * dy <= self._range2:
            self._adjacency[a].add(b)
            self._adjacency[b].add(a)

    # -- accounting helpers ----------------------------------------------------

    def total_energy(self) -> float:
        """Network-wide energy spent since the last accounting reset."""
        return sum(node.ledger.total_energy for node in self.nodes.values())

    def energy_by_node(self) -> Dict[int, float]:
        """Per-node energy spent since the last accounting reset.

        The per-node view behind the time-series sampler's residual-energy
        gauges and ``python -m repro.obs hotspots`` — the base-station
        funnel effect (§V) is a statement about *this* distribution, not
        about the network total.
        """
        return {
            node_id: node.ledger.total_energy
            for node_id, node in self.nodes.items()
        }

    def residual_energy_columns(self) -> tuple[np.ndarray, np.ndarray]:
        """Array-backed per-node energy view: ``(ids, spent_energy)`` columns.

        The dict view of :meth:`energy_by_node` boxes every value; at 10k-100k
        nodes the scale studies instead read this flat pair of numpy columns
        (sorted by node id) to compute load distributions in one shot.
        """
        ids = np.fromiter(self.nodes.keys(), dtype=np.int64, count=len(self.nodes))
        order = np.argsort(ids)
        energy = np.fromiter(
            (node.ledger.total_energy for node in self.nodes.values()),
            dtype=np.float64,
            count=len(self.nodes),
        )
        return ids[order], energy[order]

    def reset_accounting(self) -> None:
        """Zero all energy ledgers and swap in a fresh statistics collector.

        Also re-seeds the channel's ARQ draws so each query execution sees
        the same deterministic loss realisation.
        """
        for node in self.nodes.values():
            node.ledger.reset()
        self.stats = TransmissionStats()
        self.channel.stats = self.stats
        self.channel.log = []
        self.channel.reset_arq()


# ---------------------------------------------------------------------------
# Deployment generators
# ---------------------------------------------------------------------------


def _base_station_at(config: DeploymentConfig) -> tuple[float, float]:
    if config.base_station_position is not None:
        return config.base_station_position
    # Centre of the bottom edge: a typical access-point placement that gives
    # the long multi-hop paths the paper's per-node analysis relies on.
    return (config.area_side_m / 2.0, 0.0)


def _build(
    config: DeploymentConfig,
    positions: np.ndarray,
    packet_format: Optional[PacketFormat],
    energy_model: Optional[EnergyModel],
) -> Network:
    bs_x, bs_y = _base_station_at(config)
    nodes = [SensorNode(BASE_STATION_ID, bs_x, bs_y)]
    for index, (x, y) in enumerate(positions, start=1):
        nodes.append(SensorNode(index, float(x), float(y)))
    link_quality = (
        LinkQuality(loss_rate=config.loss_rate, seed=config.seed)
        if config.loss_rate > 0.0
        else None
    )
    return Network(
        nodes, config.radio_range_m, packet_format, energy_model,
        link_quality=link_quality,
    )


def deploy_uniform(
    config: DeploymentConfig,
    packet_format: Optional[PacketFormat] = None,
    energy_model: Optional[EnergyModel] = None,
    max_attempts: int = 25,
) -> Network:
    """Uniform random deployment (the paper's setting), retried until connected.

    At the paper's density (~10 expected neighbours) a random placement is
    connected with high probability; occasionally it is not, in which case we
    re-draw with a derived seed.  After ``max_attempts`` failures a
    :class:`~repro.errors.NetworkError` is raised — that indicates the
    requested density is simply too low for a connected unit-disk graph.
    """
    for attempt in range(max_attempts):
        rng = np.random.default_rng(config.seed + attempt * 7919)
        positions = rng.uniform(0.0, config.area_side_m, size=(config.node_count, 2))
        network = _build(config, positions, packet_format, energy_model)
        if network.is_connected():
            return network
    raise NetworkError(
        f"could not draw a connected deployment in {max_attempts} attempts "
        f"(n={config.node_count}, side={config.area_side_m}, "
        f"range={config.radio_range_m})"
    )


def deploy_grid(
    config: DeploymentConfig,
    jitter_m: float = 0.0,
    packet_format: Optional[PacketFormat] = None,
    energy_model: Optional[EnergyModel] = None,
) -> Network:
    """Regular grid deployment with optional positional jitter.

    Deterministic and guaranteed connected as long as the grid pitch is below
    the radio range; handy for unit tests that need a known topology.
    """
    side = math.ceil(math.sqrt(config.node_count))
    pitch = config.area_side_m / side
    if pitch > config.radio_range_m:
        raise NetworkError(
            f"grid pitch {pitch:.1f} m exceeds radio range "
            f"{config.radio_range_m:.1f} m; the grid would be disconnected"
        )
    rng = np.random.default_rng(config.seed)
    positions = []
    for i in range(config.node_count):
        row, col = divmod(i, side)
        x = (col + 0.5) * pitch
        y = (row + 0.5) * pitch
        if jitter_m > 0:
            x += rng.uniform(-jitter_m, jitter_m)
            y += rng.uniform(-jitter_m, jitter_m)
        positions.append((x, y))
    return _build(config, np.array(positions), packet_format, energy_model)


def deploy_clustered(
    config: DeploymentConfig,
    cluster_count: int = 4,
    cluster_std_m: float = 60.0,
    packet_format: Optional[PacketFormat] = None,
    energy_model: Optional[EnergyModel] = None,
    max_attempts: int = 50,
) -> Network:
    """Nodes in Gaussian clusters around random centres.

    This reproduces the "two small regions" setting the specialised
    related-work joins require; used by the mediated-join/semi-join
    comparison experiments.
    """
    for attempt in range(max_attempts):
        rng = np.random.default_rng(config.seed + attempt * 104729)
        centres = rng.uniform(
            cluster_std_m, config.area_side_m - cluster_std_m, size=(cluster_count, 2)
        )
        assignments = rng.integers(0, cluster_count, size=config.node_count)
        positions = centres[assignments] + rng.normal(
            0.0, cluster_std_m, size=(config.node_count, 2)
        )
        positions = np.clip(positions, 0.0, config.area_side_m)
        network = _build(config, positions, packet_format, energy_model)
        if network.is_connected():
            return network
    raise NetworkError(
        "could not draw a connected clustered deployment; clusters are too "
        "far apart for the radio range"
    )
