"""Sensor node model.

A node is a stationary device with a position, a set of sensors (its current
readings are filled in per snapshot by :mod:`repro.data`), an energy ledger,
and membership in zero or more sensor relations (§III: "We say that a node
belongs to a sensor relation R if it contributes a tuple T to R").  The base
station is modelled as a distinguished node with unlimited power; its ledger
exists so accounting code is uniform, but its consumption is excluded from
all network-lifetime metrics (the paper's base station is mains powered).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet

from .energy import EnergyLedger

__all__ = ["SensorNode", "BASE_STATION_ID"]

#: Conventional id of the base station in every deployment.
BASE_STATION_ID = 0


@dataclass(slots=True)
class SensorNode:
    """One stationary sensor node.

    Slotted: deployments are sized in the tens of thousands of nodes, and
    ``__slots__`` removes the per-instance ``__dict__`` (the memory-regression
    test in ``tests/test_sim_network.py`` pins the per-node byte budget).

    Attributes
    ----------
    node_id:
        Unique integer id; ``BASE_STATION_ID`` (0) is the base station.
    x, y:
        Position in metres.  Positions are static (§III: "stationary
        sensor nodes") and known to the node itself — queries may use them
        via the ``x``/``y`` attributes and the ``distance()`` function.
    readings:
        Current snapshot of sensor values, keyed by sensor name (e.g.
        ``"temp"``).  Refreshed by :meth:`repro.data.relations.SensorField`
        per query execution; a join algorithm reads the sensors exactly once
        per execution (§IV-D).
    relations:
        Names of the sensor relations this node belongs to.  Homogeneous
        networks put every node in the single relation ``"sensors"``;
        heterogeneous deployments partition or overlap nodes across several.
    ledger:
        Energy spent by this node's radio.
    alive:
        False once the node has failed (failure-injection experiments).
    """

    node_id: int
    x: float
    y: float
    readings: Dict[str, float] = field(default_factory=dict)
    relations: FrozenSet[str] = frozenset()
    ledger: EnergyLedger = field(default_factory=EnergyLedger)
    alive: bool = True

    @property
    def is_base_station(self) -> bool:
        """True for the distinguished root node."""
        return self.node_id == BASE_STATION_ID

    @property
    def position(self) -> tuple[float, float]:
        """(x, y) in metres."""
        return (self.x, self.y)

    def distance_to(self, other: "SensorNode") -> float:
        """Euclidean distance to another node in metres."""
        return ((self.x - other.x) ** 2 + (self.y - other.y) ** 2) ** 0.5

    def belongs_to(self, relation: str) -> bool:
        """Whether this node contributes a tuple to ``relation``."""
        return relation in self.relations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "base-station" if self.is_base_station else "node"
        return f"<{role} {self.node_id} at ({self.x:.1f}, {self.y:.1f})>"
