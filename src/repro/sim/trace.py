"""Structured execution tracing.

A lightweight trace facility the protocol implementations emit into.  Traces
are invaluable when debugging a distributed protocol: every phase boundary,
treecut decision, filter pruning step and proxy action can be recorded with
the simulated time and node id, and then filtered after the run.

Tracing is off by default (a :class:`NullTracer` swallows everything at
near-zero cost); tests and examples opt in with :class:`ListTracer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Optional

__all__ = [
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "ListTracer",
    "FAULT_INJECT",
    "PHASE_TIMEOUT",
    "TREE_REPAIR",
    "LINK_DEAD",
]

# Well-known event kinds of the fault/recovery subsystem (§IV-F).  Kinds are
# free-form strings; these four are emitted by the substrate itself and are
# the ones tests and analyses grep for.
#: A scheduled fault was applied to the live topology.
FAULT_INJECT = "fault-inject"
#: The base station's watchdog gave up on a protocol phase.
PHASE_TIMEOUT = "phase-timeout"
#: The routing tree re-converged over the surviving topology.
TREE_REPAIR = "tree-repair"
#: A send failed because the link (or its endpoint) is gone; the ARQ budget
#: was spent without an ACK.
LINK_DEAD = "link-dead"


@dataclass(frozen=True)
class TraceEvent:
    """One trace record."""

    time: float
    node_id: int
    kind: str
    detail: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extra = " ".join(f"{key}={value}" for key, value in sorted(self.detail.items()))
        return f"[t={self.time:9.3f}] node {self.node_id:4d} {self.kind} {extra}".rstrip()


class Tracer:
    """Interface: something that accepts trace events."""

    def emit(self, time: float, node_id: int, kind: str, **detail: Any) -> None:
        """Record one event; implementations decide what to do with it."""
        raise NotImplementedError


class NullTracer(Tracer):
    """Discards every event (the default)."""

    def emit(self, time: float, node_id: int, kind: str, **detail: Any) -> None:
        """Do nothing."""


class ListTracer(Tracer):
    """Keeps every event in memory for later inspection."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def emit(self, time: float, node_id: int, kind: str, **detail: Any) -> None:
        """Append the event to :attr:`events`."""
        self.events.append(TraceEvent(time, node_id, kind, detail))

    def filter(
        self,
        kind: Optional[str] = None,
        node_id: Optional[int] = None,
        predicate: Optional[Callable[[TraceEvent], bool]] = None,
    ) -> list[TraceEvent]:
        """Events matching all the given criteria."""
        result: Iterable[TraceEvent] = self.events
        if kind is not None:
            result = (event for event in result if event.kind == kind)
        if node_id is not None:
            result = (event for event in result if event.node_id == node_id)
        if predicate is not None:
            result = (event for event in result if predicate(event))
        return list(result)

    def kinds(self) -> set[str]:
        """The distinct event kinds seen so far."""
        return {event.kind for event in self.events}

    def counts_by_kind(self) -> dict[str, int]:
        """Number of events per kind (quick protocol-activity summary)."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)
