"""Structured execution tracing.

A lightweight trace facility the protocol implementations emit into.  Traces
are invaluable when debugging a distributed protocol: every phase boundary,
treecut decision, filter pruning step and proxy action can be recorded with
the simulated time and node id, and then filtered after the run.

Tracing is off by default (a :class:`NullTracer` swallows everything at
near-zero cost); tests and examples opt in with :class:`ListTracer`, and
long-running simulations with the bounded :class:`RingTracer`.

Event kinds are registered constants (see :data:`KNOWN_EVENT_KINDS`): every
kind the substrate or a protocol emits is declared here, so exported traces
have a closed, documented vocabulary (``docs/observability.md``) and a test
can grep-proof the source tree against stray free-form strings.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Optional

__all__ = [
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "ListTracer",
    "RingTracer",
    "KNOWN_EVENT_KINDS",
    "register_event_kind",
    "FAULT_INJECT",
    "PHASE_TIMEOUT",
    "TREE_REPAIR",
    "TREE_REATTACH",
    "LINK_DEAD",
    "LINK_RETX",
    "TREECUT_EXIT",
    "PROXY_STORE",
    "SUBTREE_STORE",
    "SUBTREE_OVERFLOW",
    "SEND_JOIN_ATTS",
    "FILTER_BROADCAST",
    "FILTER_PRUNED",
    "FINAL_SEND",
    "SPAN_START",
    "SPAN_END",
    "BROKER_ADMIT",
    "BROKER_BATCH",
    "BROKER_COMPLETE",
    "BROKER_RETRY",
    "BROKER_GROUP_SPLIT",
    "BROKER_SHED",
    "BROKER_DEGRADED",
    "FILTER_COMPOSED",
    "FILTER_PIGGYBACK",
    "SLO_VIOLATION",
]

# Well-known event kinds of the fault/recovery subsystem (§IV-F).
#: A scheduled fault was applied to the live topology.
FAULT_INJECT = "fault-inject"
#: The base station's watchdog gave up on a protocol phase.
PHASE_TIMEOUT = "phase-timeout"
#: The routing tree re-converged over the surviving topology.
TREE_REPAIR = "tree-repair"
#: A detached subtree re-attached to a live parent via localized beacons
#: (incremental self-healing instead of a full rebuild).
TREE_REATTACH = "tree-reattach"
#: A send failed because the link (or its endpoint) is gone; the ARQ budget
#: was spent without an ACK.
LINK_DEAD = "link-dead"
#: The link-layer ARQ retransmitted on a lossy (but live) link.
LINK_RETX = "link-retx"

# SENS-Join protocol events (§IV; emitted by repro.joins.sensjoin).
#: A node forwarded complete tuples within ``D_max`` and left the query.
TREECUT_EXIT = "treecut-exit"
#: A node stored complete tuples on behalf of cut-off children (proxy role).
PROXY_STORE = "proxy-store"
#: A node kept its children's join-attribute points (SubtreeJoinAtts).
SUBTREE_STORE = "subtree-store"
#: SubtreeJoinAtts exceeded the memory budget; the node cannot prune.
SUBTREE_OVERFLOW = "subtree-overflow"
#: A node sent its quantized join-attribute set upward (step 1a).
SEND_JOIN_ATTS = "send-join-atts"
#: A node broadcast the (pruned) join filter to its children (step 1b).
FILTER_BROADCAST = "filter-broadcast"
#: The pruned filter was empty: an entire subtree never hears it.
FILTER_PRUNED = "filter-pruned"
#: A node shipped matching complete tuples upward (step 2).
FINAL_SEND = "final-send"

# Telemetry span boundaries (emitted by repro.obs.telemetry).
#: A phase span opened (detail carries ``span`` and labels).
SPAN_START = "span-start"
#: A phase span closed (detail carries ``span`` and ``duration_s``).
SPAN_END = "span-end"

# Multi-query broker events (emitted by repro.service.broker).
#: A query left the admission queue and joined an execution batch.
BROKER_ADMIT = "broker-admit"
#: A batch of co-admitted queries started executing on the network.
BROKER_BATCH = "broker-batch"
#: A query's final result was computed; detail carries its latency.
BROKER_COMPLETE = "broker-complete"
#: A batch attempt timed out (churn struck mid-epoch or the deadline
#: expired) and is re-executed after a seeded exponential backoff.
BROKER_RETRY = "broker-retry"
#: A share group exhausted its shared retries and was split: members
#: re-execute independently (the degradation ladder's middle rung).
BROKER_GROUP_SPLIT = "broker-group-split"
#: A request was dropped at admission because the backlog exceeded the
#: configured admission depth (overload shedding).
BROKER_SHED = "broker-shed"
#: A query terminated with a degraded outcome (partial recall, deadline
#: ladder fallback, or an engine error wrapped in a BrokerError).
BROKER_DEGRADED = "broker-degraded"
#: Per-query join filters over the same quantized domain were united
#: into one conservative filter disseminated once for the whole group.
FILTER_COMPOSED = "filter-composed"
#: Filters of several share groups rode one broadcast at this node
#: (multi-filter piggybacking during dissemination).
FILTER_PIGGYBACK = "filter-piggyback"

# Time-series observability (emitted by repro.obs.timeseries monitors).
#: A declarative SloPolicy threshold was breached at a sampling tick;
#: detail carries the policy name, the observed value and the bound.
SLO_VIOLATION = "slo-violation"

#: Every registered event kind.  :func:`register_event_kind` extends the set
#: for downstream protocols; traces must only contain registered kinds.
KNOWN_EVENT_KINDS: set[str] = {
    FAULT_INJECT,
    PHASE_TIMEOUT,
    TREE_REPAIR,
    TREE_REATTACH,
    LINK_DEAD,
    LINK_RETX,
    TREECUT_EXIT,
    PROXY_STORE,
    SUBTREE_STORE,
    SUBTREE_OVERFLOW,
    SEND_JOIN_ATTS,
    FILTER_BROADCAST,
    FILTER_PRUNED,
    FINAL_SEND,
    SPAN_START,
    SPAN_END,
    BROKER_ADMIT,
    BROKER_BATCH,
    BROKER_COMPLETE,
    BROKER_RETRY,
    BROKER_GROUP_SPLIT,
    BROKER_SHED,
    BROKER_DEGRADED,
    FILTER_COMPOSED,
    FILTER_PIGGYBACK,
    SLO_VIOLATION,
}


def register_event_kind(kind: str) -> str:
    """Register a new event kind; returns it (usable as a constant).

    Idempotent.  Downstream protocol extensions call this at import time so
    their kinds are part of the closed vocabulary that
    :mod:`repro.obs.export` documents and tests enforce.
    """
    if not kind or not isinstance(kind, str):
        raise ValueError(f"event kind must be a non-empty string, got {kind!r}")
    KNOWN_EVENT_KINDS.add(kind)
    return kind


#: Longest rendered detail value in :meth:`TraceEvent.__str__` before the
#: representation is elided.
_DETAIL_REPR_LIMIT = 48


def _render_detail_value(value: Any) -> str:
    """Stable, bounded rendering of one detail value.

    Scalars print as themselves; containers print as a *sorted* (where
    unordered) ``repr`` so two equal events always render identically, with
    the representation elided beyond :data:`_DETAIL_REPR_LIMIT` characters.
    """
    if isinstance(value, (str, int, float, bool)) or value is None:
        text = str(value)
    elif isinstance(value, (set, frozenset)):
        text = "{" + ", ".join(repr(item) for item in sorted(value, key=repr)) + "}"
    elif isinstance(value, dict):
        text = (
            "{"
            + ", ".join(
                f"{key!r}: {val!r}" for key, val in sorted(value.items(), key=lambda kv: repr(kv[0]))
            )
            + "}"
        )
    else:
        text = repr(value)
    if len(text) > _DETAIL_REPR_LIMIT:
        text = text[: _DETAIL_REPR_LIMIT - 3] + "..."
    return text


@dataclass(frozen=True)
class TraceEvent:
    """One trace record."""

    time: float
    node_id: int
    kind: str
    detail: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extra = " ".join(
            f"{key}={_render_detail_value(value)}"
            for key, value in sorted(self.detail.items())
        )
        return f"[t={self.time:9.3f}] node {self.node_id:4d} {self.kind} {extra}".rstrip()


class Tracer:
    """Interface: something that accepts trace events."""

    def emit(self, time: float, node_id: int, kind: str, **detail: Any) -> None:
        """Record one event; implementations decide what to do with it."""
        raise NotImplementedError


class NullTracer(Tracer):
    """Discards every event (the default)."""

    def emit(self, time: float, node_id: int, kind: str, **detail: Any) -> None:
        """Do nothing."""


class _RecordingTracer(Tracer):
    """Shared query API over a concrete event container (list or ring)."""

    events: Iterable[TraceEvent]

    def filter(
        self,
        kind: Optional[str] = None,
        node_id: Optional[int] = None,
        predicate: Optional[Callable[[TraceEvent], bool]] = None,
    ) -> list[TraceEvent]:
        """Events matching all the given criteria."""
        result: Iterable[TraceEvent] = self.events
        if kind is not None:
            result = (event for event in result if event.kind == kind)
        if node_id is not None:
            result = (event for event in result if event.node_id == node_id)
        if predicate is not None:
            result = (event for event in result if predicate(event))
        return list(result)

    def kinds(self) -> set[str]:
        """The distinct event kinds seen so far."""
        return {event.kind for event in self.events}

    def counts_by_kind(self) -> Counter:
        """Number of events per kind (quick protocol-activity summary)."""
        return Counter(event.kind for event in self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)  # type: ignore[arg-type]


class ListTracer(_RecordingTracer):
    """Keeps every event in memory for later inspection."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def emit(self, time: float, node_id: int, kind: str, **detail: Any) -> None:
        """Append the event to :attr:`events`."""
        self.events.append(TraceEvent(time, node_id, kind, detail))


class RingTracer(_RecordingTracer):
    """Bounded tracer: keeps the most recent ``capacity`` events.

    For long-running simulations where an unbounded :class:`ListTracer`
    would grow without limit.  Overwritten events are counted in
    :attr:`dropped` so exports can report the truncation honestly.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.events: deque[TraceEvent] = deque(maxlen=capacity)
        #: Events discarded because the ring was full.
        self.dropped = 0

    def emit(self, time: float, node_id: int, kind: str, **detail: Any) -> None:
        """Append the event, evicting the oldest when the ring is full."""
        if len(self.events) == self.capacity:
            self.dropped += 1
        self.events.append(TraceEvent(time, node_id, kind, detail))
