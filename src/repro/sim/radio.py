"""Link-layer model: packetization and the shared radio channel.

The paper's cost metric is the number of link-layer transmissions given a
maximum packet size (48 bytes by default, 124 bytes in the §VI-A study).  A
payload of *n* bytes therefore costs ``ceil(n / max_packet)`` transmissions
per hop.  :class:`PacketFormat` captures that rule; :class:`Channel` applies
it on every hop, charging energy ledgers and the
:class:`~repro.sim.stats.TransmissionStats` collector, and—when executed
under the discrete-event kernel—imposing per-packet latency.

A *broadcast* costs the sender one transmission burst regardless of how many
neighbours listen; every listed receiver pays the receive cost.  This matters
for Filter-Dissemination, where a node broadcasts the pruned filter once to
all its children (§IV-C, Fig. 3: ``broadcast(SubtreeFilter)``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

from .. import constants
from ..errors import SimulationError
from .energy import EnergyLedger
from .stats import TransmissionStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .kernel import Environment

__all__ = ["PacketFormat", "Transmission", "Channel"]


@dataclass(frozen=True)
class PacketFormat:
    """Fixed maximum packet size; converts byte counts to packet counts."""

    max_packet_bytes: int = constants.DEFAULT_MAX_PACKET_BYTES

    def __post_init__(self) -> None:
        if self.max_packet_bytes <= 0:
            raise ValueError(
                f"max_packet_bytes must be positive, got {self.max_packet_bytes}"
            )

    def packets_for(self, payload_bytes: int) -> int:
        """Number of transmissions needed for ``payload_bytes`` on one hop.

        Zero bytes means nothing is sent (zero packets); otherwise the count
        is ``ceil(payload / max_packet)``.
        """
        if payload_bytes < 0:
            raise ValueError(f"negative payload: {payload_bytes}")
        if payload_bytes == 0:
            return 0
        return math.ceil(payload_bytes / self.max_packet_bytes)

    def bytes_for_packets(self, packets: int) -> int:
        """Maximum payload that fits in ``packets`` transmissions."""
        if packets < 0:
            raise ValueError(f"negative packet count: {packets}")
        return packets * self.max_packet_bytes


@dataclass(frozen=True)
class Transmission:
    """Record of one logical send (possibly fragmented into many packets)."""

    sender: int
    receivers: tuple[int, ...]
    payload_bytes: int
    packets: int
    phase: str


class Channel:
    """Accounting layer every protocol hop goes through.

    The channel does not route; callers name the receiver(s) explicitly (the
    routing tree decides who talks to whom).  It enforces the packetization
    rule, charges per-node energy ledgers, and records into the statistics
    collector.  With an :class:`~repro.sim.kernel.Environment` attached, the
    ``latency_for`` helper lets protocol processes model per-packet delay.
    """

    def __init__(
        self,
        packet_format: PacketFormat,
        stats: TransmissionStats,
        ledgers: dict[int, EnergyLedger],
        hop_latency_s: float = constants.DEFAULT_HOP_LATENCY_S,
        env: Optional["Environment"] = None,
    ):
        self.packet_format = packet_format
        self.stats = stats
        self.ledgers = ledgers
        self.hop_latency_s = hop_latency_s
        self.env = env
        self.log: list[Transmission] = []

    def _ledger(self, node_id: int) -> EnergyLedger:
        ledger = self.ledgers.get(node_id)
        if ledger is None:
            raise SimulationError(f"no energy ledger for node {node_id}")
        return ledger

    def unicast(self, sender: int, receiver: int, payload_bytes: int, phase: str) -> int:
        """Send ``payload_bytes`` from ``sender`` to ``receiver``.

        Returns the number of packets transmitted (0 for an empty payload).
        """
        packets = self.packet_format.packets_for(payload_bytes)
        if packets == 0:
            return 0
        self._ledger(sender).charge_tx(payload_bytes, packets)
        self._ledger(receiver).charge_rx(payload_bytes, packets)
        self.stats.record_tx(sender, phase, packets, payload_bytes)
        self.stats.record_rx(receiver, phase, packets, payload_bytes)
        self.log.append(Transmission(sender, (receiver,), payload_bytes, packets, phase))
        return packets

    def broadcast(
        self, sender: int, receivers: Iterable[int], payload_bytes: int, phase: str
    ) -> int:
        """Broadcast to all ``receivers``: one tx burst, one rx per listener."""
        receiver_ids = tuple(receivers)
        packets = self.packet_format.packets_for(payload_bytes)
        if packets == 0:
            return 0
        self._ledger(sender).charge_tx(payload_bytes, packets)
        self.stats.record_tx(sender, phase, packets, payload_bytes)
        for receiver in receiver_ids:
            self._ledger(receiver).charge_rx(payload_bytes, packets)
            self.stats.record_rx(receiver, phase, packets, payload_bytes)
        self.log.append(Transmission(sender, receiver_ids, payload_bytes, packets, phase))
        return packets

    def latency_for(self, payload_bytes: int) -> float:
        """Wall-clock duration of sending ``payload_bytes`` over one hop."""
        return self.packet_format.packets_for(payload_bytes) * self.hop_latency_s
