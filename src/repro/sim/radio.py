"""Link-layer model: packetization, packet loss and the shared radio channel.

The paper's cost metric is the number of link-layer transmissions given a
maximum packet size (48 bytes by default, 124 bytes in the §VI-A study).  A
payload of *n* bytes therefore costs ``ceil(n / max_packet)`` transmissions
per hop.  :class:`PacketFormat` captures that rule; :class:`Channel` applies
it on every hop, charging energy ledgers and the
:class:`~repro.sim.stats.TransmissionStats` collector, and—when executed
under the discrete-event kernel—imposing per-packet latency.

A *broadcast* costs the sender one transmission burst regardless of how many
neighbours listen; every listed receiver pays the receive cost.  This matters
for Filter-Dissemination, where a node broadcasts the pruned filter once to
all its children (§IV-C, Fig. 3: ``broadcast(SubtreeFilter)``).

Lossy links and ARQ (§IV-F)
---------------------------
The paper evaluates on ns-2 with a realistic radio; message loss is absorbed
by the link layer, which retransmits until delivery.  The channel models
this when given a per-link loss probability (the network derives it from a
:class:`~repro.sim.network.LinkQuality` model): each packet independently
needs a geometrically distributed number of attempts, bounded by
:class:`ArqConfig.max_retries`.  Retransmissions are charged to the sender's
energy ledger and recorded in the statistics collector's *retransmission*
dimension — they never inflate the paper's first-transmission metric.  Each
retry also costs an ACK-timeout with exponential backoff, surfaced through
:attr:`Channel.last_send_latency_s` so the response-time studies see the
cost of unreliable links.

Two deliberate accounting simplifications: the retry bound caps the *charged*
attempts (delivery itself is persistent, so protocol results stay exact —
the residual loss beyond ``max_retries`` retries is below 1e-4 at the rates
studied), and loss draws use inverse-transform sampling with exactly one
uniform draw per packet per receiver, so retransmission counts are
*pointwise monotone* in the loss rate under a fixed seed.

Without a loss model the channel is byte-for-byte the lossless channel: no
random draws, no extra charges, no latency difference.

Dead links (§IV-F)
------------------
When the network supplies a ``link_up`` predicate, a send towards a dead
node or over a failed link *fails*: the sender spends its first
transmissions plus the full ARQ retry budget (that is the cost of detecting
the silence — ``max_retries`` unacknowledged attempts per packet, no random
draw involved), the receiver is charged nothing, and
:attr:`Channel.last_send_delivered` reports the failure so the protocol
layer can model the resulting stall.  A broadcast charges receive costs only
to the listeners that are actually reachable
(:attr:`Channel.last_broadcast_reached`).  With every link up the predicate
changes nothing.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from .. import constants
from ..errors import SimulationError
from ..obs.telemetry import NULL_TELEMETRY, Telemetry
from .energy import EnergyLedger
from .stats import TransmissionStats
from .trace import LINK_DEAD, LINK_RETX, NullTracer, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .kernel import Environment

__all__ = ["PacketFormat", "ArqConfig", "Transmission", "Channel"]


@dataclass(frozen=True)
class PacketFormat:
    """Fixed maximum packet size; converts byte counts to packet counts."""

    max_packet_bytes: int = constants.DEFAULT_MAX_PACKET_BYTES

    def __post_init__(self) -> None:
        if self.max_packet_bytes <= 0:
            raise ValueError(
                f"max_packet_bytes must be positive, got {self.max_packet_bytes}"
            )

    def packets_for(self, payload_bytes: int) -> int:
        """Number of transmissions needed for ``payload_bytes`` on one hop.

        Zero bytes means nothing is sent (zero packets); otherwise the count
        is ``ceil(payload / max_packet)``.
        """
        if payload_bytes < 0:
            raise ValueError(f"negative payload: {payload_bytes}")
        if payload_bytes == 0:
            return 0
        return math.ceil(payload_bytes / self.max_packet_bytes)

    def bytes_for_packets(self, packets: int) -> int:
        """Maximum payload that fits in ``packets`` transmissions."""
        if packets < 0:
            raise ValueError(f"negative packet count: {packets}")
        return packets * self.max_packet_bytes

    def fragment_sizes(self, payload_bytes: int) -> list[int]:
        """Per-packet payload bytes: full packets plus the remainder."""
        packets = self.packets_for(payload_bytes)
        if packets == 0:
            return []
        sizes = [self.max_packet_bytes] * (packets - 1)
        sizes.append(payload_bytes - self.max_packet_bytes * (packets - 1))
        return sizes


@dataclass(frozen=True)
class ArqConfig:
    """Link-layer retransmission policy (stop-and-wait with backoff)."""

    max_retries: int = constants.DEFAULT_ARQ_MAX_RETRIES
    ack_timeout_s: float = constants.DEFAULT_ARQ_ACK_TIMEOUT_S
    backoff_factor: float = constants.DEFAULT_ARQ_BACKOFF_FACTOR

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"negative retry bound: {self.max_retries}")
        if self.ack_timeout_s < 0:
            raise ValueError(f"negative ACK timeout: {self.ack_timeout_s}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff factor must be >= 1, got {self.backoff_factor}"
            )

    def backoff_delay_s(self, retries: int) -> float:
        """Total ACK-timeout wait accumulated over ``retries`` retransmissions."""
        if retries < 0:
            raise ValueError(f"negative retry count: {retries}")
        delay = 0.0
        timeout = self.ack_timeout_s
        for _ in range(retries):
            delay += timeout
            timeout *= self.backoff_factor
        return delay


@dataclass(frozen=True)
class Transmission:
    """Record of one logical send (possibly fragmented into many packets)."""

    sender: int
    receivers: tuple[int, ...]
    payload_bytes: int
    packets: int
    phase: str
    #: Link-layer retransmissions the ARQ needed on top of ``packets``.
    retries: int = 0
    #: False when the ARQ gave up: at least one receiver never got the data.
    delivered: bool = True


class Channel:
    """Accounting layer every protocol hop goes through.

    The channel does not route; callers name the receiver(s) explicitly (the
    routing tree decides who talks to whom).  It enforces the packetization
    rule, charges per-node energy ledgers, and records into the statistics
    collector.  With an :class:`~repro.sim.kernel.Environment` attached, the
    ``latency_for`` helper lets protocol processes model per-packet delay.

    When ``loss_probability`` is given (a callable ``(sender, receiver) ->
    probability``), every packet additionally runs through the bounded ARQ
    described in the module docstring; without it the channel is lossless
    and behaves exactly as before.
    """

    def __init__(
        self,
        packet_format: PacketFormat,
        stats: TransmissionStats,
        ledgers: dict[int, EnergyLedger],
        hop_latency_s: float = constants.DEFAULT_HOP_LATENCY_S,
        env: Optional["Environment"] = None,
        loss_probability: Optional[Callable[[int, int], float]] = None,
        arq: Optional[ArqConfig] = None,
        arq_seed: int = 0,
        tracer: Optional[Tracer] = None,
        link_up: Optional[Callable[[int, int], bool]] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.packet_format = packet_format
        self.stats = stats
        self.ledgers = ledgers
        self.hop_latency_s = hop_latency_s
        self.env = env
        self.loss_probability = loss_probability
        self.arq = arq or ArqConfig()
        # Not `tracer or ...`: an empty ListTracer is falsy (it has __len__).
        self.tracer = tracer if tracer is not None else NullTracer()
        #: Metrics sink for per-node/per-phase traffic and energy counters;
        #: disabled by default so the packet hot path pays one bool check.
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        #: ``(sender, receiver) -> bool``; None means every link is up.
        self.link_up = link_up
        self.log: list[Transmission] = []
        #: Serialisation + ARQ latency of the most recent send (zero when the
        #: last send carried nothing).  Equals ``latency_for(payload)`` on a
        #: lossless channel.
        self.last_send_latency_s = 0.0
        #: Whether the most recent non-empty send reached every receiver.
        self.last_send_delivered = True
        #: Receivers the most recent broadcast actually reached.
        self.last_broadcast_reached: tuple[int, ...] = ()
        #: ARQ latency (retransmission serialisation + backoff) accumulated
        #: since the last :meth:`reset_arq`.
        self.total_arq_delay_s = 0.0
        self._arq_seed = arq_seed
        self._rng = random.Random(arq_seed)

    def _ledger(self, node_id: int) -> EnergyLedger:
        ledger = self.ledgers.get(node_id)
        if ledger is None:
            raise SimulationError(f"no energy ledger for node {node_id}")
        return ledger

    # -- ARQ internals -------------------------------------------------------

    @property
    def lossy(self) -> bool:
        """True when a per-link loss model is attached."""
        return self.loss_probability is not None

    def reset_arq(self) -> None:
        """Re-seed the loss draws and zero the ARQ latency accumulator.

        Called between independent query executions so every run sees the
        same deterministic loss realisation regardless of history.
        """
        self._rng = random.Random(self._arq_seed)
        self.last_send_latency_s = 0.0
        self.total_arq_delay_s = 0.0
        self.last_send_delivered = True
        self.last_broadcast_reached = ()

    def _draw_retries(self, p_loss: float) -> int:
        """Retransmissions one packet needs on a link losing ``p_loss``.

        Inverse-transform geometric sampling: exactly one uniform draw is
        consumed whatever ``p_loss`` is, so under a fixed seed the retry
        count is monotone in the loss rate (a higher rate can only add
        retries to the same draw sequence, never shuffle it).
        """
        u = self._rng.random()
        if p_loss <= 0.0:
            return 0
        if p_loss >= 1.0 or u <= 0.0:
            return self.arq.max_retries
        retries = int(math.log(u) / math.log(p_loss))
        return min(retries, self.arq.max_retries)

    def _now(self) -> float:
        return self.env.now if self.env is not None else 0.0

    def _count_tx(
        self, sender: int, phase: str, packets: int, payload_bytes: int, cost: float
    ) -> None:
        reg = self.telemetry.registry
        if reg.enabled:
            reg.counter("tx_packets_total", node=sender, phase=phase).inc(packets)
            reg.counter("tx_bytes_total", node=sender, phase=phase).inc(payload_bytes)
            reg.counter("energy_joules_total", node=sender, phase=phase, op="tx").inc(cost)

    def _count_rx(
        self, receiver: int, phase: str, packets: int, payload_bytes: int, cost: float
    ) -> None:
        reg = self.telemetry.registry
        if reg.enabled:
            reg.counter("rx_packets_total", node=receiver, phase=phase).inc(packets)
            reg.counter("rx_bytes_total", node=receiver, phase=phase).inc(payload_bytes)
            reg.counter("energy_joules_total", node=receiver, phase=phase, op="rx").inc(cost)

    def _charge_retries(
        self,
        sender: int,
        phase: str,
        retx_packets: int,
        retx_bytes: int,
        receivers: tuple[int, ...],
    ) -> float:
        """Charge/record ARQ retries; returns the extra latency incurred."""
        if retx_packets == 0:
            return 0.0
        cost = self._ledger(sender).charge_retx(retx_bytes, retx_packets)
        self.stats.record_retx(sender, phase, retx_packets, retx_bytes)
        reg = self.telemetry.registry
        if reg.enabled:
            reg.counter("retx_packets_total", node=sender, phase=phase).inc(retx_packets)
            reg.counter("retx_bytes_total", node=sender, phase=phase).inc(retx_bytes)
            reg.counter("energy_joules_total", node=sender, phase=phase, op="retx").inc(cost)
        arq_delay = (
            retx_packets * self.hop_latency_s
            + self.arq.backoff_delay_s(retx_packets)
        )
        self.total_arq_delay_s += arq_delay
        self.tracer.emit(
            self._now(), sender, LINK_RETX,
            receivers=receivers, phase=phase, retries=retx_packets,
            bytes=retx_bytes,
        )
        return arq_delay

    # -- sends ---------------------------------------------------------------

    def unicast(self, sender: int, receiver: int, payload_bytes: int, phase: str) -> int:
        """Send ``payload_bytes`` from ``sender`` to ``receiver``.

        Returns the number of packets transmitted (0 for an empty payload);
        ARQ retransmissions are accounted separately and not included.
        Check :attr:`last_send_delivered` afterwards: a send over a dead
        link spends the sender's full ARQ budget but delivers nothing.
        """
        packets = self.packet_format.packets_for(payload_bytes)
        self.last_send_latency_s = 0.0
        self.last_send_delivered = True
        if packets == 0:
            return 0
        delivered = self.link_up is None or self.link_up(sender, receiver)
        retx_packets = 0
        retx_bytes = 0
        if not delivered:
            # No ACK will ever come: the stop-and-wait ARQ retries each
            # packet to its bound and gives up.  Deterministic — no draw.
            retx_packets = self.arq.max_retries * packets
            retx_bytes = self.arq.max_retries * payload_bytes
        elif self.loss_probability is not None:
            p_loss = self.loss_probability(sender, receiver)
            for size in self.packet_format.fragment_sizes(payload_bytes):
                retries = self._draw_retries(p_loss)
                retx_packets += retries
                retx_bytes += retries * size
        tx_cost = self._ledger(sender).charge_tx(payload_bytes, packets)
        self.stats.record_tx(sender, phase, packets, payload_bytes)
        self._count_tx(sender, phase, packets, payload_bytes, tx_cost)
        if delivered:
            rx_cost = self._ledger(receiver).charge_rx(payload_bytes, packets)
            self.stats.record_rx(receiver, phase, packets, payload_bytes)
            self._count_rx(receiver, phase, packets, payload_bytes, rx_cost)
        arq_delay = self._charge_retries(
            sender, phase, retx_packets, retx_bytes, (receiver,)
        )
        self.last_send_latency_s = packets * self.hop_latency_s + arq_delay
        if not delivered:
            self.last_send_delivered = False
            self.tracer.emit(
                self._now(), sender, LINK_DEAD,
                receiver=receiver, phase=phase, bytes=payload_bytes,
            )
        self.log.append(
            Transmission(
                sender, (receiver,), payload_bytes, packets, phase,
                retx_packets, delivered,
            )
        )
        return packets

    def broadcast(
        self, sender: int, receivers: Iterable[int], payload_bytes: int, phase: str
    ) -> int:
        """Broadcast to all ``receivers``: one tx burst, one rx per listener.

        With no receivers nothing is transmitted at all — a leaf with no
        children must not pay for a broadcast nobody hears.  Under loss the
        sender repeats each packet until the *worst* listener has a copy
        (bounded by the ARQ policy); listeners are charged one receive per
        packet (duplicate copies overheard during retries are free).
        """
        receiver_ids = tuple(receivers)
        packets = self.packet_format.packets_for(payload_bytes)
        self.last_send_latency_s = 0.0
        self.last_send_delivered = True
        self.last_broadcast_reached = receiver_ids
        if packets == 0 or not receiver_ids:
            self.last_broadcast_reached = ()
            return 0
        if self.link_up is None:
            reached = receiver_ids
        else:
            reached = tuple(r for r in receiver_ids if self.link_up(sender, r))
        retx_packets = 0
        retx_bytes = 0
        if len(reached) < len(receiver_ids):
            # An unreachable listener never ACKs, so the sender repeats each
            # packet to the ARQ bound regardless of the others; that budget
            # dominates any loss-induced retries, so no draws are consumed.
            retx_packets = self.arq.max_retries * packets
            retx_bytes = self.arq.max_retries * payload_bytes
        elif self.loss_probability is not None:
            losses = [
                self.loss_probability(sender, receiver) for receiver in receiver_ids
            ]
            for size in self.packet_format.fragment_sizes(payload_bytes):
                retries = max(self._draw_retries(p_loss) for p_loss in losses)
                retx_packets += retries
                retx_bytes += retries * size
        tx_cost = self._ledger(sender).charge_tx(payload_bytes, packets)
        self.stats.record_tx(sender, phase, packets, payload_bytes)
        self._count_tx(sender, phase, packets, payload_bytes, tx_cost)
        for receiver in reached:
            rx_cost = self._ledger(receiver).charge_rx(payload_bytes, packets)
            self.stats.record_rx(receiver, phase, packets, payload_bytes)
            self._count_rx(receiver, phase, packets, payload_bytes, rx_cost)
        arq_delay = self._charge_retries(
            sender, phase, retx_packets, retx_bytes, receiver_ids
        )
        self.last_send_latency_s = packets * self.hop_latency_s + arq_delay
        self.last_broadcast_reached = reached
        if len(reached) < len(receiver_ids):
            self.last_send_delivered = False
            missed = tuple(r for r in receiver_ids if r not in reached)
            self.tracer.emit(
                self._now(), sender, LINK_DEAD,
                receivers=missed, phase=phase, bytes=payload_bytes,
            )
        self.log.append(
            Transmission(
                sender, receiver_ids, payload_bytes, packets, phase,
                retx_packets, len(reached) == len(receiver_ids),
            )
        )
        return packets

    def latency_for(self, payload_bytes: int) -> float:
        """Serialisation duration of ``payload_bytes`` over one lossless hop.

        Pure function of the payload; ARQ costs of an actual send are in
        :attr:`last_send_latency_s`.
        """
        return self.packet_format.packets_for(payload_bytes) * self.hop_latency_s
