"""Radio energy accounting.

The paper's headline metric is the number of link-layer transmissions, but it
repeatedly argues from the underlying energy characteristics of real radios
(MicaZ, SunSPOT): the *per-packet* overhead (channel acquisition,
synchronisation, headers) dominates the *per-byte* cost, so that "removing
about 10 bytes from a packet incurs a saving in the order of 5%" (§IV-B,
footnote 1).  This module models exactly that: an affine cost per packet,

    E_tx(packet) = tx_per_packet + payload_bytes * tx_per_byte

plus the symmetric receive-side cost, and a per-node :class:`EnergyLedger`
that the channel charges on every send/receive.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import constants

__all__ = ["EnergyModel", "EnergyLedger"]


@dataclass(frozen=True)
class EnergyModel:
    """Affine per-packet energy cost model (abstract energy units).

    The default parameters are tuned so that a full 48-byte payload costs
    about 1.5x the bare packet overhead, which reproduces the paper's
    observation that shaving ~10 bytes off a packet saves only ~5% of its
    transmission energy.
    """

    tx_per_packet: float = constants.DEFAULT_TX_COST_PER_PACKET
    tx_per_byte: float = constants.DEFAULT_TX_COST_PER_BYTE
    rx_per_packet: float = constants.DEFAULT_RX_COST_PER_PACKET
    rx_per_byte: float = constants.DEFAULT_RX_COST_PER_BYTE

    def tx_cost(self, payload_bytes: int) -> float:
        """Energy to transmit one packet carrying ``payload_bytes``."""
        if payload_bytes < 0:
            raise ValueError(f"negative payload: {payload_bytes}")
        return self.tx_per_packet + payload_bytes * self.tx_per_byte

    def rx_cost(self, payload_bytes: int) -> float:
        """Energy to receive one packet carrying ``payload_bytes``."""
        if payload_bytes < 0:
            raise ValueError(f"negative payload: {payload_bytes}")
        return self.rx_per_packet + payload_bytes * self.rx_per_byte

    def relative_saving_from_shrinking(
        self, payload_bytes: int, bytes_removed: int
    ) -> float:
        """Fraction of tx energy saved by removing bytes from one packet.

        This is the quantity behind the paper's footnote motivating Treecut:
        with realistic parameters, removing 10 bytes from a full packet saves
        only a few percent, so sending a *slightly* smaller packet is not
        worth risking an extra packet later.
        """
        if bytes_removed < 0 or bytes_removed > payload_bytes:
            raise ValueError("bytes_removed must be within [0, payload_bytes]")
        before = self.tx_cost(payload_bytes)
        after = self.tx_cost(payload_bytes - bytes_removed)
        return (before - after) / before


@dataclass(slots=True)
class EnergyLedger:
    """Accumulates energy spent by a single node, split by direction.

    Instances are cheap value objects; the network keeps one per node and the
    statistics collector aggregates them at the end of a run.  Slotted, like
    :class:`~repro.sim.node.SensorNode`: there is one ledger per node, so its
    footprint is part of the per-node byte budget at 100k-node scale.
    """

    tx_energy: float = 0.0
    rx_energy: float = 0.0
    tx_packets: int = 0
    rx_packets: int = 0
    tx_bytes: int = 0
    rx_bytes: int = 0
    #: Link-layer ARQ retransmissions, kept apart from first transmissions so
    #: the paper's lossless transmission metric is unaffected by loss studies.
    retx_energy: float = 0.0
    retx_packets: int = 0
    retx_bytes: int = 0
    _model: EnergyModel = field(default_factory=EnergyModel)

    def charge_tx(self, payload_bytes: int, packets: int = 1) -> float:
        """Charge this node for sending ``packets`` totalling ``payload_bytes``.

        When more than one packet is sent the bytes are attributed to the
        batch as a whole; per-packet overhead is charged ``packets`` times.
        Returns the energy charged.
        """
        if packets < 0:
            raise ValueError(f"negative packet count: {packets}")
        cost = packets * self._model.tx_per_packet + payload_bytes * self._model.tx_per_byte
        self.tx_energy += cost
        self.tx_packets += packets
        self.tx_bytes += payload_bytes
        return cost

    def charge_rx(self, payload_bytes: int, packets: int = 1) -> float:
        """Charge this node for receiving; mirror image of :meth:`charge_tx`."""
        if packets < 0:
            raise ValueError(f"negative packet count: {packets}")
        cost = packets * self._model.rx_per_packet + payload_bytes * self._model.rx_per_byte
        self.rx_energy += cost
        self.rx_packets += packets
        self.rx_bytes += payload_bytes
        return cost

    def charge_retx(self, payload_bytes: int, packets: int = 1) -> float:
        """Charge this node for ARQ retransmissions (priced like transmits)."""
        if packets < 0:
            raise ValueError(f"negative packet count: {packets}")
        cost = packets * self._model.tx_per_packet + payload_bytes * self._model.tx_per_byte
        self.retx_energy += cost
        self.retx_packets += packets
        self.retx_bytes += payload_bytes
        return cost

    @property
    def total_energy(self) -> float:
        """Total energy spent (transmit + receive + retransmit)."""
        return self.tx_energy + self.rx_energy + self.retx_energy

    def reset(self) -> None:
        """Zero all counters (used between independent query executions)."""
        self.tx_energy = self.rx_energy = 0.0
        self.tx_packets = self.rx_packets = 0
        self.tx_bytes = self.rx_bytes = 0
        self.retx_energy = 0.0
        self.retx_packets = self.retx_bytes = 0
