"""General-purpose compression baselines (§VI-B).

The paper compares its quadtree representation against zlib (LZ77 + Huffman)
and bzip2 (Burrows-Wheeler), concluding that such algorithms "are not
targeted towards small data volumes" and lose badly at per-hop message sizes
— bzip2 even *inflates* the stream (5666 vs 5619 packets uncompressed).

The comparison needs the raw wire layout of a join-attribute tuple stream:
each attribute as a 2-byte fixed-point field (§IV-B "Assuming that each
attribute requires two bytes"), tuples concatenated.  These helpers build
that stream and report per-algorithm compressed sizes.  The algorithms run
at the base-station side of our experiment harness only — as in the paper,
which notes they "do not run on current sensor nodes due to their use of
memory and code size" and uses them purely as an upper bound.
"""

from __future__ import annotations

import bz2
import zlib
from typing import Iterable, Mapping, Sequence

from .. import constants

__all__ = [
    "encode_raw_tuples",
    "compressed_size",
    "COMPRESSORS",
    "raw_size_bytes",
]


def _to_fixed_point(value: float, scale: float = 100.0) -> int:
    """Map a reading to an unsigned 16-bit fixed-point field.

    Real motes ship ADC counts; two decimal digits of precision in 16 bits
    is the usual ballpark.  Values are wrapped into the field (the exact
    bit-pattern does not matter for compression-ratio measurements).
    """
    return int(round(value * scale)) & 0xFFFF


def encode_raw_tuples(
    tuples: Iterable[Mapping[str, float]],
    attributes: Sequence[str],
    bytes_per_attribute: int = constants.BYTES_PER_ATTRIBUTE,
) -> bytes:
    """Concatenate tuples as fixed-width binary records (the raw format)."""
    out = bytearray()
    for record in tuples:
        for name in attributes:
            field = _to_fixed_point(record[name])
            out.extend(field.to_bytes(bytes_per_attribute, "big"))
    return bytes(out)


def raw_size_bytes(
    tuple_count: int,
    attribute_count: int,
    bytes_per_attribute: int = constants.BYTES_PER_ATTRIBUTE,
) -> int:
    """Size of the uncompressed stream without materialising it."""
    return tuple_count * attribute_count * bytes_per_attribute


def _zlib_size(payload: bytes) -> int:
    return len(zlib.compress(payload, level=9))


def _bzip2_size(payload: bytes) -> int:
    return len(bz2.compress(payload, compresslevel=9))


def _raw_size(payload: bytes) -> int:
    return len(payload)


#: Algorithm name -> function(bytes) -> compressed size in bytes.
COMPRESSORS = {
    "none": _raw_size,
    "zlib": _zlib_size,
    "bzip2": _bzip2_size,
}


def compressed_size(payload: bytes, algorithm: str) -> int:
    """Compressed size of ``payload`` under the named algorithm."""
    try:
        return COMPRESSORS[algorithm](payload)
    except KeyError:
        known = ", ".join(sorted(COMPRESSORS))
        raise ValueError(f"unknown compressor {algorithm!r}; known: {known}") from None
