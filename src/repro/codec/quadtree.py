"""Pointerless region quadtree over Z-numbers (§V-C, Figs. 8 and 9).

A set of quantized join-attribute tuples — each a ``(relation flags,
Z-number)`` pair — is encoded as one bitstring:

* an **index node** starts with a ``0`` bit, followed by a presence mask with
  one bit per quadrant of the next level ("The remaining bits of an index
  node encode which of the quadrants at the subsequent level is present"),
  then the encodings of the present quadrants in depth-first order;
* a **point list** is a sequence of points, each a leading ``1`` bit followed
  by the point's position *relative to the current quadrant* (only the
  not-yet-consumed low bits), terminated by a single ``0`` bit.

The tree structure follows the Z-order bit interleaving: level *l* of the
tree consumes the bits of interleave round *l*, so a quadrant at level *l*
is exactly a Z-prefix.  The relation flags are simply the two (in general,
one-per-alias) leading bits of every point, which makes "the topmost index
node represent the relation flags" fall out for free.

Decomposition threshold (§V-C): instead of a fixed point-count threshold the
encoder compares, per node, the cost of listing the points against the cost
of subdividing (index marker + presence mask + children), and keeps the
cheaper — the paper's "compare both solutions and stop the decomposition if
a list of points is shorter", applied optimally via bottom-up recursion.

Canonical form: the encoding of a point set is unique (independent of
insertion order), so encodings can be compared for equality — a property the
round-trip tests rely on.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from ..errors import CodecError
from .bits import BitReader, Bits, BitWriter
from .quantize import Quantizer
from . import zcurve

__all__ = ["FlaggedPoint", "QuadtreeCodec"]

#: A point in the tree: (relation flags, Z-number).
FlaggedPoint = Tuple[int, int]


class QuadtreeCodec:
    """Encoder/decoder for point sets under a fixed level schedule.

    Parameters
    ----------
    flag_bits:
        Width of the relation-flag prefix (one bit per alias; 2 in every
        paper query).  May be 0 for plain point sets.
    z_level_widths:
        Bits consumed per tree level below the flag level — i.e.
        :func:`repro.codec.zcurve.level_widths` of the quantizer.
    """

    def __init__(self, flag_bits: int, z_level_widths: Sequence[int]):
        if flag_bits < 0:
            raise CodecError(f"negative flag width: {flag_bits}")
        for width in z_level_widths:
            if width <= 0:
                raise CodecError(f"level widths must be positive: {list(z_level_widths)}")
        self.flag_bits = flag_bits
        self.z_level_widths = list(z_level_widths)
        self._schedule: List[int] = ([flag_bits] if flag_bits else []) + self.z_level_widths
        self.z_bits = sum(self.z_level_widths)
        self.total_bits = self.flag_bits + self.z_bits
        if self.total_bits == 0:
            raise CodecError("codec with zero total bits")

    @classmethod
    def for_quantizer(cls, quantizer: Quantizer, alias_count: int = 2) -> "QuadtreeCodec":
        """The codec matching a quantizer's interleave schedule."""
        return cls(alias_count, zcurve.level_widths(quantizer.bits_per_dim))

    # -- point packing -------------------------------------------------------------

    def pack(self, point: FlaggedPoint) -> int:
        """(flags, z) -> full point bitstring as an int."""
        flags, z = point
        if flags < 0 or flags >> self.flag_bits:
            raise CodecError(f"flags {flags} do not fit in {self.flag_bits} bits")
        if self.flag_bits and flags == 0:
            raise CodecError("flags must name at least one relation")
        if z < 0 or z >> self.z_bits:
            raise CodecError(f"Z-number {z} does not fit in {self.z_bits} bits")
        return (flags << self.z_bits) | z

    def unpack(self, packed: int) -> FlaggedPoint:
        """Inverse of :meth:`pack`."""
        return (packed >> self.z_bits, packed & ((1 << self.z_bits) - 1))

    # -- encoding ---------------------------------------------------------------

    def encode(self, points: Iterable[FlaggedPoint]) -> Bits:
        """Encode a set of flagged points; the empty set encodes to 0 bits."""
        packed = sorted({self.pack(point) for point in points})
        if not packed:
            return Bits()
        writer = BitWriter()
        self._encode_node(writer, packed, level=0, remaining=self.total_bits)
        return writer.getvalue()

    def _encode_node(
        self, writer: BitWriter, points: Sequence[int], level: int, remaining: int
    ) -> None:
        list_cost = len(points) * (1 + remaining) + 1
        if level < len(self._schedule):
            width = self._schedule[level]
            groups = self._partition(points, remaining, width)
            subdivide_cost = 1 + (1 << width) + sum(
                self._node_cost(group, level + 1, remaining - width)
                for group in groups.values()
            )
            if subdivide_cost < list_cost:
                writer.write_bit(0)
                mask = 0
                for quadrant in groups:
                    mask |= 1 << ((1 << width) - 1 - quadrant)
                writer.write_uint(mask, 1 << width)
                for quadrant in sorted(groups):
                    self._encode_node(writer, groups[quadrant], level + 1, remaining - width)
                return
        for point in points:
            writer.write_bit(1)
            writer.write_uint(point & ((1 << remaining) - 1) if remaining else 0, remaining)
        writer.write_bit(0)

    def _partition(
        self, points: Sequence[int], remaining: int, width: int
    ) -> Dict[int, List[int]]:
        """Group points by their next ``width`` bits (already sorted input
        keeps the groups sorted)."""
        groups: Dict[int, List[int]] = {}
        shift = remaining - width
        for point in points:
            quadrant = (point >> shift) & ((1 << width) - 1)
            groups.setdefault(quadrant, []).append(point)
        return groups

    def _node_cost(self, points: Sequence[int], level: int, remaining: int) -> int:
        """Minimal encoded size of a node (the decomposition-threshold DP)."""
        list_cost = len(points) * (1 + remaining) + 1
        if level >= len(self._schedule):
            return list_cost
        width = self._schedule[level]
        groups = self._partition(points, remaining, width)
        subdivide_cost = 1 + (1 << width) + sum(
            self._node_cost(group, level + 1, remaining - width) for group in groups.values()
        )
        return min(list_cost, subdivide_cost)

    def encoded_size_bits(self, points: Iterable[FlaggedPoint]) -> int:
        """Size of :meth:`encode` without materialising the bitstring."""
        packed = sorted({self.pack(point) for point in points})
        if not packed:
            return 0
        return self._node_cost(packed, 0, self.total_bits)

    # -- decoding ---------------------------------------------------------------

    def decode(self, bits: Bits) -> FrozenSet[FlaggedPoint]:
        """Decode a bitstring back into the set of flagged points."""
        if len(bits) == 0:
            return frozenset()
        reader = BitReader(bits)
        points: List[int] = []
        self._decode_node(reader, points, level=0, prefix=0, remaining=self.total_bits)
        if not reader.at_end():
            raise CodecError(
                f"{reader.remaining} trailing bits after decoding the quadtree"
            )
        return frozenset(self.unpack(point) for point in points)

    def _decode_node(
        self, reader: BitReader, out: List[int], level: int, prefix: int, remaining: int
    ) -> None:
        first = reader.read_bit()
        if first == 1:
            # Point list; the leading 1 of the first point is consumed.
            while True:
                suffix = reader.read_uint(remaining)
                out.append((prefix << remaining) | suffix)
                if reader.read_bit() == 0:
                    return
            # unreachable
        # Index node.
        if level >= len(self._schedule):
            raise CodecError("index node below the maximum tree depth")
        width = self._schedule[level]
        arity = 1 << width
        mask = reader.read_uint(arity)
        if mask == 0:
            raise CodecError("index node with no present quadrants")
        for quadrant in range(arity):
            if (mask >> (arity - 1 - quadrant)) & 1:
                self._decode_node(
                    reader, out, level + 1, (prefix << width) | quadrant, remaining - width
                )

    def __repr__(self) -> str:
        return (
            f"<QuadtreeCodec flags={self.flag_bits}b z={self.z_bits}b "
            f"levels={self._schedule}>"
        )
