"""Pointerless region quadtree over Z-numbers (§V-C, Figs. 8 and 9).

A set of quantized join-attribute tuples — each a ``(relation flags,
Z-number)`` pair — is encoded as one bitstring:

* an **index node** starts with a ``0`` bit, followed by a presence mask with
  one bit per quadrant of the next level ("The remaining bits of an index
  node encode which of the quadrants at the subsequent level is present"),
  then the encodings of the present quadrants in depth-first order;
* a **point list** is a sequence of points, each a leading ``1`` bit followed
  by the point's position *relative to the current quadrant* (only the
  not-yet-consumed low bits), terminated by a single ``0`` bit.

The tree structure follows the Z-order bit interleaving: level *l* of the
tree consumes the bits of interleave round *l*, so a quadrant at level *l*
is exactly a Z-prefix.  The relation flags are simply the two (in general,
one-per-alias) leading bits of every point, which makes "the topmost index
node represent the relation flags" fall out for free.

Decomposition threshold (§V-C): instead of a fixed point-count threshold the
encoder compares, per node, the cost of listing the points against the cost
of subdividing (index marker + presence mask + children), and keeps the
cheaper — the paper's "compare both solutions and stop the decomposition if
a list of points is shorter", applied optimally via bottom-up recursion.

Canonical form: the encoding of a point set is unique (independent of
insertion order), so encodings can be compared for equality — a property the
round-trip tests rely on.

Implementation note: the public :meth:`QuadtreeCodec.encode` /
:meth:`~QuadtreeCodec.decode` / :meth:`~QuadtreeCodec.encoded_size_bits` run
int-native: encoding exploits that sorted packed points make every quadrant a
contiguous slice (``bisect_left`` instead of dict partitioning) and builds
each subtree bottom-up as a single ``(bit length, int value)`` pair; decoding
is an explicit-stack walk with inline shift/mask reads.  The decomposition
decision (`strict <` between subdivide and list cost) is byte-for-byte the
same as the original recursive writer, which is kept as
:meth:`~QuadtreeCodec._reference_encode` /
:meth:`~QuadtreeCodec._reference_decode` /
:meth:`~QuadtreeCodec._reference_encoded_size_bits` and pinned equivalent by
``tests/test_codec_equivalence.py``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..errors import CodecError
from .bits import BitReader, Bits, _ReferenceBitReader, _ReferenceBitWriter, _fold_chunks
from .quantize import Quantizer
from . import zcurve

__all__ = ["FlaggedPoint", "QuadtreeCodec"]

#: A point in the tree: (relation flags, Z-number).
FlaggedPoint = Tuple[int, int]


class QuadtreeCodec:
    """Encoder/decoder for point sets under a fixed level schedule.

    Parameters
    ----------
    flag_bits:
        Width of the relation-flag prefix (one bit per alias; 2 in every
        paper query).  May be 0 for plain point sets.
    z_level_widths:
        Bits consumed per tree level below the flag level — i.e.
        :func:`repro.codec.zcurve.level_widths` of the quantizer.
    """

    def __init__(self, flag_bits: int, z_level_widths: Sequence[int]):
        if flag_bits < 0:
            raise CodecError(f"negative flag width: {flag_bits}")
        for width in z_level_widths:
            if width <= 0:
                raise CodecError(f"level widths must be positive: {list(z_level_widths)}")
        self.flag_bits = flag_bits
        self.z_level_widths = list(z_level_widths)
        self._schedule: List[int] = ([flag_bits] if flag_bits else []) + self.z_level_widths
        self.z_bits = sum(self.z_level_widths)
        self.total_bits = self.flag_bits + self.z_bits
        if self.total_bits == 0:
            raise CodecError("codec with zero total bits")
        # Per-level decode constants: bits remaining below each level, and
        # (width, arity) per index level (computed once, read every decode).
        self._rems: List[int] = [self.total_bits]
        for width in self._schedule:
            self._rems.append(self._rems[-1] - width)
        self._arities: List[Tuple[int, int]] = [(w, 1 << w) for w in self._schedule]
        # Decode packs (prefix, level) stack entries into one int; this many
        # low bits address the level.
        self._level_shift: int = max(1, len(self._schedule).bit_length())
        # mask -> present quadrants in *reverse* order (decode pushes them on
        # a stack), pre-shifted past the level field.  Level widths are tiny
        # (<= #dims, or flag count) so 2**arity entries stay small; None past
        # width 3 keeps a pathological schedule from exploding the table.
        self._quadrants: List[Optional[Tuple[Tuple[int, ...], ...]]] = [
            tuple(
                tuple(
                    q << self._level_shift
                    for q in range(arity - 1, -1, -1)
                    if (mask >> (arity - 1 - q)) & 1
                )
                for mask in range(1 << arity)
            )
            if arity <= 8
            else None
            for _, arity in self._arities
        ]

    @classmethod
    def for_quantizer(cls, quantizer: Quantizer, alias_count: int = 2) -> "QuadtreeCodec":
        """The codec matching a quantizer's interleave schedule."""
        return cls(alias_count, zcurve.level_widths(quantizer.bits_per_dim))

    # -- point packing -------------------------------------------------------------

    def pack(self, point: FlaggedPoint) -> int:
        """(flags, z) -> full point bitstring as an int."""
        flags, z = point
        if flags < 0 or flags >> self.flag_bits:
            raise CodecError(f"flags {flags} do not fit in {self.flag_bits} bits")
        if self.flag_bits and flags == 0:
            raise CodecError("flags must name at least one relation")
        if z < 0 or z >> self.z_bits:
            raise CodecError(f"Z-number {z} does not fit in {self.z_bits} bits")
        return (flags << self.z_bits) | z

    def unpack(self, packed: int) -> FlaggedPoint:
        """Inverse of :meth:`pack`."""
        return (packed >> self.z_bits, packed & ((1 << self.z_bits) - 1))

    # -- encoding ---------------------------------------------------------------

    def encode(self, points: Iterable[FlaggedPoint]) -> Bits:
        """Encode a set of flagged points; the empty set encodes to 0 bits."""
        packed = sorted({self.pack(point) for point in points})
        if not packed:
            return Bits()
        length, value = self._best_encode(packed, 0, len(packed), 0, self.total_bits)
        return Bits(value, length)

    def _best_encode(
        self, points: Sequence[int], lo: int, hi: int, level: int, remaining: int
    ) -> Tuple[int, int]:
        """Cheapest encoding of ``points[lo:hi]`` as a ``(bits, value)`` pair.

        Same decomposition DP as :meth:`_encode_node`, but bottom-up: child
        encodings come back as ints and are spliced with shifts, so no per-bit
        writer calls happen and the cost comparison reuses the child lengths
        for free.
        """
        count = hi - lo
        list_length = count * (1 + remaining) + 1
        if count == 1:
            # A lone point always lists: subdividing costs
            # 1 + arity + child >= remaining + 4 > remaining + 2 since
            # arity = 2**width >= width + 1, so the strict `<` never fires.
            return list_length, ((1 << remaining) | (points[lo] & ((1 << remaining) - 1))) << 1
        if level < len(self._schedule):
            width = self._schedule[level]
            shift = remaining - width
            arity = 1 << width
            subdivide_length = 1 + arity
            mask = 0
            children: List[Tuple[int, int]] = []
            i = lo
            while i < hi:
                high = points[i] >> shift
                # Sorted input keeps each quadrant contiguous: everything in
                # this quadrant is < (high + 1) << shift.
                j = bisect_left(points, (high + 1) << shift, i, hi)
                child = self._best_encode(points, i, j, level + 1, shift)
                subdivide_length += child[0]
                mask |= 1 << (arity - 1 - (high & (arity - 1)))
                children.append(child)
                i = j
            if subdivide_length < list_length:
                value = mask  # the leading 0 marker adds length, not value
                for child_length, child_value in children:
                    value = (value << child_length) | child_value
                return subdivide_length, value
        if remaining:
            field = 1 + remaining
            marker = 1 << remaining
            suffix_mask = marker - 1
            if count > 16:
                chunks = [(marker | (points[k] & suffix_mask), field) for k in range(lo, hi)]
                chunks.append((0, 1))  # list terminator
                value, _ = _fold_chunks(chunks)
            else:
                value = 0
                for k in range(lo, hi):
                    value = (value << field) | marker | (points[k] & suffix_mask)
                value <<= 1
        else:
            value = ((1 << count) - 1) << 1
        return list_length, value

    def _best_cost(
        self, points: Sequence[int], lo: int, hi: int, level: int, remaining: int
    ) -> int:
        """Size-only twin of :meth:`_best_encode` (no value assembly)."""
        list_length = (hi - lo) * (1 + remaining) + 1
        if hi - lo == 1 or level >= len(self._schedule):
            # Singletons always list — see the proof in _best_encode.
            return list_length
        width = self._schedule[level]
        shift = remaining - width
        subdivide_length = 1 + (1 << width)
        i = lo
        while i < hi:
            j = bisect_left(points, ((points[i] >> shift) + 1) << shift, i, hi)
            subdivide_length += self._best_cost(points, i, j, level + 1, shift)
            i = j
        return subdivide_length if subdivide_length < list_length else list_length

    def encoded_size_bits(self, points: Iterable[FlaggedPoint]) -> int:
        """Size of :meth:`encode` without materialising the bitstring."""
        packed = sorted({self.pack(point) for point in points})
        if not packed:
            return 0
        return self._best_cost(packed, 0, len(packed), 0, self.total_bits)

    # -- decoding ---------------------------------------------------------------

    def decode(self, bits: Bits) -> FrozenSet[FlaggedPoint]:
        """Decode a bitstring back into the set of flagged points."""
        length = len(bits)
        if length == 0:
            return frozenset()
        # The stream is parsed as a '0101...' string: field reads become
        # `int(s[a:b], 2)` over just the field's characters.  Shifting the
        # whole stream integer per read (what the reference reader does)
        # costs O(stream bits) *per field*, which made decoding quadratic.
        stream = format(bits.value, f"0{length}b")
        rems = self._rems
        arities = self._arities
        quadrant_tables = self._quadrants
        max_level = len(self._schedule)
        position = 0
        points: List[int] = []
        # DFS via explicit stack; children pushed in reverse quadrant order so
        # reads happen in exactly the recursive (reference) order.  Entries
        # pack (prefix, level) into one int: cheaper to push/pop than tuples.
        level_shift = self._level_shift
        level_mask = (1 << level_shift) - 1
        stack: List[int] = [0]
        pop = stack.pop
        push = stack.append
        while stack:
            entry = pop()
            level = entry & level_mask
            prefix = entry >> level_shift
            if position >= length:
                raise CodecError(
                    f"bitstream underrun: wanted 1 bits at position "
                    f"{position}, only {length - position} remain"
                )
            marker = stream[position]
            position += 1
            if marker == "1":
                # Point list; the leading 1 of the first point is consumed.
                # Layout from here: suffix ('1' suffix)* '0' — continuation
                # markers sit at a fixed stride, so scan them first and bulk-
                # extract the suffixes; any scan that would run off the end
                # falls back to the bit-at-a-time loop, which raises the
                # exact reference error.
                remaining = rems[level]
                base = prefix << remaining
                stride = remaining + 1
                first_end = position + remaining
                cursor = first_end
                while cursor < length and stream[cursor] == "1":
                    cursor += stride
                if cursor < length:
                    if cursor == first_end:  # single point: the common case
                        points.append(
                            base | int(stream[position:cursor], 2) if remaining else base
                        )
                    elif remaining:
                        points.extend(
                            [
                                base | int(stream[start : start + remaining], 2)
                                for start in range(position, cursor, stride)
                            ]
                        )
                    else:
                        points.extend([base] * ((cursor - position) // stride + 1))
                    position = cursor + 1
                    continue
                # Ran off the end: replay carefully for the right message.
                while True:
                    end = position + remaining
                    if end > length:
                        raise CodecError(
                            f"bitstream underrun: wanted {remaining} bits at "
                            f"position {position}, only {length - position} remain"
                        )
                    points.append(base | int(stream[position:end], 2) if remaining else base)
                    if end >= length:
                        raise CodecError(
                            f"bitstream underrun: wanted 1 bits at position "
                            f"{end}, only {length - end} remain"
                        )
                    position = end + 1
                    if stream[end] == "0":
                        break
                continue
            # Index node.
            if level >= max_level:
                raise CodecError("index node below the maximum tree depth")
            width, arity = arities[level]
            end = position + arity
            if end > length:
                raise CodecError(
                    f"bitstream underrun: wanted {arity} bits at position "
                    f"{position}, only {length - position} remain"
                )
            mask = int(stream[position:end], 2)
            position = end
            if mask == 0:
                raise CodecError("index node with no present quadrants")
            child_entry = ((prefix << width) << level_shift) | (level + 1)
            table = quadrant_tables[level]
            if table is not None:
                for shifted_quadrant in table[mask]:
                    push(child_entry | shifted_quadrant)
            else:
                top = arity - 1
                for quadrant in range(top, -1, -1):
                    if (mask >> (top - quadrant)) & 1:
                        push(child_entry | (quadrant << level_shift))
        if position != length:
            raise CodecError(
                f"{length - position} trailing bits after decoding the quadtree"
            )
        z_bits = self.z_bits
        z_mask = (1 << z_bits) - 1
        return frozenset((point >> z_bits, point & z_mask) for point in points)

    # -- reference implementations (pre-optimization, kept for equivalence) ------

    def _reference_encode(self, points: Iterable[FlaggedPoint]) -> Bits:
        """The original recursive writer-based encoder (oracle/baseline)."""
        packed = sorted({self.pack(point) for point in points})
        if not packed:
            return Bits()
        writer = _ReferenceBitWriter()
        self._encode_node(writer, packed, level=0, remaining=self.total_bits)
        return writer.getvalue()

    def _encode_node(
        self, writer, points: Sequence[int], level: int, remaining: int
    ) -> None:
        list_cost = len(points) * (1 + remaining) + 1
        if level < len(self._schedule):
            width = self._schedule[level]
            groups = self._partition(points, remaining, width)
            subdivide_cost = 1 + (1 << width) + sum(
                self._node_cost(group, level + 1, remaining - width)
                for group in groups.values()
            )
            if subdivide_cost < list_cost:
                writer.write_bit(0)
                mask = 0
                for quadrant in groups:
                    mask |= 1 << ((1 << width) - 1 - quadrant)
                writer.write_uint(mask, 1 << width)
                for quadrant in sorted(groups):
                    self._encode_node(writer, groups[quadrant], level + 1, remaining - width)
                return
        for point in points:
            writer.write_bit(1)
            writer.write_uint(point & ((1 << remaining) - 1) if remaining else 0, remaining)
        writer.write_bit(0)

    def _partition(
        self, points: Sequence[int], remaining: int, width: int
    ) -> Dict[int, List[int]]:
        """Group points by their next ``width`` bits (already sorted input
        keeps the groups sorted)."""
        groups: Dict[int, List[int]] = {}
        shift = remaining - width
        for point in points:
            quadrant = (point >> shift) & ((1 << width) - 1)
            groups.setdefault(quadrant, []).append(point)
        return groups

    def _node_cost(self, points: Sequence[int], level: int, remaining: int) -> int:
        """Minimal encoded size of a node (the decomposition-threshold DP)."""
        list_cost = len(points) * (1 + remaining) + 1
        if level >= len(self._schedule):
            return list_cost
        width = self._schedule[level]
        groups = self._partition(points, remaining, width)
        subdivide_cost = 1 + (1 << width) + sum(
            self._node_cost(group, level + 1, remaining - width) for group in groups.values()
        )
        return min(list_cost, subdivide_cost)

    def _reference_encoded_size_bits(self, points: Iterable[FlaggedPoint]) -> int:
        """The original recursive size DP (oracle/baseline)."""
        packed = sorted({self.pack(point) for point in points})
        if not packed:
            return 0
        return self._node_cost(packed, 0, self.total_bits)

    def _reference_decode(self, bits: Bits) -> FrozenSet[FlaggedPoint]:
        """The original recursive reader-based decoder (oracle/baseline)."""
        if len(bits) == 0:
            return frozenset()
        reader = _ReferenceBitReader(bits)
        points: List[int] = []
        self._decode_node(reader, points, level=0, prefix=0, remaining=self.total_bits)
        if not reader.at_end():
            raise CodecError(
                f"{reader.remaining} trailing bits after decoding the quadtree"
            )
        return frozenset(self.unpack(point) for point in points)

    def _decode_node(
        self, reader: BitReader, out: List[int], level: int, prefix: int, remaining: int
    ) -> None:
        first = reader.read_bit()
        if first == 1:
            # Point list; the leading 1 of the first point is consumed.
            while True:
                suffix = reader.read_uint(remaining)
                out.append((prefix << remaining) | suffix)
                if reader.read_bit() == 0:
                    return
            # unreachable
        # Index node.
        if level >= len(self._schedule):
            raise CodecError("index node below the maximum tree depth")
        width = self._schedule[level]
        arity = 1 << width
        mask = reader.read_uint(arity)
        if mask == 0:
            raise CodecError("index node with no present quadrants")
        for quadrant in range(arity):
            if (mask >> (arity - 1 - quadrant)) & 1:
                self._decode_node(
                    reader, out, level + 1, (prefix << width) | quadrant, remaining - width
                )

    def __repr__(self) -> str:
        return (
            f"<QuadtreeCodec flags={self.flag_bits}b z={self.z_bits}b "
            f"levels={self._schedule}>"
        )
