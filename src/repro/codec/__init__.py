"""Compact representation of join-attribute tuples (paper §V)."""

from .bits import BitReader, BitWriter, Bits
from .compression import COMPRESSORS, compressed_size, encode_raw_tuples, raw_size_bytes
from .quadtree import FlaggedPoint, QuadtreeCodec
from .quantize import UNBOUNDED_SENTINEL, QuantizedDimension, Quantizer
from .setops import (
    insert_point,
    intersect_encoded,
    intersect_points,
    union_encoded,
    union_points,
)
from .zcurve import deinterleave, interleave, level_widths, total_bits

__all__ = [
    "BitReader",
    "BitWriter",
    "Bits",
    "COMPRESSORS",
    "FlaggedPoint",
    "QuadtreeCodec",
    "QuantizedDimension",
    "Quantizer",
    "UNBOUNDED_SENTINEL",
    "compressed_size",
    "deinterleave",
    "encode_raw_tuples",
    "insert_point",
    "interleave",
    "intersect_encoded",
    "intersect_points",
    "level_widths",
    "raw_size_bytes",
    "total_bits",
    "union_encoded",
    "union_points",
]
