"""Z-order (Morton) encoding with unequal dimension widths.

§V-B: "We compute the Z-number of a point by bit interleaving of the
coordinates of each dimension. ... We compute the number of bits for each
dimension separately as, in general, the dimensions are not of equal size.
In this case, each dimension contributes to the bit interleaving until its
bits are exhausted."

Interleaving runs MSB-first in rounds: in round *l* every dimension that
still has bits left (``bits[d] > l``) contributes its next-most-significant
bit, in dimension order.  This aligns exactly with the region quadtree's
level-wise subdivision: round *l* decides the quadrant at tree level *l*,
and dimensions whose extent is exhausted simply stop splitting (the tree's
fan-out shrinks at deeper levels).

Implementation note: the public :func:`interleave`/:func:`deinterleave` are
*table-driven* — per ``bits_per_dim`` schedule (memoized) each dimension gets
precomputed bit-scatter/gather lookup tables processing :data:`CHUNK_BITS`
source bits per table hit, instead of one Python loop iteration per bit.
The original per-bit loops are kept as :func:`_reference_interleave` /
:func:`_reference_deinterleave`; the two implementations are bit-identical
(pinned by the equivalence suite in ``tests/test_codec_equivalence.py`` and
timed against each other by ``python -m repro.bench perf``).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..errors import CodecError

__all__ = ["interleave", "deinterleave", "level_widths", "total_bits"]

#: Source/target bits consumed per lookup-table hit.  11 keeps each table at
#: 2048 entries (a few KB) while covering typical quantizer widths (<= 11
#: bits per dimension) in a single probe.
CHUNK_BITS = 11
_CHUNK_MASK = (1 << CHUNK_BITS) - 1


def _validate(bits_per_dim: Sequence[int]) -> None:
    if not bits_per_dim:
        raise CodecError("need at least one dimension")
    for width in bits_per_dim:
        if width < 0:
            raise CodecError(f"negative bit width: {width}")
    if sum(bits_per_dim) == 0:
        raise CodecError("all dimensions are zero bits wide")


def total_bits(bits_per_dim: Sequence[int]) -> int:
    """Length of a Z-number for the given per-dimension widths."""
    _validate(bits_per_dim)
    return sum(bits_per_dim)


def level_widths(bits_per_dim: Sequence[int]) -> List[int]:
    """Bits consumed per interleave round (= quadtree level fan-out log2).

    ``level_widths([3, 1])`` is ``[2, 1, 1]``: in round 0 both dimensions
    contribute, afterwards only the wider one.
    """
    _validate(bits_per_dim)
    rounds = max(bits_per_dim)
    return [sum(1 for width in bits_per_dim if width > level) for level in range(rounds)]


class _Interleaver:
    """Precomputed scatter/gather tables for one ``bits_per_dim`` schedule.

    ``scatter[d][c][v]`` is the Z-contribution of chunk ``c`` (source bits
    ``[c*CHUNK_BITS, (c+1)*CHUNK_BITS)``, LSB-first) of dimension ``d``
    holding value ``v`` — already shifted into its interleaved positions, so
    interleaving is an OR of table hits.  ``gather[c][v]`` inverts that: the
    per-dimension coordinate contributions of Z-chunk ``c`` holding ``v``.
    """

    __slots__ = ("bits_per_dim", "ndim", "total", "scatter", "gather")

    def __init__(self, bits_per_dim: Tuple[int, ...]):
        self.bits_per_dim = bits_per_dim
        self.ndim = len(bits_per_dim)
        self.total = sum(bits_per_dim)
        # Output position of each dimension's i-th most significant bit,
        # replaying the reference round-major/dimension-minor order.
        positions: List[List[int]] = [[] for _ in bits_per_dim]
        contribution = 0
        for level in range(max(bits_per_dim)):
            for dim, width in enumerate(bits_per_dim):
                if width > level:
                    positions[dim].append(self.total - 1 - contribution)
                    contribution += 1

        scatter: List[Tuple[Tuple[int, ...], ...]] = []
        for dim, width in enumerate(bits_per_dim):
            dim_positions = positions[dim]
            chunks: List[Tuple[int, ...]] = []
            for chunk in range((width + CHUNK_BITS - 1) // CHUNK_BITS):
                table = [0] * (1 << CHUNK_BITS)
                for bit in range(CHUNK_BITS):
                    source = chunk * CHUNK_BITS + bit  # LSB index in the coordinate
                    if source >= width:
                        break
                    mask = 1 << positions[dim][width - 1 - source]
                    step = 1 << bit
                    for base in range(0, 1 << CHUNK_BITS, step * 2):
                        for offset in range(step):
                            table[base + step + offset] |= mask
                chunks.append(tuple(table))
            scatter.append(tuple(chunks))
        self.scatter = tuple(scatter)

        # gather: z bit position -> (dimension, source bit position).
        owner: Dict[int, Tuple[int, int]] = {}
        for dim, width in enumerate(bits_per_dim):
            for i, position in enumerate(positions[dim]):
                owner[position] = (dim, width - 1 - i)
        gather: List[Tuple[Tuple[int, ...], ...]] = []
        for chunk in range((self.total + CHUNK_BITS - 1) // CHUNK_BITS):
            table: List[Tuple[int, ...]] = []
            for value in range(1 << CHUNK_BITS):
                parts = [0] * self.ndim
                v = value
                bit = 0
                while v:
                    if v & 1:
                        position = chunk * CHUNK_BITS + bit
                        if position < self.total:
                            dim, source = owner[position]
                            parts[dim] |= 1 << source
                    v >>= 1
                    bit += 1
                table.append(tuple(parts))
            gather.append(tuple(table))
        self.gather = tuple(gather)


_INTERLEAVERS: Dict[Tuple[int, ...], _Interleaver] = {}


def _interleaver(bits_per_dim: Sequence[int]) -> _Interleaver:
    key = tuple(bits_per_dim)
    cached = _INTERLEAVERS.get(key)
    if cached is None:
        _validate(key)
        if len(_INTERLEAVERS) >= 256:  # fuzzers sweep many shapes; stay bounded
            _INTERLEAVERS.clear()
        cached = _INTERLEAVERS[key] = _Interleaver(key)
    return cached


def interleave(coordinates: Sequence[int], bits_per_dim: Sequence[int]) -> int:
    """Morton-encode ``coordinates`` into a single Z-number.

    Coordinates must fit their declared widths; the result has
    ``sum(bits_per_dim)`` bits.
    """
    itl = _interleaver(bits_per_dim)
    if len(coordinates) != itl.ndim:
        raise CodecError(
            f"{len(coordinates)} coordinates for {itl.ndim} dimensions"
        )
    z = 0
    for coordinate, width, chunks in zip(coordinates, itl.bits_per_dim, itl.scatter):
        if coordinate < 0 or coordinate >> width:
            raise CodecError(f"coordinate {coordinate} does not fit in {width} bits")
        for table in chunks:
            z |= table[coordinate & _CHUNK_MASK]
            coordinate >>= CHUNK_BITS
    return z


def deinterleave(z: int, bits_per_dim: Sequence[int]) -> List[int]:
    """Invert :func:`interleave`."""
    itl = _interleaver(bits_per_dim)
    if z < 0 or z >> itl.total:
        raise CodecError(f"Z-number {z} does not fit in {itl.total} bits")
    if itl.ndim == 2:
        # The dominant shape (two join attributes): unpack without the
        # per-dimension inner loop.
        x = y = 0
        for table in itl.gather:
            part_x, part_y = table[z & _CHUNK_MASK]
            z >>= CHUNK_BITS
            x |= part_x
            y |= part_y
        return [x, y]
    coordinates = [0] * itl.ndim
    for table in itl.gather:
        parts = table[z & _CHUNK_MASK]
        z >>= CHUNK_BITS
        for dim, part in enumerate(parts):
            if part:
                coordinates[dim] |= part
    return coordinates


# -- reference implementations (pre-optimization, kept for equivalence) --------


def _reference_interleave(coordinates: Sequence[int], bits_per_dim: Sequence[int]) -> int:
    """Per-bit interleave loop — the original implementation.

    Kept verbatim as the correctness oracle for :func:`interleave`; the
    equivalence suite pins bit-identical results and the perf suite times
    the two against each other.
    """
    _validate(bits_per_dim)
    if len(coordinates) != len(bits_per_dim):
        raise CodecError(
            f"{len(coordinates)} coordinates for {len(bits_per_dim)} dimensions"
        )
    for coordinate, width in zip(coordinates, bits_per_dim):
        if coordinate < 0 or coordinate >> width:
            raise CodecError(f"coordinate {coordinate} does not fit in {width} bits")
    z = 0
    rounds = max(bits_per_dim)
    for level in range(rounds):
        for dimension, width in enumerate(bits_per_dim):
            if width > level:
                bit = (coordinates[dimension] >> (width - 1 - level)) & 1
                z = (z << 1) | bit
    return z


def _reference_deinterleave(z: int, bits_per_dim: Sequence[int]) -> List[int]:
    """Per-bit deinterleave loop — the original implementation."""
    _validate(bits_per_dim)
    length = sum(bits_per_dim)
    if z < 0 or z >> length:
        raise CodecError(f"Z-number {z} does not fit in {length} bits")
    coordinates = [0] * len(bits_per_dim)
    position = length
    rounds = max(bits_per_dim)
    for level in range(rounds):
        for dimension, width in enumerate(bits_per_dim):
            if width > level:
                position -= 1
                bit = (z >> position) & 1
                coordinates[dimension] = (coordinates[dimension] << 1) | bit
    return coordinates
