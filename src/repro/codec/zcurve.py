"""Z-order (Morton) encoding with unequal dimension widths.

§V-B: "We compute the Z-number of a point by bit interleaving of the
coordinates of each dimension. ... We compute the number of bits for each
dimension separately as, in general, the dimensions are not of equal size.
In this case, each dimension contributes to the bit interleaving until its
bits are exhausted."

Interleaving runs MSB-first in rounds: in round *l* every dimension that
still has bits left (``bits[d] > l``) contributes its next-most-significant
bit, in dimension order.  This aligns exactly with the region quadtree's
level-wise subdivision: round *l* decides the quadrant at tree level *l*,
and dimensions whose extent is exhausted simply stop splitting (the tree's
fan-out shrinks at deeper levels).
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import CodecError

__all__ = ["interleave", "deinterleave", "level_widths", "total_bits"]


def _validate(bits_per_dim: Sequence[int]) -> None:
    if not bits_per_dim:
        raise CodecError("need at least one dimension")
    for width in bits_per_dim:
        if width < 0:
            raise CodecError(f"negative bit width: {width}")
    if sum(bits_per_dim) == 0:
        raise CodecError("all dimensions are zero bits wide")


def total_bits(bits_per_dim: Sequence[int]) -> int:
    """Length of a Z-number for the given per-dimension widths."""
    _validate(bits_per_dim)
    return sum(bits_per_dim)


def level_widths(bits_per_dim: Sequence[int]) -> List[int]:
    """Bits consumed per interleave round (= quadtree level fan-out log2).

    ``level_widths([3, 1])`` is ``[2, 1, 1]``: in round 0 both dimensions
    contribute, afterwards only the wider one.
    """
    _validate(bits_per_dim)
    rounds = max(bits_per_dim)
    return [sum(1 for width in bits_per_dim if width > level) for level in range(rounds)]


def interleave(coordinates: Sequence[int], bits_per_dim: Sequence[int]) -> int:
    """Morton-encode ``coordinates`` into a single Z-number.

    Coordinates must fit their declared widths; the result has
    ``sum(bits_per_dim)`` bits.
    """
    _validate(bits_per_dim)
    if len(coordinates) != len(bits_per_dim):
        raise CodecError(
            f"{len(coordinates)} coordinates for {len(bits_per_dim)} dimensions"
        )
    for coordinate, width in zip(coordinates, bits_per_dim):
        if coordinate < 0 or coordinate >> width:
            raise CodecError(f"coordinate {coordinate} does not fit in {width} bits")
    z = 0
    rounds = max(bits_per_dim)
    for level in range(rounds):
        for dimension, width in enumerate(bits_per_dim):
            if width > level:
                bit = (coordinates[dimension] >> (width - 1 - level)) & 1
                z = (z << 1) | bit
    return z


def deinterleave(z: int, bits_per_dim: Sequence[int]) -> List[int]:
    """Invert :func:`interleave`."""
    _validate(bits_per_dim)
    length = sum(bits_per_dim)
    if z < 0 or z >> length:
        raise CodecError(f"Z-number {z} does not fit in {length} bits")
    coordinates = [0] * len(bits_per_dim)
    position = length
    rounds = max(bits_per_dim)
    for level in range(rounds):
        for dimension, width in enumerate(bits_per_dim):
            if width > level:
                position -= 1
                bit = (z >> position) & 1
                coordinates[dimension] = (coordinates[dimension] << 1) | bit
    return coordinates
