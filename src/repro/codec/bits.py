"""Bit-level I/O for the quadtree wire format.

The pointerless quadtree (§V-C, Fig. 9) is a *bitstring*: index-node markers,
presence masks, relative point encodings and list terminators are all
sub-byte fields.  :class:`BitWriter` and :class:`BitReader` provide MSB-first
append/consume over a growable buffer, plus the byte-level view used for
packet accounting (a transmission carries whole bytes).

Implementation note: :class:`BitWriter` buffers appends as ``(value, width)``
chunks and assembles the final integer with a balanced pairwise fold in
:meth:`BitWriter.getvalue` — O(N log N) word operations for an N-bit stream,
versus the O(N²) of growing one big int by a few bits per append (kept as
:class:`_ReferenceBitWriter` for the equivalence/perf suites).
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import CodecError

__all__ = ["BitWriter", "BitReader", "Bits"]


class Bits:
    """An immutable bit string (MSB-first).

    Stored as (value, length): the integer's binary expansion padded to
    ``length`` bits.  Cheap to hash and compare, which the codec tests use
    heavily.
    """

    __slots__ = ("_value", "_length")

    def __init__(self, value: int = 0, length: int = 0):
        if length < 0:
            raise CodecError(f"negative bit length: {length}")
        if value < 0:
            raise CodecError(f"negative bit value: {value}")
        if value >> length:
            raise CodecError(f"value {value:#x} does not fit in {length} bits")
        self._value = value
        self._length = length

    @property
    def value(self) -> int:
        """The bits as an unsigned integer (MSB = first bit)."""
        return self._value

    def __len__(self) -> int:
        return self._length

    @property
    def byte_length(self) -> int:
        """Bytes needed on the wire (ceil of bits / 8); 0 bits -> 0 bytes."""
        return (self._length + 7) // 8

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Bits)
            and self._value == other._value
            and self._length == other._length
        )

    def __hash__(self) -> int:
        return hash((self._value, self._length))

    def __repr__(self) -> str:
        if self._length == 0:
            return "Bits('')"
        return f"Bits('{self._value:0{self._length}b}')"

    @staticmethod
    def from_string(text: str) -> "Bits":
        """Build from a '0101...' string (test convenience)."""
        if text and set(text) - {"0", "1"}:
            raise CodecError(f"not a bit string: {text!r}")
        return Bits(int(text, 2) if text else 0, len(text))

    def to_bytes(self) -> bytes:
        """Left-aligned byte representation (pad bits are zero)."""
        if self._length == 0:
            return b""
        padded = self._value << (self.byte_length * 8 - self._length)
        return padded.to_bytes(self.byte_length, "big")


def _fold_chunks(chunks: List[Tuple[int, int]]) -> Tuple[int, int]:
    """Concatenate (value, width) chunks into one, merging balanced pairs.

    Pairwise merging keeps operand sizes even across rounds, so total work is
    O(N log N) in the bit length instead of the O(N²) of a left fold.
    """
    while len(chunks) > 1:
        merged = [
            ((chunks[i][0] << chunks[i + 1][1]) | chunks[i + 1][0],
             chunks[i][1] + chunks[i + 1][1])
            for i in range(0, len(chunks) - 1, 2)
        ]
        if len(chunks) % 2:
            merged.append(chunks[-1])
        chunks = merged
    return chunks[0] if chunks else (0, 0)


class BitWriter:
    """Append-only MSB-first bit sink."""

    def __init__(self) -> None:
        self._chunks: List[Tuple[int, int]] = []
        self._length = 0

    def write_bit(self, bit: int) -> None:
        """Append one bit (0 or 1)."""
        if bit not in (0, 1):
            raise CodecError(f"bit must be 0 or 1, got {bit!r}")
        self._chunks.append((bit, 1))
        self._length += 1

    def write_uint(self, value: int, width: int) -> None:
        """Append ``value`` as a ``width``-bit big-endian unsigned field."""
        if width < 0:
            raise CodecError(f"negative field width: {width}")
        if value < 0 or value >> width:
            raise CodecError(f"value {value} does not fit in {width} bits")
        self._chunks.append((value, width))
        self._length += width

    def write_bits(self, bits: Bits) -> None:
        """Append another bit string."""
        self._chunks.append((bits.value, len(bits)))
        self._length += len(bits)

    def __len__(self) -> int:
        return self._length

    def getvalue(self) -> Bits:
        """Snapshot the accumulated bits (further appends still allowed)."""
        if len(self._chunks) > 1:
            self._chunks = [_fold_chunks(self._chunks)]
        value = self._chunks[0][0] if self._chunks else 0
        return Bits(value, self._length)


class _ReferenceBitWriter:
    """The original immediate-fold writer (pre-optimization).

    Grows a single big int by ``width`` bits per append — O(N²) word work
    for an N-bit stream.  Kept as the oracle/baseline for the equivalence
    tests and ``repro.bench perf``.
    """

    def __init__(self) -> None:
        self._value = 0
        self._length = 0

    def write_bit(self, bit: int) -> None:
        if bit not in (0, 1):
            raise CodecError(f"bit must be 0 or 1, got {bit!r}")
        self._value = (self._value << 1) | bit
        self._length += 1

    def write_uint(self, value: int, width: int) -> None:
        if width < 0:
            raise CodecError(f"negative field width: {width}")
        if value < 0 or value >> width:
            raise CodecError(f"value {value} does not fit in {width} bits")
        self._value = (self._value << width) | value
        self._length += width

    def write_bits(self, bits: Bits) -> None:
        self._value = (self._value << len(bits)) | bits.value
        self._length += len(bits)

    def __len__(self) -> int:
        return self._length

    def getvalue(self) -> Bits:
        return Bits(self._value, self._length)


class _ReferenceBitReader:
    """The original reader (pre-optimization): every read re-derives the
    stream length and value through the :class:`Bits` attributes and shifts
    the full stream integer.  Kept as the baseline for the perf suite."""

    def __init__(self, bits: Bits):
        self._bits = bits
        self._position = 0

    @property
    def position(self) -> int:
        return self._position

    @property
    def remaining(self) -> int:
        return len(self._bits) - self._position

    def read_bit(self) -> int:
        return self.read_uint(1)

    def read_uint(self, width: int) -> int:
        if width < 0:
            raise CodecError(f"negative field width: {width}")
        if self._position + width > len(self._bits):
            raise CodecError(
                f"bitstream underrun: wanted {width} bits at position "
                f"{self._position}, only {self.remaining} remain"
            )
        shift = len(self._bits) - self._position - width
        mask = (1 << width) - 1
        self._position += width
        return (self._bits.value >> shift) & mask

    def at_end(self) -> bool:
        return self._position == len(self._bits)


class BitReader:
    """MSB-first bit source over a :class:`Bits`."""

    def __init__(self, bits: Bits):
        self._bits = bits
        # Cached locally: read_uint is the innermost decode loop and
        # attribute-chasing through Bits dominates otherwise.
        self._value = bits.value
        self._length = len(bits)
        self._position = 0

    @property
    def position(self) -> int:
        """Bits consumed so far."""
        return self._position

    @property
    def remaining(self) -> int:
        """Bits left to read."""
        return self._length - self._position

    def read_bit(self) -> int:
        """Consume one bit."""
        return self.read_uint(1)

    def read_uint(self, width: int) -> int:
        """Consume a ``width``-bit big-endian unsigned field."""
        if width < 0:
            raise CodecError(f"negative field width: {width}")
        position = self._position
        if position + width > self._length:
            raise CodecError(
                f"bitstream underrun: wanted {width} bits at position "
                f"{position}, only {self._length - position} remain"
            )
        shift = self._length - position - width
        self._position = position + width
        return (self._value >> shift) & ((1 << width) - 1)

    def at_end(self) -> bool:
        """True once every bit has been consumed."""
        return self._position == self._length
