"""Quantization of join-attribute tuples (Fig. 7).

"The key idea towards representing single join-attribute tuples is to
perform a quantization of the range of each sensor type" (§V-B).  Each
dimension gets a bounded, discrete domain::

    SizeOfDim[i]  = floor((MaxVal[i] - MinVal[i]) / Resolution[i]) + 1
    SizeOfDim[i]  = roundUpToPowOf2(SizeOfDim[i])
    BitPerDim[i]  = log2(SizeOfDim[i])

and a value maps to cell ``floor((v - MinVal) / Resolution)``, clamped to
``[0, SizeOfDim - 1]`` — out-of-range readings land in the boundary cells
(Fig. 7 lines 12-15).

Conservativeness at the boundary: the paper argues clamping can only cause
false *positives*.  That is true only if the pre-computation join treats the
boundary cells as unbounded; otherwise a clamped value could be pruned away
and the final result would silently lose a row.  :meth:`Quantizer.cell_bounds`
therefore widens cell 0 downwards and the last cell upwards (to a large
finite sentinel, avoiding inf*0 NaN traps in interval arithmetic), which
preserves the paper's exactness claim for arbitrary data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from ..data.sensors import SensorCatalog, SensorSpec
from ..errors import CodecError
from ..query.evaluate import CellBounds
from . import zcurve

__all__ = ["Quantizer", "QuantizedDimension", "UNBOUNDED_SENTINEL"]

#: Large finite stand-in for +-infinity in boundary-cell bounds.  Finite so
#: that interval arithmetic (e.g. 0 * bound) never produces NaN; large enough
#: to dominate any realistic sensor value or coordinate.
UNBOUNDED_SENTINEL = 1e30


@dataclass(frozen=True)
class QuantizedDimension:
    """Derived quantization parameters of one dimension (Fig. 7 lines 1-5)."""

    name: str
    min_value: float
    resolution: float
    size: int  # number of cells, a power of two
    bits: int  # log2(size)

    @staticmethod
    def from_spec(spec: SensorSpec) -> "QuantizedDimension":
        """Compute size/bits from a sensor's range and resolution."""
        raw_size = math.floor(spec.span / spec.resolution) + 1
        size = 1
        while size < raw_size:
            size *= 2
        return QuantizedDimension(
            name=spec.name,
            min_value=spec.min_value,
            resolution=spec.resolution,
            size=size,
            bits=size.bit_length() - 1,
        )

    def cell_of(self, value: float) -> int:
        """Map a raw value to its (clamped) cell index (Fig. 7 lines 10-15)."""
        cell = math.floor((value - self.min_value) / self.resolution)
        if cell < 0:
            return 0
        if cell >= self.size:
            return self.size - 1
        return cell

    def bounds_of(self, cell: int) -> Tuple[float, float]:
        """Raw-value interval covered by ``cell``, boundary cells widened."""
        if cell < 0 or cell >= self.size:
            raise CodecError(f"cell {cell} out of range for dimension {self.name!r}")
        lo = self.min_value + cell * self.resolution
        hi = lo + self.resolution
        if cell == 0:
            lo = -UNBOUNDED_SENTINEL
        if cell == self.size - 1:
            hi = UNBOUNDED_SENTINEL
        return lo, hi


class Quantizer:
    """Quantizes join-attribute tuples into Z-numbers and back.

    Construction fixes the dimension order (= the order used for bit
    interleaving), which must be identical network-wide — in the modelled
    system the ranges and resolutions "are specific to the environment of
    the WSN ... fixed while setting up the network" (§V-B) and the dimension
    order is the sorted attribute order of the query's join attributes.
    """

    def __init__(self, dimensions: Sequence[QuantizedDimension]):
        if not dimensions:
            raise CodecError("quantizer needs at least one dimension")
        names = [dimension.name for dimension in dimensions]
        if len(set(names)) != len(names):
            raise CodecError(f"duplicate dimension names: {names}")
        self.dimensions: Tuple[QuantizedDimension, ...] = tuple(dimensions)
        self._index: Dict[str, int] = {name: i for i, name in enumerate(names)}
        self.bits_per_dim: List[int] = [dimension.bits for dimension in dimensions]

    @classmethod
    def for_attributes(cls, catalog: SensorCatalog, attributes: Sequence[str]) -> "Quantizer":
        """Build from catalogue specs for the given attributes (sorted order)."""
        ordered = sorted(attributes)
        return cls([QuantizedDimension.from_spec(catalog[name]) for name in ordered])

    @property
    def attribute_names(self) -> List[str]:
        """Dimension names in interleave order."""
        return [dimension.name for dimension in self.dimensions]

    @property
    def total_bits(self) -> int:
        """Bits of one encoded Z-number."""
        return sum(self.bits_per_dim)

    # -- encoding ---------------------------------------------------------------

    def encode(self, values: Mapping[str, float]) -> int:
        """Raw join-attribute tuple -> Z-number (Fig. 7 EncodeTuple)."""
        coordinates = []
        for dimension in self.dimensions:
            try:
                value = values[dimension.name]
            except KeyError:
                raise CodecError(
                    f"missing attribute {dimension.name!r} in tuple {dict(values)!r}"
                ) from None
            coordinates.append(dimension.cell_of(value))
        return zcurve.interleave(coordinates, self.bits_per_dim)

    def decode_cells(self, z: int) -> Dict[str, int]:
        """Z-number -> per-dimension cell indices."""
        coordinates = zcurve.deinterleave(z, self.bits_per_dim)
        return {
            dimension.name: coordinate
            for dimension, coordinate in zip(self.dimensions, coordinates)
        }

    def cell_bounds(self, z: int) -> CellBounds:
        """Z-number -> conservative raw-value intervals per attribute."""
        cells = self.decode_cells(z)
        lo: Dict[str, float] = {}
        hi: Dict[str, float] = {}
        for dimension in self.dimensions:
            cell_lo, cell_hi = dimension.bounds_of(cells[dimension.name])
            lo[dimension.name] = cell_lo
            hi[dimension.name] = cell_hi
        return CellBounds(lo, hi)

    def representative(self, z: int) -> Dict[str, float]:
        """Z-number -> the centre point of the cell (for visualisation)."""
        cells = self.decode_cells(z)
        return {
            dimension.name: dimension.min_value
            + (cells[dimension.name] + 0.5) * dimension.resolution
            for dimension in self.dimensions
        }

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{dimension.name}:{dimension.bits}b" for dimension in self.dimensions
        )
        return f"<Quantizer {parts} ({self.total_bits} bits)>"
