"""Set operations on quadtree-encoded point sets (§V-D).

The protocol needs three primitives on ``Join_Attr_Structure`` (Figs. 2, 3):
``Insert``, ``Union`` and ``Intersect``.  "A strength of our quadtree
representation is that Union and Intersect can be computed directly on it.
There is no need to recover the original tuples."

Like the paper's merge we work on the tree representation — never on raw
sensor values — in a single linear pass: both operands are walked in their
depth-first wire order, point sets are merged per quadrant, and the result
is re-encoded (re-running the decomposition-threshold decision, since the
optimal list-vs-subdivide split of a union generally differs from either
operand's).  Relation flags combine bitwise on union ('10' ∪ '01' = '11',
i.e. the point now belongs to both relations) and intersect bitwise on
intersection; a point whose intersected flags are empty drops out.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable

from .bits import Bits
from .quadtree import FlaggedPoint, QuadtreeCodec

__all__ = [
    "union_points",
    "intersect_points",
    "union_encoded",
    "intersect_encoded",
    "insert_point",
]


def union_points(
    a: Iterable[FlaggedPoint], b: Iterable[FlaggedPoint]
) -> FrozenSet[FlaggedPoint]:
    """Union of flagged point sets; flags of shared Z-numbers OR together.

    This is ``UnionJoin_Atts``: a Z-number present as relation A in one
    operand and relation B in the other is present as 'both' afterwards.
    """
    merged: Dict[int, int] = {}
    for flags, z in a:
        merged[z] = merged.get(z, 0) | flags
    for flags, z in b:
        merged[z] = merged.get(z, 0) | flags
    return frozenset((flags, z) for z, flags in merged.items())


def intersect_points(
    a: Iterable[FlaggedPoint], b: Iterable[FlaggedPoint]
) -> FrozenSet[FlaggedPoint]:
    """Intersection; flags AND together, flagless points disappear.

    This is ``IntersectJoin_Atts`` as used by Selective Filter Forwarding
    (Fig. 3 line 3): the subtree's points restricted to those that appear in
    the join filter *in a role the subtree actually has*.
    """
    left: Dict[int, int] = {}
    for flags, z in a:
        left[z] = left.get(z, 0) | flags
    result = {}
    for flags, z in b:
        if z in left:
            combined = left[z] & flags
            if combined:
                result[z] = result.get(z, 0) | combined
    return frozenset((flags, z) for z, flags in result.items())


def insert_point(
    points: Iterable[FlaggedPoint], point: FlaggedPoint
) -> FrozenSet[FlaggedPoint]:
    """``InsertJoin_Atts``: add one flagged point (flags merge on collision)."""
    return union_points(points, [point])


def union_encoded(codec: QuadtreeCodec, a: Bits, b: Bits) -> Bits:
    """Union directly on wire-format operands; returns wire format."""
    return codec.encode(union_points(codec.decode(a), codec.decode(b)))


def intersect_encoded(codec: QuadtreeCodec, a: Bits, b: Bits) -> Bits:
    """Intersection directly on wire-format operands; returns wire format."""
    return codec.encode(intersect_points(codec.decode(a), codec.decode(b)))
