"""SENS-Join: efficient general-purpose join processing in sensor networks.

A from-scratch Python reproduction of

    Mirco Stern, Erik Buchmann, Klemens Böhm:
    "Towards Efficient Processing of General-Purpose Joins in Sensor
    Networks", ICDE 2009.

The package is layered bottom-up (see DESIGN.md):

``repro.sim``
    Discrete-event network simulator: kernel, nodes, radio/energy model,
    deployments (replaces the paper's ns-2 testbed).
``repro.routing``
    Collection tree (CTP-style beaconing, repair) and query flooding.
``repro.data``
    Synthetic spatially-correlated sensor fields, sensor catalogue,
    relation membership, Intel-Lab-style traces.
``repro.query``
    The TinyDB-flavoured SQL dialect: parser, expression AST with exact and
    conservative (interval) evaluation, n-way join evaluation.
``repro.codec``
    The compact join-attribute representation of §V: quantizer, Z-order
    curve, pointerless region quadtree, set operations, compression
    baselines.
``repro.joins``
    The join algorithms: SENS-Join (Treecut, Selective Filter Forwarding)
    and the external-join / semi-join / mediated-join baselines.
``repro.bench``
    The experiment harness regenerating every figure of §VI.

Quick start::

    from repro import SensorNetworkDB
    db = SensorNetworkDB(node_count=300, seed=7)
    report = db.execute(
        "SELECT A.hum, B.hum FROM sensors A, sensors B "
        "WHERE A.temp - B.temp > 18 ONCE"
    )
    print(report.summary())
"""

from .api import QueryReport, SensorNetworkDB
from .errors import (
    BindingError,
    CodecError,
    EvaluationError,
    ExecutionAborted,
    NetworkError,
    ParseError,
    ProtocolError,
    QueryError,
    ReproError,
    RoutingError,
    SimulationError,
)

__version__ = "1.0.0"

__all__ = [
    "BindingError",
    "CodecError",
    "EvaluationError",
    "ExecutionAborted",
    "NetworkError",
    "ParseError",
    "ProtocolError",
    "QueryError",
    "QueryReport",
    "ReproError",
    "RoutingError",
    "SensorNetworkDB",
    "SimulationError",
    "__version__",
]
