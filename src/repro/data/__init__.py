"""Data substrate: synthetic sensor fields, catalogues, relations, lab trace."""

from .fields import (
    ConstantField,
    Field,
    GaussianProcessField,
    GradientField,
    PatchyField,
    UncorrelatedField,
    empirical_correlation,
)
from .labdata import LabMote, LabReading, generate_lab_deployment, generate_lab_trace
from .relations import RELATION_SENSORS, SensorWorld, default_fields
from .sensors import STANDARD_SENSORS, SensorCatalog, SensorSpec, standard_catalog

__all__ = [
    "ConstantField",
    "Field",
    "GaussianProcessField",
    "GradientField",
    "LabMote",
    "LabReading",
    "PatchyField",
    "RELATION_SENSORS",
    "STANDARD_SENSORS",
    "SensorCatalog",
    "SensorSpec",
    "SensorWorld",
    "UncorrelatedField",
    "default_fields",
    "empirical_correlation",
    "generate_lab_deployment",
    "generate_lab_trace",
    "standard_catalog",
]
