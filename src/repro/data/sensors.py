"""Sensor type catalogue.

The network is abstracted as a relation "with one attribute per sensor (e.g.,
temperature) of the nodes and one tuple per node" (§III).  A
:class:`SensorSpec` describes one such attribute: its physical range (used by
the quantizer's ``[MinVal, MaxVal]``, fixed "while setting up the network",
§V-B) and its quantization resolution (the paper uses 0.1 °C for temperature
and 1 m for coordinates).

:data:`STANDARD_SENSORS` mirrors the attributes the paper's queries use:
``temp``, ``hum``, ``pres``, ``light`` plus the position pseudo-sensors
``x`` and ``y`` (positions are known, static attributes but are queried
exactly like sensors, cf. queries Q1/Q2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping

from .. import constants

__all__ = ["SensorSpec", "SensorCatalog", "STANDARD_SENSORS", "standard_catalog"]


@dataclass(frozen=True)
class SensorSpec:
    """Static description of one sensor type / attribute.

    Attributes
    ----------
    name:
        Attribute name used in queries (e.g. ``"temp"``).
    unit:
        Human-readable unit; informational only.
    min_value, max_value:
        The environment-specific range estimate fixed at network setup
        (§V-B).  Actual readings *may* fall outside — the quantizer clamps
        them (Fig. 7 lines 12-15) at the cost of potential false positives.
    resolution:
        Quantization step for the compact representation.  Coarser ⇒ fewer
        bits but more false positives; never affects correctness (§V-B).
    """

    name: str
    unit: str
    min_value: float
    max_value: float
    resolution: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("sensor name must be non-empty")
        if self.max_value <= self.min_value:
            raise ValueError(
                f"sensor {self.name!r}: max_value ({self.max_value}) must "
                f"exceed min_value ({self.min_value})"
            )
        if self.resolution <= 0:
            raise ValueError(f"sensor {self.name!r}: resolution must be positive")

    @property
    def span(self) -> float:
        """Width of the value range."""
        return self.max_value - self.min_value


class SensorCatalog:
    """An ordered, name-keyed collection of :class:`SensorSpec`."""

    def __init__(self, specs: Iterable[SensorSpec]):
        self._specs: Dict[str, SensorSpec] = {}
        for spec in specs:
            if spec.name in self._specs:
                raise ValueError(f"duplicate sensor name: {spec.name!r}")
            self._specs[spec.name] = spec

    def __getitem__(self, name: str) -> SensorSpec:
        try:
            return self._specs[name]
        except KeyError:
            known = ", ".join(sorted(self._specs))
            raise KeyError(f"unknown sensor {name!r}; known sensors: {known}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self):
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    @property
    def names(self) -> list[str]:
        """Sensor names in catalogue order."""
        return list(self._specs)

    def subset(self, names: Iterable[str]) -> "SensorCatalog":
        """A catalogue restricted to the given names (in the given order)."""
        return SensorCatalog(self[name] for name in names)

    def with_area(self, area_side_m: float) -> "SensorCatalog":
        """Copy with the ``x``/``y`` pseudo-sensor ranges set to the area."""
        specs = []
        for spec in self:
            if spec.name in ("x", "y"):
                specs.append(
                    SensorSpec(
                        spec.name,
                        spec.unit,
                        0.0,
                        float(area_side_m),
                        spec.resolution,
                    )
                )
            else:
                specs.append(spec)
        return SensorCatalog(specs)


#: Paper-style sensor suite.  The ranges are *generous* (several standard
#: deviations beyond what the synthetic fields produce): §V-B notes that "a
#: moderate overestimation is not critical" because domains grow in powers
#: of two anyway, whereas a too-narrow range forces clamping — and a clamped
#: value lands in a boundary cell whose conservative bounds are unbounded
#: (see :mod:`repro.codec.quantize`), costing false positives.  The x/y
#: ranges are placeholders replaced per deployment via :meth:`with_area`.
STANDARD_SENSORS: Mapping[str, SensorSpec] = {
    spec.name: spec
    for spec in (
        SensorSpec("temp", "degC", -10.0, 54.0, constants.PAPER_TEMPERATURE_RESOLUTION),
        SensorSpec("hum", "%RH", 0.0, 128.0, 0.5),
        SensorSpec("pres", "hPa", 950.0, 1078.0, 0.5),
        SensorSpec("light", "lux", -1000.0, 2000.0, 4.0),
        SensorSpec("x", "m", 0.0, constants.PAPER_AREA_SIDE_M, constants.PAPER_COORDINATE_RESOLUTION_M),
        SensorSpec("y", "m", 0.0, constants.PAPER_AREA_SIDE_M, constants.PAPER_COORDINATE_RESOLUTION_M),
    )
}


def standard_catalog(area_side_m: float | None = None) -> SensorCatalog:
    """The default catalogue, optionally fitted to a deployment area."""
    catalog = SensorCatalog(STANDARD_SENSORS.values())
    if area_side_m is not None:
        catalog = catalog.with_area(area_side_m)
    return catalog
