"""Synthetic physical fields with controllable spatial correlation.

The paper evaluates on "a fixed distribution of the physical quantities,
emulating real sensor data" (§VI) and motivates the quadtree representation
with the spatial autocorrelation of real deployments (§V-A, Fig. 4: readings
from nearby nodes are similar).  We do not have the Intel Lab data here, so
this module generates fields with exactly that property from scratch:

:class:`GaussianProcessField`
    A stationary Gaussian process with squared-exponential covariance,
    realised through random Fourier features (Rahimi & Recht 2007): smooth,
    spatially correlated, O(K) per evaluation, deterministic per seed.  The
    ``length_scale`` knob dials the correlation radius — large values give
    the plateau-like structure of Fig. 4, small values approach noise.
:class:`GradientField`
    A linear ramp plus GP residue — e.g. temperature falling with latitude.
:class:`PatchyField`
    Piecewise-constant plateaus around random centres, softened by a GP —
    mimics micro-climates (sun/shade patches).
:class:`UncorrelatedField`
    I.i.d. noise; the adversarial case for the quadtree encoding.
:class:`ConstantField`
    Degenerate but useful in tests.

All fields implement the tiny :class:`Field` protocol: ``value(x, y, t)``
for one point and ``sample(xs, ys, t)`` vectorised.  The time argument
enables continuous queries (``SAMPLE PERIOD``): fields drift smoothly via a
temporal phase in the Fourier features.
"""

from __future__ import annotations

import math
from typing import Protocol, Sequence

import numpy as np

__all__ = [
    "Field",
    "GaussianProcessField",
    "GradientField",
    "PatchyField",
    "UncorrelatedField",
    "ConstantField",
]


class Field(Protocol):
    """Anything that yields a scalar reading at a position and time."""

    def value(self, x: float, y: float, t: float = 0.0) -> float:
        """Field value at one point."""
        ...

    def sample(self, xs: np.ndarray, ys: np.ndarray, t: float = 0.0) -> np.ndarray:
        """Field values at many points (vectorised)."""
        ...


class GaussianProcessField:
    """Stationary GP with RBF covariance via random Fourier features.

    ``f(p) = mean + std * sqrt(2/K) * sum_k cos(w_k . p + omega_k t + b_k)``
    with ``w_k ~ N(0, I / length_scale^2)``.  The sum of K cosines converges
    to a GP with unit variance and squared-exponential kernel
    ``exp(-|d|^2 / (2 length_scale^2))`` as K grows; K = 256 is plenty for
    our purposes.

    Parameters
    ----------
    mean, std:
        Output distribution scale.
    length_scale:
        Correlation length in metres.  Readings of nodes much closer than
        this are nearly equal; much farther apart, independent.
    drift_rate:
        Temporal angular velocity (rad/s) of each feature; 0 freezes the
        field (snapshot queries).
    """

    def __init__(
        self,
        mean: float,
        std: float,
        length_scale: float,
        seed: int = 0,
        features: int = 256,
        drift_rate: float = 0.0,
    ):
        if std < 0:
            raise ValueError(f"negative std: {std}")
        if length_scale <= 0:
            raise ValueError(f"length_scale must be positive: {length_scale}")
        if features < 1:
            raise ValueError(f"need at least one feature: {features}")
        self.mean = mean
        self.std = std
        self.length_scale = length_scale
        rng = np.random.default_rng(seed)
        self._w = rng.normal(0.0, 1.0 / length_scale, size=(features, 2))
        self._b = rng.uniform(0.0, 2.0 * math.pi, size=features)
        self._omega = (
            rng.normal(0.0, drift_rate, size=features) if drift_rate > 0 else np.zeros(features)
        )
        self._amplitude = std * math.sqrt(2.0 / features)

    def sample(self, xs: np.ndarray, ys: np.ndarray, t: float = 0.0) -> np.ndarray:
        """Vectorised evaluation at points ``(xs[i], ys[i])``."""
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        phases = (
            np.outer(xs, self._w[:, 0])
            + np.outer(ys, self._w[:, 1])
            + self._b[None, :]
            + t * self._omega[None, :]
        )
        return self.mean + self._amplitude * np.cos(phases).sum(axis=1)

    def value(self, x: float, y: float, t: float = 0.0) -> float:
        """Scalar evaluation at one point."""
        return float(self.sample(np.array([x]), np.array([y]), t)[0])


class GradientField:
    """Linear ramp plus an optional GP residue.

    ``f(x, y) = base + gx*x + gy*y + residue(x, y)``.  With a pure gradient
    the level sets are straight lines, which gives a well-understood
    selectivity structure for calibration tests.
    """

    def __init__(
        self,
        base: float,
        gx: float,
        gy: float,
        noise_std: float = 0.0,
        length_scale: float = 100.0,
        seed: int = 0,
    ):
        self.base = base
        self.gx = gx
        self.gy = gy
        self._residue = (
            GaussianProcessField(0.0, noise_std, length_scale, seed=seed)
            if noise_std > 0
            else None
        )

    def sample(self, xs: np.ndarray, ys: np.ndarray, t: float = 0.0) -> np.ndarray:
        """Vectorised evaluation."""
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        values = self.base + self.gx * xs + self.gy * ys
        if self._residue is not None:
            values = values + self._residue.sample(xs, ys, t)
        return values

    def value(self, x: float, y: float, t: float = 0.0) -> float:
        """Scalar evaluation."""
        return float(self.sample(np.array([x]), np.array([y]), t)[0])


class PatchyField:
    """Plateaus around random centres, softened by a small GP.

    Each of ``patches`` centres carries a level drawn from
    ``N(mean, patch_std)``; a point takes the level of its nearest centre
    (a Voronoi tessellation) plus smooth small-scale variation.  This is the
    structure under which Selective Filter Forwarding shines: whole regions
    share (quantized) values and whole subtrees get pruned.
    """

    def __init__(
        self,
        mean: float,
        patch_std: float,
        area_side: float,
        patches: int = 12,
        smooth_std: float = 0.3,
        smooth_scale: float = 40.0,
        seed: int = 0,
    ):
        if patches < 1:
            raise ValueError(f"need at least one patch: {patches}")
        rng = np.random.default_rng(seed)
        self._centres = rng.uniform(0.0, area_side, size=(patches, 2))
        self._levels = rng.normal(mean, patch_std, size=patches)
        self._smooth = (
            GaussianProcessField(0.0, smooth_std, smooth_scale, seed=seed + 1)
            if smooth_std > 0
            else None
        )

    def sample(self, xs: np.ndarray, ys: np.ndarray, t: float = 0.0) -> np.ndarray:
        """Vectorised evaluation."""
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        points = np.stack([xs, ys], axis=1)
        deltas = points[:, None, :] - self._centres[None, :, :]
        dist2 = np.einsum("ijk,ijk->ij", deltas, deltas)
        values = self._levels[np.argmin(dist2, axis=1)]
        if self._smooth is not None:
            values = values + self._smooth.sample(xs, ys, t)
        return values

    def value(self, x: float, y: float, t: float = 0.0) -> float:
        """Scalar evaluation."""
        return float(self.sample(np.array([x]), np.array([y]), t)[0])


class UncorrelatedField:
    """I.i.d. noise per (position, time) — the spatial-correlation-free case.

    Values are derived from a hash of the position so that repeated
    evaluation at the same point is stable within a snapshot.
    """

    def __init__(self, mean: float, std: float, seed: int = 0):
        self.mean = mean
        self.std = std
        self.seed = seed

    def _draw(self, x: float, y: float, t: float) -> float:
        key = hash((round(x, 6), round(y, 6), round(t, 6), self.seed)) & 0xFFFFFFFF
        rng = np.random.default_rng(key)
        return float(rng.normal(self.mean, self.std))

    def sample(self, xs: np.ndarray, ys: np.ndarray, t: float = 0.0) -> np.ndarray:
        """Vectorised evaluation (per-point independent draws)."""
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        return np.array([self._draw(x, y, t) for x, y in zip(xs, ys)])

    def value(self, x: float, y: float, t: float = 0.0) -> float:
        """Scalar evaluation."""
        return self._draw(x, y, t)


class ConstantField:
    """Every point reads the same value; degenerate case for tests."""

    def __init__(self, value: float):
        self._value = float(value)

    def sample(self, xs: np.ndarray, ys: np.ndarray, t: float = 0.0) -> np.ndarray:
        """Vectorised evaluation."""
        return np.full(len(np.asarray(xs)), self._value)

    def value(self, x: float, y: float, t: float = 0.0) -> float:
        """Scalar evaluation."""
        return self._value


def empirical_correlation(
    field: Field,
    area_side: float,
    distances: Sequence[float],
    pairs_per_distance: int = 400,
    seed: int = 0,
) -> list[float]:
    """Estimate the field's spatial autocorrelation at given distances.

    Used by tests to assert that :class:`GaussianProcessField` really decays
    with distance while :class:`UncorrelatedField` does not correlate at all.
    Returns one Pearson correlation per requested distance.
    """
    rng = np.random.default_rng(seed)
    result = []
    for distance in distances:
        margin = min(distance, area_side / 4)
        origin = rng.uniform(margin, area_side - margin, size=(pairs_per_distance, 2))
        angles = rng.uniform(0, 2 * math.pi, size=pairs_per_distance)
        other = origin + distance * np.stack([np.cos(angles), np.sin(angles)], axis=1)
        other = np.clip(other, 0.0, area_side)
        a = field.sample(origin[:, 0], origin[:, 1])
        b = field.sample(other[:, 0], other[:, 1])
        if np.std(a) == 0 or np.std(b) == 0:
            result.append(1.0)
        else:
            result.append(float(np.corrcoef(a, b)[0, 1]))
    return result
