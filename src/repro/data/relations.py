"""Sensor relations and the world model binding networks to data.

§III: "the network is seen as a (sensor) relation.  For homogeneous networks
there is one relation ... If the network is heterogeneous, groups of nodes
form different relations."

:class:`SensorWorld` owns the physical fields and the relation membership of
each node and produces *snapshots*: it writes the current readings into every
node (``node.readings``).  A join algorithm reads the sensors exactly once
per execution (§IV-D), which here means: the runner takes one snapshot, then
the protocol runs against those frozen values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Mapping, Optional

import numpy as np

from ..sim.network import Network
from ..sim.node import BASE_STATION_ID, SensorNode
from .fields import Field, GaussianProcessField
from .sensors import SensorCatalog, standard_catalog

__all__ = ["SensorWorld", "default_fields", "RELATION_SENSORS"]

#: Name of the single relation in a homogeneous network.
RELATION_SENSORS = "sensors"


def default_fields(
    area_side_m: float,
    seed: int = 0,
    length_scale: float = 150.0,
    drift_rate: float = 0.0,
) -> Dict[str, Field]:
    """Spatially correlated fields for the standard sensor suite.

    The means/stds roughly match the catalogue ranges; the shared
    ``length_scale`` gives Fig. 4 style regional structure.  Humidity is
    anti-correlated with temperature (built from the negated temperature
    features plus its own variation), as in real deployments.
    """
    temp = GaussianProcessField(22.0, 4.0, length_scale, seed=seed, drift_rate=drift_rate)
    hum_own = GaussianProcessField(55.0, 8.0, length_scale, seed=seed + 1, drift_rate=drift_rate)
    pres = GaussianProcessField(1010.0, 6.0, length_scale * 2, seed=seed + 2, drift_rate=drift_rate)
    light = GaussianProcessField(500.0, 180.0, length_scale / 2, seed=seed + 3, drift_rate=drift_rate)

    class _AntiCorrelated:
        """Humidity = own variation minus a temperature-coupled term."""

        def sample(self, xs: np.ndarray, ys: np.ndarray, t: float = 0.0) -> np.ndarray:
            return hum_own.sample(xs, ys, t) - 1.2 * (temp.sample(xs, ys, t) - temp.mean)

        def value(self, x: float, y: float, t: float = 0.0) -> float:
            return float(self.sample(np.array([x]), np.array([y]), t)[0])

    return {"temp": temp, "hum": _AntiCorrelated(), "pres": pres, "light": light}


class SensorWorld:
    """Physical environment + relation membership for one deployment.

    Parameters
    ----------
    network:
        The deployed network; snapshots write into its nodes.
    fields:
        Mapping from sensor name to :class:`~repro.data.fields.Field`.
        The position pseudo-sensors ``x``/``y`` need no field — they come
        from the node positions.
    catalog:
        Sensor catalogue (quantizer parameters).  Defaults to the standard
        suite fitted to the deployment area inferred from node positions.
    relations:
        Mapping from relation name to the set of member node ids.  Defaults
        to the homogeneous case: every sensor node belongs to
        ``RELATION_SENSORS``.
    """

    def __init__(
        self,
        network: Network,
        fields: Mapping[str, Field],
        catalog: Optional[SensorCatalog] = None,
        relations: Optional[Mapping[str, Iterable[int]]] = None,
    ):
        self.network = network
        self.fields = dict(fields)
        if catalog is None:
            side = max(
                max((node.x for node in network.nodes.values()), default=0.0),
                max((node.y for node in network.nodes.values()), default=0.0),
            )
            catalog = standard_catalog(area_side_m=max(side, 1.0))
        self.catalog = catalog
        if relations is None:
            relations = {RELATION_SENSORS: network.sensor_node_ids}
        self.relations: Dict[str, frozenset[int]] = {
            name: frozenset(ids) for name, ids in relations.items()
        }
        self._apply_memberships()
        self.snapshot_time: Optional[float] = None

    def _apply_memberships(self) -> None:
        membership: Dict[int, set[str]] = {node_id: set() for node_id in self.network.nodes}
        for relation, ids in self.relations.items():
            for node_id in ids:
                if node_id == BASE_STATION_ID:
                    raise ValueError("the base station cannot belong to a sensor relation")
                if node_id not in self.network.nodes:
                    raise ValueError(f"relation {relation!r} lists unknown node {node_id}")
                membership[node_id].add(relation)
        for node_id, names in membership.items():
            self.network.nodes[node_id].relations = frozenset(names)

    # -- relation queries -------------------------------------------------------

    def members(self, relation: str) -> frozenset[int]:
        """Node ids belonging to ``relation``."""
        try:
            return self.relations[relation]
        except KeyError:
            known = ", ".join(sorted(self.relations))
            raise KeyError(f"unknown relation {relation!r}; known: {known}") from None

    @property
    def relation_names(self) -> list[str]:
        """All relation names, sorted."""
        return sorted(self.relations)

    # -- snapshots -------------------------------------------------------------

    def take_snapshot(self, t: float = 0.0) -> None:
        """Sample every field at every node position and store the readings.

        This models the single sensor acquisition per query execution
        (§IV-D: "As any other join algorithm, SENS-Join reads the sensors
        exactly once").
        """
        sensor_ids = self.network.sensor_node_ids
        xs = np.array([self.network.nodes[i].x for i in sensor_ids])
        ys = np.array([self.network.nodes[i].y for i in sensor_ids])
        samples = {
            name: field.sample(xs, ys, t) for name, field in self.fields.items()
        }
        for index, node_id in enumerate(sensor_ids):
            node = self.network.nodes[node_id]
            readings: Dict[str, float] = {"x": node.x, "y": node.y}
            for name, values in samples.items():
                readings[name] = float(values[index])
            node.readings = readings
        self.snapshot_time = t

    def reading_matrix(self, sensor: str) -> np.ndarray:
        """(node_id, value) pairs of the current snapshot for one sensor."""
        if self.snapshot_time is None:
            raise RuntimeError("no snapshot taken yet; call take_snapshot() first")
        rows = [
            (node_id, self.network.nodes[node_id].readings[sensor])
            for node_id in self.network.sensor_node_ids
        ]
        return np.array(rows)

    # -- convenience constructors ----------------------------------------------

    @classmethod
    def homogeneous(
        cls,
        network: Network,
        seed: int = 0,
        length_scale: float = 150.0,
        drift_rate: float = 0.0,
        area_side_m: Optional[float] = None,
    ) -> "SensorWorld":
        """Standard world: default fields, one relation with every node."""
        side = area_side_m
        if side is None:
            side = max(
                max((node.x for node in network.nodes.values()), default=1.0),
                max((node.y for node in network.nodes.values()), default=1.0),
            )
        return cls(
            network,
            default_fields(side, seed=seed, length_scale=length_scale, drift_rate=drift_rate),
            catalog=standard_catalog(area_side_m=side),
        )

    @classmethod
    def two_relations(
        cls,
        network: Network,
        split: Callable[[SensorNode], str] | float = 0.5,
        names: tuple[str, str] = ("rel_a", "rel_b"),
        seed: int = 0,
        length_scale: float = 150.0,
        area_side_m: Optional[float] = None,
    ) -> "SensorWorld":
        """Heterogeneous world: nodes split between two relations.

        ``split`` is either a function mapping a node to one of the two
        names, or a float giving the fraction assigned (pseudo-randomly but
        deterministically) to the first relation.
        """
        side = area_side_m
        if side is None:
            side = max(
                max((node.x for node in network.nodes.values()), default=1.0),
                max((node.y for node in network.nodes.values()), default=1.0),
            )
        members_a, members_b = [], []
        rng = np.random.default_rng(seed)
        for node_id in network.sensor_node_ids:
            node = network.nodes[node_id]
            if callable(split):
                target = split(node)
                if target not in names:
                    raise ValueError(f"split() returned unknown relation {target!r}")
            else:
                target = names[0] if rng.random() < split else names[1]
            (members_a if target == names[0] else members_b).append(node_id)
        return cls(
            network,
            default_fields(side, seed=seed, length_scale=length_scale),
            catalog=standard_catalog(area_side_m=side),
            relations={names[0]: members_a, names[1]: members_b},
        )
