"""Synthetic Intel-Lab-style deployment trace.

§V-A motivates the compact representation with "temperature measurements and
their locations, taken from a real-world deployment [22]" — the Intel
Berkeley Research Lab dataset (54 motes in a ~40 m x 30 m office floor).
That dataset is not available offline, so this module generates a synthetic
stand-in with the same shape: 54 motes in a 40 x 30 area, temperature and
humidity traces sampled every 31 seconds with strong spatial correlation and
a daily cycle.  The examples use it to visualise exactly the Fig. 4 effect:
nearby motes report similar temperatures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from .fields import GaussianProcessField

__all__ = ["LabMote", "LabReading", "generate_lab_deployment", "generate_lab_trace"]

#: Intel-lab shape: 54 motes, 40 m x 30 m, ~31 s epoch.
LAB_MOTE_COUNT = 54
LAB_WIDTH_M = 40.0
LAB_HEIGHT_M = 30.0
LAB_EPOCH_S = 31.0


@dataclass(frozen=True)
class LabMote:
    """One mote of the synthetic lab deployment."""

    mote_id: int
    x: float
    y: float


@dataclass(frozen=True)
class LabReading:
    """One (epoch, mote) measurement row, mirroring the public dataset."""

    epoch: int
    mote_id: int
    temperature: float
    humidity: float


def generate_lab_deployment(seed: int = 0) -> List[LabMote]:
    """54 mote positions along the walls and aisles of a lab-shaped floor.

    The real deployment lines the motes along the office perimeter and a few
    interior rows; we approximate that with a perimeter ring plus interior
    grid rows, jittered slightly.
    """
    rng = np.random.default_rng(seed)
    positions: list[tuple[float, float]] = []
    # Perimeter ring: 30 motes.
    ring = 30
    for i in range(ring):
        fraction = i / ring
        perimeter = 2 * (LAB_WIDTH_M + LAB_HEIGHT_M)
        distance = fraction * perimeter
        if distance < LAB_WIDTH_M:
            x, y = distance, 1.0
        elif distance < LAB_WIDTH_M + LAB_HEIGHT_M:
            x, y = LAB_WIDTH_M - 1.0, distance - LAB_WIDTH_M
        elif distance < 2 * LAB_WIDTH_M + LAB_HEIGHT_M:
            x, y = 2 * LAB_WIDTH_M + LAB_HEIGHT_M - distance, LAB_HEIGHT_M - 1.0
        else:
            x, y = 1.0, 2 * (LAB_WIDTH_M + LAB_HEIGHT_M) - distance
        positions.append((x, y))
    # Interior rows: the rest.
    remaining = LAB_MOTE_COUNT - ring
    cols = math.ceil(remaining / 3)
    for i in range(remaining):
        row, col = divmod(i, cols)
        x = (col + 1) * LAB_WIDTH_M / (cols + 1)
        y = (row + 1) * LAB_HEIGHT_M / 4
        positions.append((x, y))
    motes = []
    for mote_id, (x, y) in enumerate(positions, start=1):
        jx, jy = rng.uniform(-0.5, 0.5, size=2)
        motes.append(
            LabMote(
                mote_id,
                float(np.clip(x + jx, 0.0, LAB_WIDTH_M)),
                float(np.clip(y + jy, 0.0, LAB_HEIGHT_M)),
            )
        )
    return motes


def generate_lab_trace(
    motes: List[LabMote],
    epochs: int = 100,
    seed: int = 0,
) -> Iterator[LabReading]:
    """Yield temperature/humidity readings per epoch for every mote.

    Temperature = daily sine cycle + spatially correlated offset field +
    small per-reading noise; humidity anti-correlates with temperature, as
    in the real data.
    """
    temp_field = GaussianProcessField(0.0, 1.5, length_scale=12.0, seed=seed)
    hum_field = GaussianProcessField(0.0, 3.0, length_scale=12.0, seed=seed + 1)
    rng = np.random.default_rng(seed + 2)
    xs = np.array([m.x for m in motes])
    ys = np.array([m.y for m in motes])
    temp_offsets = temp_field.sample(xs, ys)
    hum_offsets = hum_field.sample(xs, ys)
    for epoch in range(epochs):
        t = epoch * LAB_EPOCH_S
        daily = 21.0 + 3.0 * math.sin(2 * math.pi * t / 86400.0)
        for index, mote in enumerate(motes):
            temperature = daily + temp_offsets[index] + rng.normal(0.0, 0.05)
            humidity = 45.0 - 1.5 * (temperature - 21.0) + hum_offsets[index] + rng.normal(0.0, 0.1)
            yield LabReading(epoch, mote.mote_id, float(temperature), float(humidity))
