"""SENS-Join as actual message-passing processes on the DES kernel.

The production implementation (:class:`repro.joins.sensjoin.SensJoin`) runs
the protocol as synchronous tree traversals — exact and fast, but the
schedule is implicit.  This module is an *independent second implementation*
in the event-driven style of the paper's Fig. 1: every node is a kernel
process that sleeps between phases, waits for its children's messages,
applies the Fig. 2/3 logic, and sends.  Nothing here shares protocol code
with the fast path (only the codec, the quantizer and the filter builder are
reused — they define the wire format, not the protocol).

Purpose: equivalence testing.  ``tests/test_joins_des.py`` asserts that for
the paper's default configuration the DES engine produces *identical*
per-phase transmission counts, per-node loads, and join results as the fast
path — a strong check that the synchronous traversals faithfully implement
the distributed protocol.  (The DES engine supports the paper's defaults
only: quadtree representation; Treecut and Selective Filter Forwarding on.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from .. import constants
from ..codec.quadtree import FlaggedPoint
from ..codec.setops import intersect_points, union_points
from ..query.evaluate import Row, evaluate_join
from ..sim.kernel import Environment, Event
from ..sim.node import BASE_STATION_ID
from .base import (
    ExecutionContext,
    FullTupleRecord,
    JoinAlgorithm,
    JoinOutcome,
    node_tuple,
)
from .filterbuild import build_join_filter
from .sensjoin import PHASE_COLLECTION, PHASE_FILTER, PHASE_FINAL

__all__ = ["DesSensJoin"]


@dataclass
class _Mailbox:
    """Per-node inbox for one protocol phase."""

    #: Complete tuples (Treecut payloads) received from children.
    full_tuples: List[FullTupleRecord] = field(default_factory=list)
    full_bytes: int = 0
    joinatt_children: int = 0
    points: FrozenSet[FlaggedPoint] = frozenset()
    #: Pruned filter received from the parent (phase 1b).
    filter_points: Optional[FrozenSet[FlaggedPoint]] = None
    #: Final-phase tuples and bytes from children.
    final_tuples: List[FullTupleRecord] = field(default_factory=list)
    final_bytes: int = 0


class DesSensJoin(JoinAlgorithm):
    """Event-driven reference implementation (paper defaults only)."""

    name = "sens-join[des]"

    def execute(self, context: ExecutionContext) -> JoinOutcome:
        """Run the protocol as kernel processes; see the module docstring."""
        network, tree = context.network, context.tree
        fmt = context.tuple_format()
        channel = network.channel
        env = Environment()

        mailboxes: Dict[int, _Mailbox] = {n: _Mailbox() for n in tree.node_ids}
        # Events: fired when a node has finished a phase.
        done_1a: Dict[int, Event] = {n: env.event() for n in tree.node_ids}
        filter_ready: Dict[int, Event] = {n: env.event() for n in tree.node_ids}
        done_final: Dict[int, Event] = {n: env.event() for n in tree.node_ids}
        exited: Dict[int, bool] = {n: False for n in tree.node_ids}
        subtree_atts: Dict[int, Optional[FrozenSet[FlaggedPoint]]] = {}
        proxy_records: Dict[int, List[FullTupleRecord]] = {}
        own_record: Dict[int, Optional[FullTupleRecord]] = {}
        own_point: Dict[int, Optional[FlaggedPoint]] = {}
        details: Dict[str, float] = {}

        def sensor_process(node_id: int):
            mailbox = mailboxes[node_id]
            children = tree.children(node_id)
            # ---- phase 1a: wait for every child, then act (Fig. 2) ----
            if children:
                yield env.all_of([done_1a[child] for child in children])
            record, flags = node_tuple(fmt, node_id)
            own_record[node_id] = record
            own_point[node_id] = (
                (flags, fmt.quantizer.encode(
                    {k: record.values[k] for k in fmt.join_attributes}
                ))
                if record is not None
                else None
            )
            own_bytes = fmt.full_tuple_bytes if record is not None else 0
            parent = tree.parent(node_id)
            all_full = mailbox.joinatt_children == 0
            total_full = mailbox.full_bytes + own_bytes
            if all_full and total_full <= constants.DEFAULT_TREECUT_DMAX_BYTES:
                # Treecut: hand over complete tuples and exit the query.
                records = list(mailbox.full_tuples)
                if record is not None:
                    records.append(record)
                payload = fmt.full_tuples_bytes(len(records))
                yield env.timeout(channel.latency_for(payload))
                channel.unicast(node_id, parent, payload, PHASE_COLLECTION)
                target = mailboxes[parent]
                target.full_tuples.extend(records)
                target.full_bytes += payload
                exited[node_id] = True
                done_1a[node_id].succeed()
                return
            # Proxy + SubtreeJoinAtts bookkeeping (Fig. 2 lines 20-21).
            proxy_records[node_id] = list(mailbox.full_tuples)
            stored = mailbox.points
            if stored and fmt.encoded_points_bytes(stored) > (
                constants.DEFAULT_SUBTREE_FILTER_LIMIT_BYTES
            ):
                subtree_atts[node_id] = None
            else:
                subtree_atts[node_id] = stored
            points = mailbox.points
            for proxied in proxy_records[node_id]:
                join_values = {k: proxied.values[k] for k in fmt.join_attributes}
                points = union_points(
                    points, [(proxied.flags, fmt.quantizer.encode(join_values))]
                )
            if own_point[node_id] is not None:
                points = union_points(points, [own_point[node_id]])
            payload = fmt.encoded_points_bytes(points)
            yield env.timeout(channel.latency_for(payload))
            channel.unicast(node_id, parent, payload, PHASE_COLLECTION)
            target = mailboxes[parent]
            target.points = union_points(target.points, points)
            target.joinatt_children += 1
            done_1a[node_id].succeed()

            # ---- phase 1b: receive the filter, prune, broadcast (Fig. 3) ----
            yield filter_ready[node_id]
            incoming = mailbox.filter_points or frozenset()
            awake = [child for child in children if not exited[child]]
            if incoming and awake:
                stored = subtree_atts[node_id]
                pruned = intersect_points(incoming, stored) if stored is not None else incoming
                if pruned:
                    payload = fmt.encoded_points_bytes(pruned)
                    yield env.timeout(channel.latency_for(payload))
                    channel.broadcast(node_id, awake, payload, PHASE_FILTER)
                    for child in awake:
                        mailboxes[child].filter_points = pruned
            for child in awake:
                filter_ready[child].succeed()

            # ---- phase 2: collect matching complete tuples ----
            if awake:
                yield env.all_of([done_final[child] for child in awake])
            payload = mailbox.final_bytes
            records_out = list(mailbox.final_tuples)
            filter_flags: Dict[int, int] = {}
            for fl, z in (mailbox.filter_points or frozenset()):
                filter_flags[z] = filter_flags.get(z, 0) | fl
            matched: List[FullTupleRecord] = []
            if record is not None and own_point[node_id] is not None:
                fl, z = own_point[node_id]
                if filter_flags.get(z, 0) & fl:
                    matched.append(record)
            for proxied in proxy_records[node_id]:
                join_values = {k: proxied.values[k] for k in fmt.join_attributes}
                z = fmt.quantizer.encode(join_values)
                if filter_flags.get(z, 0) & proxied.flags:
                    matched.append(proxied)
            records_out.extend(matched)
            payload += fmt.full_tuples_bytes(len(matched))
            yield env.timeout(channel.latency_for(payload))
            channel.unicast(node_id, parent, payload, PHASE_FINAL)
            target = mailboxes[parent]
            target.final_tuples.extend(records_out)
            target.final_bytes += payload
            done_final[node_id].succeed()

        def base_station_process():
            mailbox = mailboxes[BASE_STATION_ID]
            children = tree.children(BASE_STATION_ID)
            if children:
                yield env.all_of([done_1a[child] for child in children])
            points = mailbox.points
            for proxied in mailbox.full_tuples:
                join_values = {k: proxied.values[k] for k in fmt.join_attributes}
                points = union_points(
                    points, [(proxied.flags, fmt.quantizer.encode(join_values))]
                )
            join_filter = build_join_filter(fmt, points)
            details["filter_points"] = float(len(join_filter))
            awake = [child for child in children if not exited[child]]
            subtree = mailbox.points
            pruned = intersect_points(join_filter, subtree)
            if pruned and awake:
                payload = fmt.encoded_points_bytes(pruned)
                yield env.timeout(channel.latency_for(payload))
                channel.broadcast(BASE_STATION_ID, awake, payload, PHASE_FILTER)
                for child in awake:
                    mailboxes[child].filter_points = pruned
            for child in awake:
                filter_ready[child].succeed()
            if awake:
                yield env.all_of([done_final[child] for child in awake])
            done_final[BASE_STATION_ID].succeed()

        for node_id in tree.node_ids:
            if node_id == BASE_STATION_ID:
                env.process(base_station_process())
            else:
                env.process(sensor_process(node_id))
        env.run(until=done_final[BASE_STATION_ID])

        mailbox = mailboxes[BASE_STATION_ID]
        arrived = list(mailbox.final_tuples) + list(mailbox.full_tuples)
        tuples_by_alias: Dict[str, List[Row]] = {alias: [] for alias in fmt.aliases}
        for record in arrived:
            for alias in fmt.aliases_of_flags(record.flags):
                tuples_by_alias[alias].append(Row(record.node_id, dict(record.values)))
        result = evaluate_join(context.query, tuples_by_alias, apply_selections=False)

        return JoinOutcome(
            algorithm=self.name,
            result=result,
            stats=network.stats,
            response_time_s=(
                3 * tree.height * constants.DEFAULT_LEVEL_SLOT_S + env.now
            ),
            details=details,
        )
