"""SENS-Join as actual message-passing processes on the DES kernel.

The production implementation (:class:`repro.joins.sensjoin.SensJoin`) runs
the protocol as synchronous tree traversals — exact and fast, but the
schedule is implicit.  This module is an *independent second implementation*
in the event-driven style of the paper's Fig. 1: every node is a kernel
process that sleeps between phases, waits for its children's messages,
applies the Fig. 2/3 logic, and sends.  Nothing here shares protocol code
with the fast path (only the codec, the quantizer and the filter builder are
reused — they define the wire format, not the protocol).

Purpose: equivalence testing.  ``tests/test_joins_des.py`` asserts that for
the paper's default configuration the DES engine produces *identical*
per-phase transmission counts, per-node loads, and join results as the fast
path — a strong check that the synchronous traversals faithfully implement
the distributed protocol.  (The DES engine supports the paper's defaults
only: quadtree representation; Treecut and Selective Filter Forwarding on.)

Fault injection and recovery (§IV-F)
------------------------------------
Constructed with a :class:`~repro.sim.faults.FaultPlan`, the engine
additionally exercises the paper's error-tolerance loop *in-flight*: a
:class:`~repro.sim.faults.FaultInjector` applies node crashes, link drops
and loss bursts at simulated times on the shared kernel.  A send over a
dead link spends its ARQ budget and delivers nothing, so the message never
arrives, the waiting ancestors starve, and the protocol stalls.  The base
station detects the stall (the simulation goes quiet, backstopped by a
per-phase wall-clock budget), emits a ``phase-timeout`` trace event,
interrupts the surviving processes, lets CTP repair the tree
(``tree-repair``), waits out a backoff, and re-executes the query on the
same kernel timeline — so every aborted attempt's partially spent
transmissions and energy stay charged to the ledgers.  After
``max_retries`` failed repairs the :class:`RecoveryPolicy` either raises
:class:`~repro.errors.ExecutionAborted` or returns the partial result
flagged with ``details["partial"]`` (graceful degradation).

Completeness is reported against the lossless oracle computed centrally
before the first fault: ``details["recall"]``, the delivered base-station
subtrees, and full tuples lost because their Treecut proxy died.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional

from .. import constants
from ..codec.quadtree import FlaggedPoint
from ..codec.setops import intersect_points, union_points
from ..errors import ExecutionAborted
from ..obs.telemetry import NULL_TELEMETRY, Telemetry
from ..obs.timeseries import MetricsSampler
from ..query.evaluate import JoinResult, Row, evaluate_join
from ..routing.ctp import reattach_tree, repair_tree
from ..routing.tree import RoutingTree
from ..sim.faults import FaultInjector, FaultPlan
from ..sim.kernel import Environment, Event, Process
from ..sim.network import Network
from ..sim.node import BASE_STATION_ID
from ..sim.trace import PHASE_TIMEOUT, TREE_REPAIR, NullTracer, Tracer
from .base import (
    ExecutionContext,
    FullTupleRecord,
    JoinAlgorithm,
    JoinOutcome,
    TupleFormat,
    node_tuple,
    oracle_result,
)
from .filterbuild import build_join_filter
from .sensjoin import PHASE_COLLECTION, PHASE_FILTER, PHASE_FINAL

__all__ = ["DesSensJoin", "RecoveryPolicy"]


@dataclass(frozen=True)
class RecoveryPolicy:
    """Timeout/retry semantics of the §IV-F recovery loop.

    ``phase_timeout_s`` is the base station's per-phase wall-clock budget
    (the watchdog backstop; the primary stall signal is the simulation
    going quiet).  ``None`` derives a generous budget from the tree size.
    After an abort the re-execution starts ``backoff_s`` later, doubling
    per retry by ``backoff_factor`` — CTP needs time to re-converge, and
    immediate retries under a loss burst would just burn energy.

    ``on_exhaustion`` decides what happens once ``max_retries`` repairs
    were not enough: ``"raise"`` aborts with
    :class:`~repro.errors.ExecutionAborted`; ``"partial"`` (the default)
    returns whatever reached the base station, flagged with
    ``details["partial"] = 1.0`` — graceful degradation as a policy.

    ``repair`` selects how the tree heals between attempts:
    ``"rebuild"`` (default, the historical behaviour) re-converges globally
    via :func:`~repro.routing.ctp.repair_tree`; ``"reattach"`` heals
    incrementally via :func:`~repro.routing.ctp.reattach_tree` — detached
    subtrees graft onto the nearest live parent through a localized beacon
    exchange whose cost lands in the energy ledger, and nodes that rejoined
    mid-attempt are adopted into the tree instead of being ignored.
    """

    max_retries: int = 3
    phase_timeout_s: Optional[float] = None
    backoff_s: float = 0.5
    backoff_factor: float = 2.0
    on_exhaustion: str = "partial"
    repair: str = "rebuild"

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"negative retry bound: {self.max_retries}")
        if self.phase_timeout_s is not None and self.phase_timeout_s <= 0:
            raise ValueError(
                f"phase_timeout_s must be positive, got {self.phase_timeout_s}"
            )
        if self.backoff_s < 0:
            raise ValueError(f"negative backoff: {self.backoff_s}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff factor must be >= 1, got {self.backoff_factor}"
            )
        if self.on_exhaustion not in ("partial", "raise"):
            raise ValueError(
                f"on_exhaustion must be 'partial' or 'raise', "
                f"got {self.on_exhaustion!r}"
            )
        if self.repair not in ("rebuild", "reattach"):
            raise ValueError(
                f"repair must be 'rebuild' or 'reattach', got {self.repair!r}"
            )


@dataclass
class _Mailbox:
    """Per-node inbox for one protocol phase."""

    #: Complete tuples (Treecut payloads) received from children.
    full_tuples: List[FullTupleRecord] = field(default_factory=list)
    full_bytes: int = 0
    joinatt_children: int = 0
    points: FrozenSet[FlaggedPoint] = frozenset()
    #: Pruned filter received from the parent (phase 1b).
    filter_points: Optional[FrozenSet[FlaggedPoint]] = None
    #: Final-phase tuples and bytes from children.
    final_tuples: List[FullTupleRecord] = field(default_factory=list)
    final_bytes: int = 0


@dataclass
class _AttemptState:
    """Everything one protocol execution attempt allocates on the kernel."""

    mailboxes: Dict[int, _Mailbox]
    done_1a: Dict[int, Event]
    filter_ready: Dict[int, Event]
    done_final: Dict[int, Event]
    exited: Dict[int, bool]
    proxy_records: Dict[int, List[FullTupleRecord]]
    procs: Dict[int, Process]
    details: Dict[str, float]


class DesSensJoin(JoinAlgorithm):
    """Event-driven reference implementation (paper defaults only).

    Without a ``fault_plan`` (or with an empty one) the engine runs the
    plain protocol and is byte-for-byte equivalent to previous behaviour.
    With a plan it runs the full §IV-F loop described in the module
    docstring; ``recovery`` tunes the timeout/retry semantics and
    ``repair_seed`` the tie-breaking of repaired trees.
    """

    name = "sens-join[des]"

    def __init__(
        self,
        fault_plan: Optional[FaultPlan] = None,
        recovery: Optional[RecoveryPolicy] = None,
        tracer: Optional[Tracer] = None,
        repair_seed: int = 0,
        telemetry: Optional[Telemetry] = None,
        filter_override: Optional[
            Callable[[TupleFormat, FrozenSet[FlaggedPoint]], FrozenSet[FlaggedPoint]]
        ] = None,
        sampler: Optional[MetricsSampler] = None,
    ):
        self.fault_plan = fault_plan
        self.recovery = recovery
        #: Optional time-series sampler; attached to the kernel as a periodic
        #: process at :meth:`execute` so registered probes snapshot gauges
        #: every ``period_s`` of *simulated* time (docs/observability.md).
        self.sampler = sampler
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        if tracer is not None:
            self.tracer = tracer
        elif telemetry is not None:
            self.tracer = telemetry.tracer
        else:
            self.tracer = None
        self.repair_seed = repair_seed
        #: Same work-sharing hook as :class:`~repro.joins.sensjoin.SensJoin`:
        #: replaces the base station's ``build_join_filter`` call; must
        #: return a superset of the single-query filter (conservative
        #: semantics keep the exact final join correct under supersets).
        self.filter_override = filter_override

    def _build_filter(
        self, fmt: TupleFormat, points: FrozenSet[FlaggedPoint]
    ) -> FrozenSet[FlaggedPoint]:
        if self.filter_override is not None:
            return self.filter_override(fmt, points)
        return build_join_filter(fmt, points)

    def instrument(self, telemetry: Telemetry) -> None:
        """Attach a live telemetry (spans under the kernel clock)."""
        self.telemetry = telemetry
        self.tracer = telemetry.tracer

    def execute(self, context: ExecutionContext) -> JoinOutcome:
        """Run the protocol as kernel processes; see the module docstring."""
        network, tree = context.network, context.tree
        fmt = context.tuple_format()
        env = Environment()
        if self.sampler is not None:
            # A perpetual periodic process: every env.run below is bounded
            # (until=...), so the ticker samples while the protocol runs and
            # simply stops being scheduled once the run target fires.
            self.sampler.attach(env)
        if self.fault_plan is None or not self.fault_plan:
            tel = self.telemetry.with_clock(lambda: env.now)
            state = self._spawn_attempt(env, network, tree, fmt)
            if tel.enabled:
                # Drive the run in two stages so the collection/downstream
                # boundary lands on a span edge; the kernel's event order is
                # deterministic, so staging does not change the execution.
                children = tree.children(BASE_STATION_ID)
                with tel.span(
                    PHASE_COLLECTION, node_id=BASE_STATION_ID, protocol=self.name
                ):
                    env.run(until=env.all_of([state.done_1a[c] for c in children]))
                with tel.span(
                    "filter-and-final", node_id=BASE_STATION_ID, protocol=self.name
                ):
                    env.run(until=state.done_final[BASE_STATION_ID])
            else:
                env.run(until=state.done_final[BASE_STATION_ID])
            if self.sampler is not None:
                self.sampler.flush(env.now)
            return JoinOutcome(
                algorithm=self.name,
                result=self._evaluate(context, fmt, state),
                stats=network.stats,
                response_time_s=(
                    3 * tree.height * constants.DEFAULT_LEVEL_SLOT_S + env.now
                ),
                details=dict(state.details),
            )
        return self._execute_with_faults(context, env, fmt)

    # -- §IV-F recovery loop -------------------------------------------------

    def _execute_with_faults(
        self, context: ExecutionContext, env: Environment, fmt: TupleFormat
    ) -> JoinOutcome:
        network, tree = context.network, context.tree
        channel = network.channel
        tracer = self.tracer if self.tracer is not None else NullTracer()
        tel = self.telemetry.with_clock(lambda: env.now)
        reg = tel.registry
        policy = self.recovery or RecoveryPolicy()

        # The completeness reference, taken before the first fault strikes.
        oracle = oracle_result(context)

        # The injector outlives attempts; it must always interrupt the
        # *current* attempt's process for a crashed node.
        live: Dict[str, _AttemptState] = {}

        def kill_process(node_id: int) -> None:
            state = live.get("state")
            if state is None:
                return
            proc = state.procs.get(node_id)
            if proc is not None and proc.is_alive:
                proc.interrupt("node-crash")

        injector = FaultInjector(
            env, network, self.fault_plan, tracer=tracer,
            on_node_crash=kill_process, telemetry=tel,
        )
        injector.start()

        aborted_attempts = 0
        aborted_tx = 0
        aborted_energy = 0.0
        repairs = 0
        repair_beacons = 0
        orphaned = 0
        tx_mark = network.stats.total_tx_packets()
        energy_mark = network.total_energy()
        backoff = policy.backoff_s
        completed = False
        state: Optional[_AttemptState] = None

        saved_tracer = channel.tracer
        saved_telemetry = channel.telemetry
        channel.tracer = tracer
        channel.telemetry = tel
        try:
            for attempt in range(policy.max_retries + 1):
                if reg.enabled:
                    reg.counter("recovery_attempts_total", protocol=self.name).inc()
                with tel.span(
                    "recovery-attempt", node_id=BASE_STATION_ID,
                    protocol=self.name, attempt=attempt,
                ) as attempt_span:
                    state = self._spawn_attempt(env, network, tree, fmt)
                    live["state"] = state
                    completed = self._monitor_attempt(
                        env, network, tree, state, policy, tracer, attempt, tel
                    )
                    attempt_span.labels["completed"] = completed
                if completed:
                    break
                self._abort_attempt(env, state)
                aborted_attempts += 1
                now_tx = network.stats.total_tx_packets()
                now_energy = network.total_energy()
                aborted_tx += now_tx - tx_mark
                aborted_energy += now_energy - energy_mark
                tx_mark, energy_mark = now_tx, now_energy
                if attempt == policy.max_retries:
                    break
                with tel.span(
                    "tree-repair-and-backoff", node_id=BASE_STATION_ID,
                    protocol=self.name, attempt=attempt,
                ):
                    if policy.repair == "reattach":
                        # Incremental self-healing: graft detached subtrees
                        # (and any nodes that rejoined mid-attempt) onto the
                        # nearest live parent; the beacon exchange is charged
                        # to the ledger under the tree-maintenance phase.
                        heal = reattach_tree(
                            network, tree, seed=self.repair_seed,
                            tracer=tracer, time_s=env.now,
                        )
                        tree = heal.tree
                        repairs += 1
                        repair_beacons += heal.beacons
                        orphaned = len(heal.orphaned)
                    else:
                        report = repair_tree(network, tree, seed=self.repair_seed)
                        tree = report.tree
                        repairs += 1
                        orphaned = len(report.orphaned)
                        tracer.emit(
                            env.now, BASE_STATION_ID, TREE_REPAIR,
                            attempt=attempt,
                            reparented=len(report.reparented),
                            orphaned=len(report.orphaned),
                        )
                    if backoff > 0:
                        env.run(until=env.now + backoff)
                backoff *= policy.backoff_factor
        finally:
            channel.tracer = saved_tracer
            channel.telemetry = saved_telemetry

        if not completed and policy.on_exhaustion == "raise":
            raise ExecutionAborted(
                f"query did not complete within {policy.max_retries} "
                f"retries under the injected fault plan"
            )

        assert state is not None
        result = self._evaluate(context, fmt, state)
        details = dict(state.details)
        details["retries"] = float(aborted_attempts)
        details["repairs"] = float(repairs)
        if policy.repair == "reattach":
            # Only reported for the incremental strategy so the historical
            # rebuild path keeps its exact details shape.
            details["repair_beacons"] = float(repair_beacons)
        details["orphaned_nodes"] = float(orphaned)
        details["partial"] = 0.0 if completed else 1.0
        details["aborted_tx_packets"] = float(aborted_tx)
        details["aborted_energy"] = aborted_energy
        details["faults_applied"] = float(len(injector.applied))
        details["recall"] = (
            result.match_count / oracle.match_count if oracle.match_count else 1.0
        )
        children = tree.children(BASE_STATION_ID)
        delivered = sum(
            1
            for child in children
            if state.exited.get(child) or state.done_final[child].processed
        )
        details["subtrees_total"] = float(len(children))
        details["subtrees_delivered"] = float(delivered)
        # Full tuples that exited with a Treecut and were buffered at a proxy
        # that died before forwarding them: lost without any trace on the
        # wire — exactly the completeness gap §IV-F's re-execution papers
        # over, made visible here.
        details["lost_proxy_tuples"] = float(
            sum(
                len(records)
                for node_id, records in state.proxy_records.items()
                if not network.nodes[node_id].alive
            )
        )
        if self.sampler is not None:
            self.sampler.flush(env.now)
        return JoinOutcome(
            algorithm=self.name,
            result=result,
            stats=network.stats,
            response_time_s=(
                3 * tree.height * constants.DEFAULT_LEVEL_SLOT_S + env.now
            ),
            details=details,
        )

    def _monitor_attempt(
        self,
        env: Environment,
        network: Network,
        tree: RoutingTree,
        state: _AttemptState,
        policy: RecoveryPolicy,
        tracer: Tracer,
        attempt: int,
        tel: Optional[Telemetry] = None,
    ) -> bool:
        """Drive one attempt with the base station's per-phase watchdog.

        Returns True when the final result arrived; False on a stall, with
        a ``phase-timeout`` trace event naming the starved phase.
        """
        tel = tel if tel is not None else NULL_TELEMETRY
        reg = tel.registry
        budget = (
            policy.phase_timeout_s
            if policy.phase_timeout_s is not None
            else self._phase_budget(tree)
        )
        children = tree.children(BASE_STATION_ID)
        collection = env.all_of([state.done_1a[child] for child in children])
        with tel.span(
            PHASE_COLLECTION, node_id=BASE_STATION_ID,
            protocol=self.name, attempt=attempt,
        ) as sp:
            arrived = env.run_until(collection, env.now + budget)
            sp.ok = arrived
        if not arrived:
            waiting = sum(
                1 for child in children if not state.done_1a[child].processed
            )
            if reg.enabled:
                reg.counter(
                    "phase_timeouts_total", phase=PHASE_COLLECTION, protocol=self.name
                ).inc()
            tracer.emit(
                env.now, BASE_STATION_ID, PHASE_TIMEOUT,
                phase=PHASE_COLLECTION, attempt=attempt, waiting=waiting,
            )
            return False
        # Filter dissemination and final collection ride on one watchdog:
        # the base process drives 1b itself and then awaits phase 2.
        with tel.span(
            "filter-and-final", node_id=BASE_STATION_ID,
            protocol=self.name, attempt=attempt,
        ) as sp:
            finished = env.run_until(
                state.done_final[BASE_STATION_ID], env.now + 2 * budget
            )
            sp.ok = finished
        if not finished:
            stalled_filter = any(
                not state.filter_ready[node_id].processed
                for node_id in tree.node_ids
                if node_id != BASE_STATION_ID
                and not state.exited.get(node_id)
                and network.nodes[node_id].alive
            )
            starved = PHASE_FILTER if stalled_filter else PHASE_FINAL
            if reg.enabled:
                reg.counter(
                    "phase_timeouts_total", phase=starved, protocol=self.name
                ).inc()
            tracer.emit(
                env.now, BASE_STATION_ID, PHASE_TIMEOUT,
                phase=starved, attempt=attempt,
            )
            return False
        return True

    @staticmethod
    def _phase_budget(tree: RoutingTree) -> float:
        """Wall-clock backstop per phase; stalls are usually caught earlier
        (the event queue drains the moment nothing can make progress)."""
        return (
            max(10.0, 0.1 * len(tree.node_ids))
            + 3 * tree.height * constants.DEFAULT_LEVEL_SLOT_S
        )

    @staticmethod
    def _abort_attempt(env: Environment, state: _AttemptState) -> None:
        """Interrupt every surviving process of a stalled attempt."""
        for proc in state.procs.values():
            if proc.is_alive:
                proc.interrupt("attempt-aborted")
        # Deliver the interrupts at the current instant so no process of
        # this attempt can act during the backoff or the next attempt.
        env.run(until=env.now)

    # -- one protocol attempt ------------------------------------------------

    def _evaluate(
        self, context: ExecutionContext, fmt: TupleFormat, state: _AttemptState
    ) -> JoinResult:
        mailbox = state.mailboxes[BASE_STATION_ID]
        arrived = list(mailbox.final_tuples) + list(mailbox.full_tuples)
        tuples_by_alias: Dict[str, List[Row]] = {alias: [] for alias in fmt.aliases}
        for record in arrived:
            for alias in fmt.aliases_of_flags(record.flags):
                tuples_by_alias[alias].append(Row(record.node_id, dict(record.values)))
        return evaluate_join(context.query, tuples_by_alias, apply_selections=False)

    def _spawn_attempt(
        self,
        env: Environment,
        network: Network,
        tree: RoutingTree,
        fmt: TupleFormat,
    ) -> _AttemptState:
        """Allocate fresh mailboxes/events and register the node processes.

        Only alive nodes get a process; a node that died earlier never
        signals, and its ancestors starve — which is precisely the stall
        the base-station watchdog exists to catch.
        """
        channel = network.channel
        mailboxes: Dict[int, _Mailbox] = {n: _Mailbox() for n in tree.node_ids}
        # Events: fired when a node has finished a phase.
        done_1a: Dict[int, Event] = {n: env.event() for n in tree.node_ids}
        filter_ready: Dict[int, Event] = {n: env.event() for n in tree.node_ids}
        done_final: Dict[int, Event] = {n: env.event() for n in tree.node_ids}
        exited: Dict[int, bool] = {n: False for n in tree.node_ids}
        subtree_atts: Dict[int, Optional[FrozenSet[FlaggedPoint]]] = {}
        proxy_records: Dict[int, List[FullTupleRecord]] = {}
        own_record: Dict[int, Optional[FullTupleRecord]] = {}
        own_point: Dict[int, Optional[FlaggedPoint]] = {}
        details: Dict[str, float] = {}

        def sensor_process(node_id: int):
            mailbox = mailboxes[node_id]
            children = tree.children(node_id)
            # ---- phase 1a: wait for every child, then act (Fig. 2) ----
            if children:
                yield env.all_of([done_1a[child] for child in children])
            record, flags = node_tuple(fmt, node_id)
            own_record[node_id] = record
            own_point[node_id] = (
                (flags, fmt.quantizer.encode(
                    {k: record.values[k] for k in fmt.join_attributes}
                ))
                if record is not None
                else None
            )
            own_bytes = fmt.full_tuple_bytes if record is not None else 0
            parent = tree.parent(node_id)
            all_full = mailbox.joinatt_children == 0
            total_full = mailbox.full_bytes + own_bytes
            if all_full and total_full <= constants.DEFAULT_TREECUT_DMAX_BYTES:
                # Treecut: hand over complete tuples and exit the query.
                records = list(mailbox.full_tuples)
                if record is not None:
                    records.append(record)
                payload = fmt.full_tuples_bytes(len(records))
                yield env.timeout(channel.latency_for(payload))
                channel.unicast(node_id, parent, payload, PHASE_COLLECTION)
                if not channel.last_send_delivered:
                    # The handover died with the link; the parent will
                    # starve and the base station's watchdog takes over.
                    return
                target = mailboxes[parent]
                target.full_tuples.extend(records)
                target.full_bytes += payload
                exited[node_id] = True
                done_1a[node_id].succeed()
                return
            # Proxy + SubtreeJoinAtts bookkeeping (Fig. 2 lines 20-21).
            proxy_records[node_id] = list(mailbox.full_tuples)
            stored = mailbox.points
            if stored and fmt.encoded_points_bytes(stored) > (
                constants.DEFAULT_SUBTREE_FILTER_LIMIT_BYTES
            ):
                subtree_atts[node_id] = None
            else:
                subtree_atts[node_id] = stored
            points = mailbox.points
            for proxied in proxy_records[node_id]:
                join_values = {k: proxied.values[k] for k in fmt.join_attributes}
                points = union_points(
                    points, [(proxied.flags, fmt.quantizer.encode(join_values))]
                )
            if own_point[node_id] is not None:
                points = union_points(points, [own_point[node_id]])
            payload = fmt.encoded_points_bytes(points)
            yield env.timeout(channel.latency_for(payload))
            channel.unicast(node_id, parent, payload, PHASE_COLLECTION)
            if not channel.last_send_delivered:
                return
            target = mailboxes[parent]
            target.points = union_points(target.points, points)
            target.joinatt_children += 1
            done_1a[node_id].succeed()

            # ---- phase 1b: receive the filter, prune, broadcast (Fig. 3) ----
            yield filter_ready[node_id]
            incoming = mailbox.filter_points or frozenset()
            awake = [child for child in children if not exited[child]]
            reached = list(awake)
            if incoming and awake:
                stored = subtree_atts[node_id]
                pruned = intersect_points(incoming, stored) if stored is not None else incoming
                if pruned:
                    payload = fmt.encoded_points_bytes(pruned)
                    yield env.timeout(channel.latency_for(payload))
                    channel.broadcast(node_id, awake, payload, PHASE_FILTER)
                    reached = list(channel.last_broadcast_reached)
                    for child in reached:
                        mailboxes[child].filter_points = pruned
            # Children the broadcast could not reach never wake up for the
            # later phases — their subtree starves (watchdog territory).
            for child in reached:
                filter_ready[child].succeed()

            # ---- phase 2: collect matching complete tuples ----
            if awake:
                yield env.all_of([done_final[child] for child in awake])
            payload = mailbox.final_bytes
            records_out = list(mailbox.final_tuples)
            filter_flags: Dict[int, int] = {}
            for fl, z in (mailbox.filter_points or frozenset()):
                filter_flags[z] = filter_flags.get(z, 0) | fl
            matched: List[FullTupleRecord] = []
            if record is not None and own_point[node_id] is not None:
                fl, z = own_point[node_id]
                if filter_flags.get(z, 0) & fl:
                    matched.append(record)
            for proxied in proxy_records[node_id]:
                join_values = {k: proxied.values[k] for k in fmt.join_attributes}
                z = fmt.quantizer.encode(join_values)
                if filter_flags.get(z, 0) & proxied.flags:
                    matched.append(proxied)
            records_out.extend(matched)
            payload += fmt.full_tuples_bytes(len(matched))
            yield env.timeout(channel.latency_for(payload))
            channel.unicast(node_id, parent, payload, PHASE_FINAL)
            if not channel.last_send_delivered:
                return
            target = mailboxes[parent]
            target.final_tuples.extend(records_out)
            target.final_bytes += payload
            done_final[node_id].succeed()

        def base_station_process():
            mailbox = mailboxes[BASE_STATION_ID]
            children = tree.children(BASE_STATION_ID)
            if children:
                yield env.all_of([done_1a[child] for child in children])
            points = mailbox.points
            for proxied in mailbox.full_tuples:
                join_values = {k: proxied.values[k] for k in fmt.join_attributes}
                points = union_points(
                    points, [(proxied.flags, fmt.quantizer.encode(join_values))]
                )
            join_filter = self._build_filter(fmt, points)
            details["filter_points"] = float(len(join_filter))
            awake = [child for child in children if not exited[child]]
            subtree = mailbox.points
            pruned = intersect_points(join_filter, subtree)
            reached = list(awake)
            if pruned and awake:
                payload = fmt.encoded_points_bytes(pruned)
                yield env.timeout(channel.latency_for(payload))
                channel.broadcast(BASE_STATION_ID, awake, payload, PHASE_FILTER)
                reached = list(channel.last_broadcast_reached)
                for child in reached:
                    mailboxes[child].filter_points = pruned
            for child in reached:
                filter_ready[child].succeed()
            if awake:
                yield env.all_of([done_final[child] for child in awake])
            done_final[BASE_STATION_ID].succeed()

        procs: Dict[int, Process] = {}
        for node_id in tree.node_ids:
            if node_id == BASE_STATION_ID:
                procs[node_id] = env.process(base_station_process())
            elif network.nodes[node_id].alive:
                procs[node_id] = env.process(sensor_process(node_id))
        return _AttemptState(
            mailboxes=mailboxes,
            done_1a=done_1a,
            filter_ready=filter_ready,
            done_final=done_final,
            exited=exited,
            proxy_records=proxy_records,
            procs=procs,
            details=details,
        )
