"""Join-filter construction at the base station (§IV-A step 1a, tail end).

After the Join-Attribute-Collection the base station holds the set of
quantized join-attribute tuples of the whole network (as flagged points).
"The join-attribute tuples that have a partner form the 'join filter'".

Because the points are quantization cells, the join runs under conservative
interval semantics (:func:`repro.query.evaluate.conservative_semijoin`): a
point stays in the filter when the cells *possibly* satisfy every join
predicate — the N-way semi-join reduction of the quantized relations.  A
surviving point keeps exactly the alias flags of the roles in which it
survived, so a node later checks the filter with its own alias flags.

Self-join subtlety: with aliases A and B over the same relation, a single
node's point typically carries flags '11'.  Its A-role and B-role survive
independently (e.g. in Q1 a hot node may join as A but not as B).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Tuple

from ..codec.quadtree import FlaggedPoint
from ..codec.setops import union_points
from ..query.evaluate import CellBounds, conservative_semijoin
from .base import TupleFormat

__all__ = ["build_join_filter", "compose_filters"]


def build_join_filter(
    fmt: TupleFormat, points: Iterable[FlaggedPoint]
) -> FrozenSet[FlaggedPoint]:
    """The join filter: the sub-(multi)set of points that possibly join."""
    # Collapse duplicate Z-numbers, OR-ing their flags (different nodes can
    # share a quantization cell — that is the whole point of quantizing).
    flags_by_z: Dict[int, int] = {}
    for flags, z in points:
        flags_by_z[z] = flags_by_z.get(z, 0) | flags

    # Per alias: the list of Z-numbers playing that role, with cell bounds.
    z_lists: Dict[str, List[int]] = {}
    cells_by_alias: Dict[str, List[CellBounds]] = {}
    for alias in fmt.aliases:
        bit = fmt.alias_bit(alias)
        zs = sorted(z for z, flags in flags_by_z.items() if flags & bit)
        z_lists[alias] = zs
        cells_by_alias[alias] = [fmt.quantizer.cell_bounds(z) for z in zs]

    survivors = conservative_semijoin(fmt.query, cells_by_alias)

    surviving_flags: Dict[int, int] = {}
    for alias in fmt.aliases:
        bit = fmt.alias_bit(alias)
        zs = z_lists[alias]
        for index in survivors[alias]:
            z = zs[index]
            surviving_flags[z] = surviving_flags.get(z, 0) | bit
    return frozenset((flags, z) for z, flags in surviving_flags.items())


def compose_filters(
    filters: Iterable[FrozenSet[FlaggedPoint]],
) -> FrozenSet[FlaggedPoint]:
    """Unite per-query join filters over one quantized domain into one.

    The callers (``repro.service.broker``) guarantee the filters share a
    :class:`TupleFormat` up to the join predicate: same aliases in the same
    order (so alias-flag bits agree) and the same quantizer (so Z-numbers
    index the same cells).  Under that premise the flag-OR union is a
    conservative filter for *every* member query — it is a superset of each
    per-query filter, so no joining tuple of any query is dismissed, and the
    exact final join at the base station still discards every false
    positive.  Flags of coinciding cells are OR-ed (``union_points``).
    """
    composed: FrozenSet[FlaggedPoint] = frozenset()
    for points in filters:
        composed = union_points(composed, points)
    return composed
