"""Semi-join-broadcast baseline (Coman et al. [8] style, §II).

"The design is close to the semi-join in distributed databases.  The
join-attribute values of one of the relations is broadcast over the nodes of
the other relation."

Protocol as modelled here (for two relations):

1. The *filter relation* (the alias with fewer members) ships its **complete
   tuples** to the base station along the routing tree (they are needed for
   the final result anyway; the related-work scenarios assume this relation
   is small or regional).
2. The base station extracts the filter relation's join-attribute values
   (raw, 2 bytes/attribute) and **floods** them over the whole network —
   the general-topology price of the approach: without the small-region
   assumption the broadcast reaches everyone.
3. Every node of the other relation checks locally — it has exact values on
   both sides, so the check is exact — and ships its complete tuple to the
   base station iff it joins.

This reproduces the paper's observation that such specialised methods only
pay off when "the input relations are distributed over two small regions"
and the query is highly selective; on the paper's general workloads the
external join (and a fortiori SENS-Join) beats it, which our comparison
benchmark confirms.
"""

from __future__ import annotations

from typing import Dict, List

from ..query.evaluate import Row, evaluate_join
from ..routing.dissemination import flood_query
from ..sim.node import BASE_STATION_ID
from .base import (
    ExecutionContext,
    FullTupleRecord,
    JoinAlgorithm,
    JoinOutcome,
    node_tuple,
)

__all__ = ["SemiJoinBroadcast"]

PHASE_FILTER_COLLECT = "semijoin-filter-collect"
PHASE_FILTER_FLOOD = "semijoin-filter-flood"
PHASE_CANDIDATES = "semijoin-candidates"


class SemiJoinBroadcast(JoinAlgorithm):
    """Broadcast one relation's join-attribute values over the other."""

    name = "semijoin-broadcast"

    def execute(self, context: ExecutionContext) -> JoinOutcome:
        """One snapshot execution; two-relation queries only."""
        network, tree = context.network, context.tree
        fmt = context.tuple_format()
        if len(fmt.aliases) != 2:
            raise ValueError("the semi-join baseline supports exactly two relations")
        channel = network.channel

        # Materialise every node's tuple once.
        records: Dict[int, FullTupleRecord] = {}
        flags_of: Dict[int, int] = {}
        for node_id in network.sensor_node_ids:
            record, flags = node_tuple(fmt, node_id)
            if record is not None:
                records[node_id] = record
                flags_of[node_id] = flags

        # Pick the filter alias: the one with fewer passing members.
        def member_count(alias: str) -> int:
            bit = fmt.alias_bit(alias)
            return sum(1 for flags in flags_of.values() if flags & bit)

        filter_alias = min(fmt.aliases, key=member_count)
        other_alias = next(a for a in fmt.aliases if a != filter_alias)
        filter_bit = fmt.alias_bit(filter_alias)
        other_bit = fmt.alias_bit(other_alias)

        # Step 1: ship the filter relation's complete tuples to the root.
        carried_bytes: Dict[int, int] = {}
        for node_id in tree.post_order():
            payload = sum(carried_bytes.pop(child) for child in tree.children(node_id))
            if flags_of.get(node_id, 0) & filter_bit:
                payload += fmt.full_tuple_bytes
            if node_id != BASE_STATION_ID:
                channel.unicast(node_id, tree.parent(node_id), payload, PHASE_FILTER_COLLECT)
            carried_bytes[node_id] = payload

        filter_records = [
            record for node_id, record in records.items() if flags_of[node_id] & filter_bit
        ]

        # Step 2: flood the filter relation's join-attribute values.
        filter_bytes = len(filter_records) * fmt.raw_join_tuple_bytes
        flood_query(network, filter_bytes, PHASE_FILTER_FLOOD)

        # Step 3: matching nodes of the other relation ship complete tuples.
        query = context.query
        join_predicates = query.join_predicates
        matching: Dict[int, FullTupleRecord] = {}
        for node_id, record in records.items():
            if not flags_of[node_id] & other_bit:
                continue
            env_other = {(other_alias, k): v for k, v in record.values.items()}
            for partner in filter_records:
                env = dict(env_other)
                env.update({(filter_alias, k): v for k, v in partner.values.items()})
                if all(pred.evaluate(env) for pred in join_predicates):
                    matching[node_id] = record
                    break
        carried_bytes = {}
        for node_id in tree.post_order():
            payload = sum(carried_bytes.pop(child) for child in tree.children(node_id))
            if node_id in matching:
                payload += fmt.full_tuple_bytes
            if node_id != BASE_STATION_ID:
                channel.unicast(node_id, tree.parent(node_id), payload, PHASE_CANDIDATES)
            carried_bytes[node_id] = payload

        tuples_by_alias: Dict[str, List[Row]] = {
            filter_alias: [Row(r.node_id, dict(r.values)) for r in filter_records],
            other_alias: [Row(r.node_id, dict(r.values)) for r in matching.values()],
        }
        result = evaluate_join(query, tuples_by_alias, apply_selections=False)

        # Response-time estimate: three sequential epoch-scheduled passes.
        from .. import constants

        hop = channel.hop_latency_s
        response = 3 * tree.height * (constants.DEFAULT_LEVEL_SLOT_S + hop)

        return JoinOutcome(
            algorithm=self.name,
            result=result,
            stats=network.stats,
            response_time_s=response,
            details={
                "filter_relation_tuples": float(len(filter_records)),
                "candidate_tuples": float(len(matching)),
            },
        )
