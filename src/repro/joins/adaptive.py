"""Adaptive algorithm choice for continuous queries.

The paper's regime split (SENS-Join below the break-even fraction, external
join above it — §VI/Fig. 10) becomes actionable for ``SAMPLE PERIOD``
queries: consecutive rounds of a continuous query have strongly correlated
result fractions, so the *previous* round's measured fraction is a good
estimate for the next round.  :class:`AdaptiveJoin` feeds that estimate into
the analytic planner (:mod:`repro.joins.planner`) and runs each round with
whichever method it predicts to be cheaper.

This composes two things the paper provides separately — the break-even
analysis and the observation that the external join is sometimes optimal —
into a small self-tuning executor.  Exactness is unaffected: both candidate
methods compute identical results.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..data.relations import SensorWorld
from ..query.query import JoinQuery
from ..routing.ctp import build_tree
from ..routing.tree import RoutingTree
from ..sim.network import Network
from .base import JoinOutcome, TupleFormat
from .external import ExternalJoin
from .planner import recommend_algorithm
from .runner import run_snapshot
from .sensjoin import SensJoin

__all__ = ["AdaptiveJoin"]


class AdaptiveJoin:
    """Stateful per-round executor: plan with last round's fraction.

    Parameters
    ----------
    initial_fraction:
        The fraction assumed before any measurement exists (round 0).  The
        paper's default workload sits at 5 %, so that is the default guess;
        a cautious deployment can start at a high value to begin with the
        never-bad external join.
    """

    def __init__(
        self,
        network: Network,
        world: SensorWorld,
        query: JoinQuery,
        tree: Optional[RoutingTree] = None,
        tree_seed: int = 0,
        initial_fraction: float = 0.05,
    ):
        self.network = network
        self.world = world
        self.query = query
        self.tree = tree if tree is not None else build_tree(network, seed=tree_seed)
        self.tree_seed = tree_seed
        self.fmt = TupleFormat(query, world)
        self.expected_fraction = initial_fraction
        self.history: List[Tuple[str, float]] = []

    def run_round(self, snapshot_time: float) -> Tuple[JoinOutcome, str]:
        """Execute one round; returns (outcome, chosen algorithm name)."""
        name, _estimate = recommend_algorithm(
            self.tree,
            self.fmt,
            self.expected_fraction,
            self.network.packet_format.max_packet_bytes,
        )
        algorithm = SensJoin() if name == "sens-join" else ExternalJoin()
        outcome = run_snapshot(
            self.network,
            self.world,
            self.query,
            algorithm,
            tree=self.tree,
            snapshot_time=snapshot_time,
            tree_seed=self.tree_seed,
        )
        total = len(self.network.sensor_node_ids) or 1
        measured = len(outcome.result.all_contributing_nodes()) / total
        self.history.append((name, measured))
        self.expected_fraction = measured
        return outcome, name
