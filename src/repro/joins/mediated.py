"""Mediated join baseline (Coman et al. [8], §II).

"A 'mediated join' ... computes the result at a central location inside the
network": both relations send their tuples to a mediator node chosen between
the input regions; the mediator joins and forwards the *result* to the base
station.

The approach wins only when (a) the relations live in two small regions,
(b) the regions are close to each other compared to their distance to the
base station, and (c) the join is highly selective (small result).  On
general workloads the result shipping leg erases the savings — which is why
the paper compares SENS-Join against the external join only.  We implement
the mediated join so that claim is checkable.

Modelling choices: the mediator is the contributing node closest to the
centroid of all contributing nodes; collection to the mediator uses a BFS
(min-hop) tree rooted there, with the same byte-packing as the external
join; the result travels mediator -> base station along the min-hop path,
sized at 2 bytes per selected attribute per result row.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from ..errors import ProtocolError
from ..query.evaluate import Row, evaluate_join
from ..routing.tree import RoutingTree
from ..sim.node import BASE_STATION_ID
from .base import (
    ExecutionContext,
    FullTupleRecord,
    JoinAlgorithm,
    JoinOutcome,
    node_tuple,
)

__all__ = ["MediatedJoin"]

PHASE_COLLECT = "mediated-collect"
PHASE_RESULT = "mediated-result"


def _bfs_tree(network, root: int) -> RoutingTree:
    """Min-hop tree over the connectivity graph rooted at ``root``."""
    parents: Dict[int, int] = {}
    seen = {root}
    queue = deque([root])
    while queue:
        current = queue.popleft()
        for neighbour in sorted(network.neighbours(current)):
            if neighbour not in seen:
                seen.add(neighbour)
                parents[neighbour] = current
                queue.append(neighbour)
    return RoutingTree(parents, root=root)


class MediatedJoin(JoinAlgorithm):
    """Join at an in-network mediator, ship the result to the base station."""

    name = "mediated-join"

    def execute(self, context: ExecutionContext) -> JoinOutcome:
        """One snapshot execution; see the module docstring."""
        network = context.network
        fmt = context.tuple_format()
        channel = network.channel

        records: Dict[int, FullTupleRecord] = {}
        for node_id in network.sensor_node_ids:
            record, _flags = node_tuple(fmt, node_id)
            if record is not None:
                records[node_id] = record
        if not records:
            result = evaluate_join(context.query, {a: [] for a in fmt.aliases},
                                   apply_selections=False)
            return JoinOutcome(self.name, result, network.stats, 0.0, {})

        # Mediator: contributing node nearest the contributors' centroid.
        xs = [network.nodes[i].x for i in records]
        ys = [network.nodes[i].y for i in records]
        cx, cy = sum(xs) / len(xs), sum(ys) / len(ys)
        mediator = min(
            records,
            key=lambda i: (network.nodes[i].x - cx) ** 2 + (network.nodes[i].y - cy) ** 2,
        )

        # Collect every contributing tuple at the mediator.
        tree = _bfs_tree(network, mediator)
        carried: Dict[int, int] = {}
        for node_id in tree.post_order():
            payload = sum(carried.pop(child) for child in tree.children(node_id))
            if node_id in records:
                payload += fmt.full_tuple_bytes
            if node_id != mediator:
                channel.unicast(node_id, tree.parent(node_id), payload, PHASE_COLLECT)
            carried[node_id] = payload

        # The mediator joins.
        tuples_by_alias: Dict[str, List[Row]] = {alias: [] for alias in fmt.aliases}
        for record in records.values():
            for alias in fmt.aliases_of_flags(record.flags):
                tuples_by_alias[alias].append(Row(record.node_id, dict(record.values)))
        result = evaluate_join(context.query, tuples_by_alias, apply_selections=False)

        # Ship the result rows to the base station along the min-hop path.
        row_bytes = len(context.query.select) * fmt.bytes_per_attribute
        result_bytes = result.row_count * row_bytes
        path = self._hop_path(network, mediator, BASE_STATION_ID)
        for sender, receiver in zip(path, path[1:]):
            channel.unicast(sender, receiver, result_bytes, PHASE_RESULT)

        # Two epoch-scheduled legs: collection at the mediator, then the
        # result relay to the base station.
        from .. import constants

        hop = channel.hop_latency_s
        response = (tree.height + len(path)) * (constants.DEFAULT_LEVEL_SLOT_S + hop)

        return JoinOutcome(
            algorithm=self.name,
            result=result,
            stats=network.stats,
            response_time_s=response,
            details={
                "mediator": float(mediator),
                "result_rows": float(result.row_count),
                "mediator_to_bs_hops": float(len(path) - 1),
            },
        )

    def _hop_path(self, network, source: int, target: int) -> List[int]:
        """Shortest hop path from ``source`` to ``target``."""
        parents: Dict[int, Optional[int]] = {source: None}
        queue = deque([source])
        while queue:
            current = queue.popleft()
            if current == target:
                path = [current]
                while parents[path[-1]] is not None:
                    path.append(parents[path[-1]])
                return list(reversed(path))
            for neighbour in sorted(network.neighbours(current)):
                if neighbour not in parents:
                    parents[neighbour] = current
                    queue.append(neighbour)
        raise ProtocolError(f"no path from mediator {source} to the base station")
