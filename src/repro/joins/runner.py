"""High-level query execution: snapshots, continuous queries, failure recovery.

The runner ties the substrates together the way the modelled system does
(§III "Query Processing"):

1. the query is flooded from the base station (both join methods pay this
   identically; it is recorded under its own phase label and excluded from
   the comparison metrics);
2. a snapshot is taken (each node reads its sensors exactly once, §IV-D);
3. the join algorithm runs over the converged routing tree;
4. for ``SAMPLE PERIOD x`` queries, steps 2-3 repeat every x seconds on a
   fresh snapshot ("independent executions of the query", §III).

Error tolerance (§IV-F): "If a link goes down during the execution of a
query, we rely upon the tree protocol to re-establish the routing structure.
Afterwards, we simply re-execute the query."  :func:`run_with_failures`
models exactly that: scheduled failures abort the in-flight execution, the
tree repairs over the surviving topology (orphaned nodes drop out), and the
query re-executes from a fresh snapshot.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Union

from ..data.relations import SensorWorld
from ..errors import ExecutionAborted
from ..obs.telemetry import Telemetry
from ..query.query import JoinQuery, SamplePeriod
from ..routing.ctp import build_tree, repair_tree
from ..routing.dissemination import flood_query
from ..routing.tree import RoutingTree
from ..sim.network import Network
from .base import ExecutionContext, JoinAlgorithm, JoinOutcome
from .des_sensjoin import DesSensJoin
from .external import ExternalJoin
from .mediated import MediatedJoin
from .semijoin import SemiJoinBroadcast
from .sensjoin import SensJoin, SensJoinConfig

__all__ = [
    "run_snapshot",
    "run_continuous",
    "run_with_failures",
    "NetworkFailure",
    "make_algorithm",
    "list_engines",
    "snapshot_engine_names",
    "instrumented",
]

#: Default-constructible snapshot engines resolvable by name through
#: :func:`make_algorithm` (each implements ``execute``).
_ALGORITHMS: dict[str, Callable[[], JoinAlgorithm]] = {
    "sens-join": SensJoin,
    "external-join": ExternalJoin,
    "semijoin-broadcast": SemiJoinBroadcast,
    "mediated-join": MediatedJoin,
    "des-sensjoin": DesSensJoin,
}

#: Stateful continuous executors.  They hold per-round state and are driven
#: through ``run_round`` instead of ``execute`` (see ``repro.joins.adaptive``
#: and ``repro.joins.incremental``), so :func:`make_algorithm` cannot build
#: them — but every engine listing must still name them (the differential
#: harness drives them under these names, ``repro.verify.generators.ENGINES``).
_STATEFUL_ENGINES: dict[str, str] = {
    "adaptive": "repro.joins.adaptive.AdaptiveJoin",
    "incremental": "repro.joins.incremental.IncrementalSensJoin",
}


def snapshot_engine_names() -> list[str]:
    """Sorted names of every engine :func:`make_algorithm` can construct."""
    return sorted(_ALGORITHMS)


def list_engines() -> dict[str, str]:
    """Every registered engine, mapped to how it is driven.

    ``"snapshot"`` engines resolve through :func:`make_algorithm` and run
    one ``execute`` per query; ``"stateful"`` engines keep per-round state
    and are constructed directly, then driven via ``run_round``.  This is
    the single source of truth for user-facing engine listings (the
    ``python -m repro`` CLI help text is generated from it, and a test
    greps the two against each other).
    """
    engines = {name: "snapshot" for name in _ALGORITHMS}
    engines.update({name: "stateful" for name in _STATEFUL_ENGINES})
    return dict(sorted(engines.items()))


def make_algorithm(
    name: Union[str, JoinAlgorithm], config: Optional[SensJoinConfig] = None
) -> JoinAlgorithm:
    """Resolve an algorithm name (or pass an instance through)."""
    if isinstance(name, JoinAlgorithm):
        return name
    if name == "sens-join" and config is not None:
        return SensJoin(config)
    try:
        return _ALGORITHMS[name]()
    except KeyError:
        if name in _STATEFUL_ENGINES:
            raise ValueError(
                f"{name!r} is a stateful continuous executor "
                f"({_STATEFUL_ENGINES[name]}); construct it directly and "
                "drive it through run_round instead of execute"
            ) from None
        known = ", ".join(sorted(_ALGORITHMS))
        raise ValueError(f"unknown algorithm {name!r}; known: {known}") from None


@contextmanager
def instrumented(network: Network, telemetry: Optional[Telemetry]):
    """Attach ``telemetry`` to the network's channel for the duration.

    The channel's metrics sink and tracer are swapped in on entry and the
    previous ones restored on exit, so one network can serve both traced and
    untraced executions.  ``None`` leaves the channel exactly as it is (a
    tracer someone attached directly stays in charge).
    """
    if telemetry is None:
        yield network
        return
    channel = network.channel
    saved_telemetry = channel.telemetry
    saved_tracer = channel.tracer
    channel.telemetry = telemetry
    channel.tracer = telemetry.tracer
    try:
        yield network
    finally:
        channel.telemetry = saved_telemetry
        channel.tracer = saved_tracer


def run_snapshot(
    network: Network,
    world: SensorWorld,
    query: JoinQuery,
    algorithm: Union[str, JoinAlgorithm] = "sens-join",
    tree: Optional[RoutingTree] = None,
    snapshot_time: float = 0.0,
    disseminate_query: bool = False,
    tree_seed: int = 0,
    reset_accounting: bool = True,
    telemetry: Optional[Telemetry] = None,
) -> JoinOutcome:
    """Execute one snapshot ("ONCE") query and return the outcome.

    Accounting starts fresh by default: the network's energy ledgers and
    statistics are reset, so the outcome reflects exactly one execution.
    ``reset_accounting=False`` lets multi-attempt drivers
    (:func:`run_with_failures`) accumulate the cost of aborted attempts
    into the final outcome's ledgers.

    ``telemetry`` (optional) observes the execution: the channel charges
    per-node/per-phase counters into its registry, and the algorithm — if it
    supports :meth:`~repro.joins.base.JoinAlgorithm.instrument` — emits
    phase spans and protocol-decision events into its tracer.  Passing
    ``None`` (the default) leaves every accounting code path untouched.
    """
    algo = make_algorithm(algorithm)
    if telemetry is not None:
        algo.instrument(telemetry)
    if tree is None:
        tree = build_tree(network, seed=tree_seed)
    if reset_accounting:
        network.reset_accounting()
    with instrumented(network, telemetry):
        if disseminate_query:
            flood_query(network, len(query.sql().encode()))
        world.take_snapshot(snapshot_time)
        context = ExecutionContext(network=network, tree=tree, world=world, query=query)
        outcome = algo.execute(context)
    if network.link_quality is not None:
        outcome.details["retransmissions"] = float(outcome.total_retransmissions)
    return outcome


def run_continuous(
    network: Network,
    world: SensorWorld,
    query: JoinQuery,
    algorithm: Union[str, JoinAlgorithm] = "sens-join",
    executions: int = 5,
    tree: Optional[RoutingTree] = None,
    tree_seed: int = 0,
) -> List[JoinOutcome]:
    """Execute a ``SAMPLE PERIOD`` query for ``executions`` rounds.

    Each round is an independent execution over the most recent snapshot
    (§III); the world's fields evolve between rounds when built with a
    non-zero ``drift_rate``.
    """
    if not isinstance(query.mode, SamplePeriod):
        raise ValueError("run_continuous expects a SAMPLE PERIOD query")
    if executions < 1:
        raise ValueError("need at least one execution")
    algo = make_algorithm(algorithm)
    if tree is None:
        tree = build_tree(network, seed=tree_seed)
    outcomes = []
    for round_index in range(executions):
        network.reset_accounting()
        world.take_snapshot(round_index * query.mode.seconds)
        context = ExecutionContext(network=network, tree=tree, world=world, query=query)
        outcomes.append(algo.execute(context))
    return outcomes


@dataclass(frozen=True)
class NetworkFailure:
    """A scheduled topology change for the §IV-F recovery experiments.

    ``kind`` is ``"node"`` (node dies) or ``"link"`` (link goes down);
    ``node_a``/``node_b`` identify the target.  The failure strikes during
    the given execution ``attempt`` (0 = the first), aborting it.
    """

    kind: str
    node_a: int
    node_b: int = -1
    attempt: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("node", "link"):
            raise ValueError(
                f"unknown failure kind {self.kind!r}; known: node, link"
            )
        if self.kind == "link" and self.node_b < 0:
            raise ValueError(
                "kind='link' needs an explicit node_b (got the default -1)"
            )
        if self.attempt < 0:
            raise ValueError(f"negative attempt index: {self.attempt}")

    def apply(self, network: Network) -> None:
        """Mutate the network topology."""
        if self.kind == "node":
            network.fail_node(self.node_a)
        else:
            network.fail_link(self.node_a, self.node_b)


def run_with_failures(
    network: Network,
    world: SensorWorld,
    query: JoinQuery,
    algorithm: Union[str, JoinAlgorithm] = "sens-join",
    failures: Sequence[NetworkFailure] = (),
    max_retries: int = 5,
    tree_seed: int = 0,
) -> JoinOutcome:
    """Execute with §IV-F semantics: abort on failure, repair, re-execute.

    Returns the outcome of the first execution that completes without a
    scheduled failure; its ``details["retries"]`` records how many attempts
    were aborted.  Raises :class:`~repro.errors.ExecutionAborted` if failures
    outlast ``max_retries``.

    Aborted attempts are not free: each one executes and spends its full
    transmission/energy budget before the failure voids it (a conservative
    model — the abort is only detected at the base station, after the
    protocol has run its course).  That cost stays in the network's ledgers
    and statistics, which accumulate across attempts into the returned
    outcome; ``details["aborted_tx_packets"]`` / ``details["aborted_energy"]``
    break out the share spent on attempts that delivered nothing.
    """
    algo = make_algorithm(algorithm)
    tree = build_tree(network, seed=tree_seed)
    pending = list(failures)
    network.reset_accounting()
    aborted_tx = 0
    aborted_energy = 0.0
    for attempt in range(max_retries + 1):
        struck = [f for f in pending if f.attempt == attempt]
        if struck:
            # The failure hits mid-execution: the attempt's cost is spent,
            # but nothing usable reaches the base station.  CTP repairs the
            # tree and the query re-executes (§IV-F).
            tx_before = network.stats.total_tx_packets()
            energy_before = network.total_energy()
            run_snapshot(
                network, world, query, algo, tree=tree,
                snapshot_time=float(attempt), reset_accounting=False,
            )
            aborted_tx += network.stats.total_tx_packets() - tx_before
            aborted_energy += network.total_energy() - energy_before
            for failure in struck:
                failure.apply(network)
                pending.remove(failure)
            report = repair_tree(network, tree, seed=tree_seed)
            tree = report.tree
            continue
        outcome = run_snapshot(
            network, world, query, algo, tree=tree,
            snapshot_time=float(attempt), reset_accounting=False,
        )
        outcome.details["retries"] = float(attempt)
        outcome.details["aborted_tx_packets"] = float(aborted_tx)
        outcome.details["aborted_energy"] = aborted_energy
        return outcome
    raise ExecutionAborted(
        f"query did not complete within {max_retries} retries; "
        f"{len(pending)} failure(s) still pending"
    )
