"""The external join — the state-of-the-art general-purpose baseline (§VI).

"It sends the complete tuples from the input relations to the base station
where the result is computed."  Despite its simplicity it is the *optimal*
general method when selectivity is low (result larger than input), and the
paper's implementation notes apply here too:

* tuples are **aggregated** (byte-packed) as they move up the routing tree —
  a node forwards its children's payload together with its own tuple in as
  few maximum-size packets as possible;
* **selections and projections happen as early as possible**: a node that
  fails its selection predicates sends nothing of its own, and only the
  attributes the query needs (SELECT ∪ join attributes) are shipped.
"""

from __future__ import annotations

from typing import Dict, List

from ..query.evaluate import Row, evaluate_join
from ..sim.node import BASE_STATION_ID
from .base import (
    ExecutionContext,
    FullTupleRecord,
    JoinAlgorithm,
    JoinOutcome,
    node_tuple,
)

__all__ = ["ExternalJoin", "EXTERNAL_PHASE"]

EXTERNAL_PHASE = "external-collection"


class ExternalJoin(JoinAlgorithm):
    """Ship every (selected, projected) tuple to the base station."""

    name = "external-join"

    def execute(self, context: ExecutionContext) -> JoinOutcome:
        """One snapshot execution; see the module docstring."""
        network, tree = context.network, context.tree
        fmt = context.tuple_format()
        channel = network.channel

        # Payload accumulated per node (bytes and the actual records), and
        # the critical-path completion time per node.
        carried_bytes: Dict[int, int] = {}
        carried_records: Dict[int, List[FullTupleRecord]] = {}
        finish_time: Dict[int, float] = {}

        for node_id in tree.post_order():
            records: List[FullTupleRecord] = []
            payload = 0
            children_finish = 0.0
            for child in tree.children(node_id):
                payload += carried_bytes.pop(child)
                records.extend(carried_records.pop(child))
                children_finish = max(children_finish, finish_time[child])
            record, _flags = node_tuple(fmt, node_id)
            if record is not None:
                records.append(record)
                payload += fmt.full_tuple_bytes
            if node_id == BASE_STATION_ID:
                carried_bytes[node_id] = payload
                carried_records[node_id] = records
                finish_time[node_id] = children_finish
                continue
            channel.unicast(node_id, tree.parent(node_id), payload, EXTERNAL_PHASE)
            carried_bytes[node_id] = payload
            carried_records[node_id] = records
            finish_time[node_id] = children_finish + channel.last_send_latency_s

        arrived = carried_records[BASE_STATION_ID]
        tuples_by_alias: Dict[str, List[Row]] = {alias: [] for alias in fmt.aliases}
        for record in arrived:
            for alias in fmt.aliases_of_flags(record.flags):
                tuples_by_alias[alias].append(Row(record.node_id, dict(record.values)))
        result = evaluate_join(context.query, tuples_by_alias, apply_selections=False)

        # One epoch-scheduled collection pass (TAG-style level slots) plus
        # the serialisation overflow along the critical path.
        from .. import constants

        phase_overhead = tree.height * constants.DEFAULT_LEVEL_SLOT_S
        return JoinOutcome(
            algorithm=self.name,
            result=result,
            stats=network.stats,
            response_time_s=phase_overhead + finish_time[BASE_STATION_ID],
            details={
                "tuples_shipped": float(len(arrived)),
                "bytes_shipped": float(carried_bytes[BASE_STATION_ID]),
            },
        )
