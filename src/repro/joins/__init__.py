"""Join algorithms: SENS-Join (the paper's contribution) and baselines."""

from .adaptive import AdaptiveJoin
from .base import (
    ExecutionContext,
    FullTupleRecord,
    JoinAlgorithm,
    JoinOutcome,
    TupleFormat,
    node_tuple,
    oracle_result,
)
from .des_sensjoin import DesSensJoin, RecoveryPolicy
from .external import ExternalJoin
from .filterbuild import build_join_filter
from .incremental import IncrementalSensJoin
from .mediated import MediatedJoin
from .placement import PlacementReport, analyze_join_location
from .planner import CostEstimate, estimate_costs, recommend_algorithm
from .runner import (
    NetworkFailure,
    make_algorithm,
    run_continuous,
    run_snapshot,
    run_with_failures,
)
from .semijoin import SemiJoinBroadcast
from .sensjoin import (
    PHASE_COLLECTION,
    PHASE_FILTER,
    PHASE_FINAL,
    SensJoin,
    SensJoinConfig,
)

__all__ = [
    "AdaptiveJoin",
    "DesSensJoin",
    "ExecutionContext",
    "ExternalJoin",
    "FullTupleRecord",
    "IncrementalSensJoin",
    "JoinAlgorithm",
    "JoinOutcome",
    "MediatedJoin",
    "PlacementReport",
    "NetworkFailure",
    "PHASE_COLLECTION",
    "PHASE_FILTER",
    "PHASE_FINAL",
    "RecoveryPolicy",
    "SemiJoinBroadcast",
    "SensJoin",
    "SensJoinConfig",
    "TupleFormat",
    "analyze_join_location",
    "CostEstimate",
    "build_join_filter",
    "estimate_costs",
    "make_algorithm",
    "node_tuple",
    "oracle_result",
    "recommend_algorithm",
    "run_continuous",
    "run_snapshot",
    "run_with_failures",
]
