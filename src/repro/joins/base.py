"""Shared infrastructure for the join algorithms.

Everything a join method needs to run is bundled in an
:class:`ExecutionContext`: the deployed network, the converged routing tree,
the world (snapshot data + relation membership) and the parsed query.
:class:`TupleFormat` derives the wire-level facts from the query — which
attributes form the join-attribute tuple and the full tuple per alias, their
byte sizes, and the quantizer/codec shared network-wide.

Per-node tuple construction follows Fig. 1 line 8: a node produces its tuple
from local sensor data; the constructor "returns NULL if (T not in A) and
(T not in B)" or if the tuple fails the per-alias selection predicates.
:func:`node_tuple` returns the tuple plus its *alias flags* — one bit per
FROM-clause alias (MSB = first alias), the generalisation of the paper's
two-bit relation flags ('10' = A, '01' = B, '11' = both, §V-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .. import constants
from ..codec.quadtree import FlaggedPoint, QuadtreeCodec
from ..codec.quantize import Quantizer
from ..data.relations import SensorWorld
from ..errors import ProtocolError, QueryError
from ..query.evaluate import JoinResult, Row, evaluate_join
from ..query.query import JoinQuery
from ..routing.tree import RoutingTree
from ..sim.network import Network
from ..sim.stats import TransmissionStats

__all__ = [
    "ExecutionContext",
    "TupleFormat",
    "FullTupleRecord",
    "JoinOutcome",
    "JoinAlgorithm",
    "node_tuple",
    "oracle_result",
]


@dataclass(frozen=True)
class FullTupleRecord:
    """A complete tuple travelling through the network.

    ``flags`` records which aliases the originating node can serve (bit per
    alias, MSB-first); ``values`` holds the full-tuple attributes.
    """

    node_id: int
    flags: int
    values: Mapping[str, float]


class TupleFormat:
    """Wire-format facts derived from a query and a sensor catalogue."""

    def __init__(
        self,
        query: JoinQuery,
        world: SensorWorld,
        bytes_per_attribute: int = constants.BYTES_PER_ATTRIBUTE,
    ):
        query.require_join()
        query.validate_attributes(world.catalog)
        self.query = query
        self.world = world
        self.bytes_per_attribute = bytes_per_attribute
        self.aliases: List[str] = query.aliases
        #: Union over aliases — in a self-join the attribute sets coincide
        #: and a node sends each value once (§IV-B: "we avoid sending
        #: attribute values redundantly").
        self.join_attributes: List[str] = sorted(
            {attr for alias in self.aliases for attr in query.join_attributes(alias)}
        )
        self.full_attributes: List[str] = sorted(
            {attr for alias in self.aliases for attr in query.full_tuple_attributes(alias)}
        )
        if not self.join_attributes:
            raise QueryError("query has no join attributes")
        self.quantizer = Quantizer.for_attributes(world.catalog, self.join_attributes)
        self.codec = QuadtreeCodec.for_quantizer(self.quantizer, alias_count=len(self.aliases))
        # Size-only encodes repeat heavily: the same point set is re-sized at
        # every unpruned hop of a filter chain and in every store/forward
        # decision.  frozenset keys make the memo safe (immutable) and cheap
        # (CPython caches a frozenset's hash after the first use).
        self._size_memo: Dict[frozenset, int] = {}

    # -- sizes -------------------------------------------------------------------

    @property
    def full_tuple_bytes(self) -> int:
        """Wire size of one complete tuple."""
        return len(self.full_attributes) * self.bytes_per_attribute

    @property
    def raw_join_tuple_bytes(self) -> int:
        """Wire size of one *raw* (uncompacted) join-attribute tuple."""
        return len(self.join_attributes) * self.bytes_per_attribute

    def full_tuples_bytes(self, count: int) -> int:
        """Wire size of ``count`` complete tuples (multiset, §IV-B)."""
        return count * self.full_tuple_bytes

    def encoded_points_bytes(self, points: Sequence[FlaggedPoint] | frozenset) -> int:
        """Wire size of a point set under the quadtree representation.

        Results are memoized per frozenset (equal sets hit the same entry
        even as distinct objects); mutable sequences are sized directly.
        """
        if isinstance(points, frozenset):
            cached = self._size_memo.get(points)
            if cached is None:
                if len(self._size_memo) >= 4096:  # long incremental runs stay bounded
                    self._size_memo.clear()
                cached = (self.codec.encoded_size_bits(points) + 7) // 8
                self._size_memo[points] = cached
            return cached
        bits = self.codec.encoded_size_bits(points)
        return (bits + 7) // 8

    # -- flags -------------------------------------------------------------------

    def alias_bit(self, alias: str) -> int:
        """The flag bit for ``alias`` (MSB = first alias)."""
        position = self.aliases.index(alias)
        return 1 << (len(self.aliases) - 1 - position)

    def aliases_of_flags(self, flags: int) -> List[str]:
        """Aliases named by a flag combination."""
        return [alias for alias in self.aliases if flags & self.alias_bit(alias)]


def node_tuple(
    fmt: TupleFormat, node_id: int
) -> Tuple[Optional[FullTupleRecord], int]:
    """Construct a node's tuple and alias flags (Fig. 1 line 8).

    Returns ``(record, flags)``; ``record`` is None (and flags 0) when the
    node belongs to none of the queried relations or fails every alias's
    selection predicates.
    """
    node = fmt.world.network.nodes[node_id]
    if not node.alive or node.is_base_station:
        return None, 0
    flags = 0
    for alias in fmt.aliases:
        relation = fmt.query.relation_of(alias)
        if not node.belongs_to(relation):
            continue
        env = {(alias, name): value for name, value in node.readings.items()}
        if all(pred.evaluate(env) for pred in fmt.query.selection_predicates(alias)):
            flags |= fmt.alias_bit(alias)
    if flags == 0:
        return None, 0
    try:
        values = {name: node.readings[name] for name in fmt.full_attributes}
    except KeyError as missing:
        raise ProtocolError(
            f"node {node_id} lacks reading {missing}; was a snapshot taken?"
        ) from None
    return FullTupleRecord(node_id, flags, values), flags


def oracle_result(context: "ExecutionContext") -> JoinResult:
    """The lossless join result over every currently alive sensor node.

    Computed centrally, bypassing the network entirely — the reference the
    §IV-F completeness accounting measures recall against.  Call it *before*
    injecting faults: it reflects the node population at call time.
    """
    fmt = context.tuple_format()
    tuples: Dict[str, List[Row]] = {alias: [] for alias in fmt.aliases}
    for node_id in context.network.sensor_node_ids:
        record, _flags = node_tuple(fmt, node_id)
        if record is None:
            continue
        for alias in fmt.aliases_of_flags(record.flags):
            tuples[alias].append(Row(record.node_id, dict(record.values)))
    return evaluate_join(context.query, tuples, apply_selections=False)


@dataclass(frozen=True)
class ExecutionContext:
    """Everything a join algorithm needs for one execution."""

    network: Network
    tree: RoutingTree
    world: SensorWorld
    query: JoinQuery

    def tuple_format(self) -> TupleFormat:
        """Derive the wire format for this query."""
        return TupleFormat(self.query, self.world)


@dataclass
class JoinOutcome:
    """Result + cost accounting of one join execution."""

    algorithm: str
    result: JoinResult
    stats: TransmissionStats
    #: Simulated wall-clock duration (critical-path estimate, §VII study).
    response_time_s: float
    #: Algorithm-specific diagnostics (filter sizes, treecut counts, ...).
    details: Dict[str, float] = field(default_factory=dict)

    @property
    def total_transmissions(self) -> int:
        """Network-wide packet transmissions, excluding query dissemination."""
        phases = [p for p in self.stats.tx_packets_by_phase() if p != "query-dissemination"]
        return self.stats.total_tx_packets(phases)

    @property
    def total_bytes(self) -> int:
        """Network-wide payload bytes, excluding query dissemination."""
        phases = [p for p in self.stats.tx_packets_by_phase() if p != "query-dissemination"]
        return self.stats.total_tx_bytes(phases)

    @property
    def total_retransmissions(self) -> int:
        """Network-wide ARQ retransmissions, excluding query dissemination.

        Zero on a lossless channel; under loss this is the extra radio load
        the paper's transmission metric does not see.
        """
        phases = [
            p for p in self.stats.retx_packets_by_phase() if p != "query-dissemination"
        ]
        return self.stats.total_retx_packets(phases)

    def per_phase_transmissions(self) -> Dict[str, int]:
        """Breakdown by protocol phase (Fig. 15)."""
        return self.stats.tx_packets_by_phase()

    def per_phase_retransmissions(self) -> Dict[str, int]:
        """ARQ retransmission breakdown by protocol phase."""
        return self.stats.retx_packets_by_phase()

    def max_node_transmissions(self) -> int:
        """Load of the most loaded node (Fig. 11 headline number)."""
        phases = [p for p in self.stats.tx_packets_by_phase() if p != "query-dissemination"]
        return self.stats.max_node_tx_packets(phases)

    def result_set(self, digits: int = 9) -> frozenset:
        """Uniform cross-engine comparison hook (differential testing).

        Delegates to :meth:`repro.query.evaluate.JoinResult.result_set`:
        two outcomes computed the same result iff their result sets are
        equal, and a partial (faulted) outcome's set is a subset of the
        lossless oracle's.  Every engine returns a :class:`JoinOutcome`,
        so this hook is available regardless of how the engine was driven
        (``execute`` or ``run_round``).
        """
        return self.result.result_set(digits)


class JoinAlgorithm:
    """Interface every join method implements."""

    name = "abstract"

    def execute(self, context: ExecutionContext) -> JoinOutcome:
        """Run one snapshot execution and return result + accounting."""
        raise NotImplementedError

    def instrument(self, telemetry) -> None:
        """Attach a live :class:`~repro.obs.telemetry.Telemetry`.

        The default is a no-op: algorithms without internal instrumentation
        still profit from the channel-level counters the runner wires up.
        Overriders (e.g. SENS-Join) additionally emit phase spans and
        protocol-decision counters.
        """
