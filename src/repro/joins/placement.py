"""Join-location analysis (§IV-E "Design Considerations" and ref. [20]).

The paper fixes both the pre-computation join and the final join at the base
station and justifies it with a cost analysis ("Where in the sensor network
should the join be computed, after all?"): after filtering, the join's
selectivity is low — the result is larger than the (filtered) input — so
shipping the inputs to the powered base station beats computing at an
in-network mediator and shipping the (bigger) result onward.  In-network
placement only wins in the specific scenarios the related work assumes
(small, close input regions, tiny results).

This module makes that argument computable.  The cost model is the classic
byte-hops measure over shortest paths:

    cost(m) = sum over contributing nodes n of  hops(n, m) * tuple_bytes
            + result_rows * result_row_bytes * hops(m, base station)

with ``hops(n, base station)`` taken over the connectivity graph.  The base
station is the special case ``m = base station`` (the second term vanishes —
the result is already where the user is).

:func:`analyze_join_location` evaluates the model for the base station and a
set of in-network candidates and reports the best placement;
:func:`placement_study` (in :mod:`repro.bench.experiments`) reproduces the
paper's conclusion across filtered/unfiltered workloads.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..errors import NetworkError
from ..sim.network import Network
from ..sim.node import BASE_STATION_ID

__all__ = ["PlacementCost", "PlacementReport", "analyze_join_location", "hop_distances"]


def hop_distances(network: Network, source: int) -> Dict[int, int]:
    """BFS hop counts from ``source`` over the alive connectivity graph."""
    if source not in network.nodes:
        raise NetworkError(f"unknown node: {source}")
    hops = {source: 0}
    queue = deque([source])
    while queue:
        current = queue.popleft()
        for neighbour in network.neighbours(current):
            if neighbour not in hops:
                hops[neighbour] = hops[current] + 1
                queue.append(neighbour)
    return hops


@dataclass(frozen=True)
class PlacementCost:
    """Cost decomposition of one candidate join location."""

    location: int
    input_byte_hops: float
    result_byte_hops: float

    @property
    def total(self) -> float:
        """Input collection plus result shipping."""
        return self.input_byte_hops + self.result_byte_hops


@dataclass(frozen=True)
class PlacementReport:
    """Outcome of a placement analysis."""

    base_station: PlacementCost
    best_in_network: PlacementCost
    candidates_evaluated: int

    @property
    def base_station_is_optimal(self) -> bool:
        """True when no evaluated in-network location beats the base station."""
        return self.base_station.total <= self.best_in_network.total

    @property
    def advantage(self) -> float:
        """base-station cost / best in-network cost (<= 1 means BS wins)."""
        best = self.best_in_network.total or 1.0
        return self.base_station.total / best


def _cost_at(
    network: Network,
    location: int,
    contributors: Sequence[int],
    tuple_bytes: int,
    result_rows: int,
    result_row_bytes: int,
    to_base: Mapping[int, int],
) -> PlacementCost:
    hops = hop_distances(network, location)
    input_cost = 0.0
    for node_id in contributors:
        try:
            input_cost += hops[node_id] * tuple_bytes
        except KeyError:
            raise NetworkError(
                f"contributor {node_id} cannot reach candidate {location}"
            ) from None
    result_cost = float(result_rows * result_row_bytes * to_base.get(location, 0))
    return PlacementCost(location, input_cost, result_cost)


def analyze_join_location(
    network: Network,
    contributors: Sequence[int],
    tuple_bytes: int,
    result_rows: int,
    result_row_bytes: int,
    candidates: Optional[Iterable[int]] = None,
    max_candidates: int = 64,
) -> PlacementReport:
    """Compare the base station against in-network join locations.

    ``contributors`` are the nodes whose tuples must reach the join location
    (post-filtering: the nodes the filter kept; pre-filtering: everyone).
    ``candidates`` defaults to a deterministic sample of the contributors
    plus the node nearest their centroid — the locations a mediated join
    would plausibly pick.
    """
    contributors = list(contributors)
    to_base = hop_distances(network, BASE_STATION_ID)

    if candidates is None:
        chosen: List[int] = []
        if contributors:
            xs = [network.nodes[n].x for n in contributors]
            ys = [network.nodes[n].y for n in contributors]
            cx, cy = sum(xs) / len(xs), sum(ys) / len(ys)
            centroid_node = min(
                contributors,
                key=lambda n: (network.nodes[n].x - cx) ** 2
                + (network.nodes[n].y - cy) ** 2,
            )
            chosen.append(centroid_node)
            stride = max(1, len(contributors) // max_candidates)
            chosen.extend(sorted(contributors)[::stride])
        candidates = chosen or network.sensor_node_ids[:max_candidates]

    base_cost = _cost_at(
        network, BASE_STATION_ID, contributors, tuple_bytes,
        result_rows, result_row_bytes, to_base,
    )
    best: Optional[PlacementCost] = None
    count = 0
    for candidate in dict.fromkeys(candidates):  # dedupe, keep order
        if candidate == BASE_STATION_ID:
            continue
        cost = _cost_at(
            network, candidate, contributors, tuple_bytes,
            result_rows, result_row_bytes, to_base,
        )
        count += 1
        if best is None or cost.total < best.total:
            best = cost
    if best is None:
        best = base_cost
    return PlacementReport(base_cost, best, count)
