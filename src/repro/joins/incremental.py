"""Incremental SENS-Join for continuous queries (the paper's future work).

§VIII: "As follow-on work we currently investigate if the filtering can be
optimized for continuous queries by exploiting temporal correlations."
This module implements that optimization on top of the snapshot protocol.

Observation: under a ``SAMPLE PERIOD`` query the *quantized* join-attribute
points barely change between rounds when the physical fields drift slowly —
a reading must cross a quantization-cell boundary before its point moves.
The pre-computation can therefore be made incremental:

* **Delta collection.**  Every non-exited node remembers, per child, the
  point set that child last reported, plus the set it last sent upward.
  Each round it reconstructs its current subtree set and transmits only the
  *difference* (added / removed flagged points, each quadtree-encoded, plus
  a one-byte header) — or the full set when that happens to be smaller
  (always true in round 0).  Nodes in Treecut regions still ship their
  complete tuples every round: their payloads are below ``D_max`` anyway
  and the proxy needs the fresh values.
* **Filter-change suppression.**  A node re-broadcasts the pruned filter to
  its children only when it differs from what it broadcast last round;
  silence means "reuse the cached filter" (the phases are globally
  scheduled, so silence is unambiguous).
* **Final phase unchanged.**  Result tuples must flow every round — the
  raw values drift even when the quantized points do not — so step 2 runs
  exactly as in the snapshot protocol.

Every round's result is still exactly the external join of that round's
snapshot (the same conservative-filter argument as for the snapshot
protocol; the deltas reconstruct identical point sets, which a debug check
can verify).

Memory cost: the per-child caches exceed the snapshot protocol's 500-byte
cap — this is precisely the trade the paper left as future work.  The
per-round outcome reports the worst per-node cache size
(``details["cache_bytes_max"]``) so the trade stays visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..codec.quadtree import FlaggedPoint
from ..codec.setops import union_points
from ..data.relations import SensorWorld
from ..query.query import JoinQuery
from ..routing.ctp import build_tree
from ..routing.tree import RoutingTree
from ..sim.network import Network
from ..sim.node import BASE_STATION_ID
from .base import FullTupleRecord, JoinOutcome, TupleFormat, node_tuple
from .filterbuild import build_join_filter
from .sensjoin import PHASE_COLLECTION, PHASE_FILTER, PHASE_FINAL, SensJoin, SensJoinConfig

__all__ = ["IncrementalSensJoin", "DELTA_HEADER_BYTES"]

#: Header distinguishing a full-set payload from an added/removed delta.
DELTA_HEADER_BYTES = 1


@dataclass
class _NodeCache:
    """Cross-round memory of one non-exited node."""

    child_sets: Dict[int, FrozenSet[FlaggedPoint]] = field(default_factory=dict)
    last_sent: FrozenSet[FlaggedPoint] = frozenset()
    last_filter_broadcast: Optional[FrozenSet[FlaggedPoint]] = None
    exited: bool = False

    def size_bytes(self, fmt: TupleFormat) -> int:
        """Approximate memory held for the incremental bookkeeping."""
        total = fmt.encoded_points_bytes(self.last_sent)
        for points in self.child_sets.values():
            total += fmt.encoded_points_bytes(points)
        if self.last_filter_broadcast is not None:
            total += fmt.encoded_points_bytes(self.last_filter_broadcast)
        return total


class IncrementalSensJoin:
    """Stateful continuous executor; one instance per running query.

    Usage::

        executor = IncrementalSensJoin(network, world, query)
        outcomes = [executor.run_round(t) for t in (0, 30, 60, 90)]
    """

    def __init__(
        self,
        network: Network,
        world: SensorWorld,
        query: JoinQuery,
        config: Optional[SensJoinConfig] = None,
        tree: Optional[RoutingTree] = None,
        tree_seed: int = 0,
    ):
        if config is None:
            # Treecut optimises one-shot executions: it trades join-attribute
            # messages near the leaves for complete tuples.  Under temporal
            # suppression that trade inverts — cut regions would have to ship
            # their complete tuples *every round*, while an uncut leaf whose
            # quantized point is unchanged sends nothing at all.  The
            # incremental executor therefore disables Treecut by default.
            config = SensJoinConfig(dmax_bytes=0)
        if config.representation != "quadtree":
            raise ValueError("the incremental executor requires the quadtree representation")
        self.network = network
        self.world = world
        self.query = query
        self.config = config
        self.tree = tree if tree is not None else build_tree(network, seed=tree_seed)
        self.fmt = TupleFormat(query, world)
        self.caches: Dict[int, _NodeCache] = {
            node_id: _NodeCache() for node_id in self.tree.node_ids
        }
        self.round_index = 0

    # -- public API ---------------------------------------------------------------

    def run_round(self, snapshot_time: float) -> JoinOutcome:
        """Execute one round over a fresh snapshot; returns its outcome."""
        network, tree, fmt = self.network, self.tree, self.fmt
        network.reset_accounting()
        self.world.take_snapshot(snapshot_time)
        details: Dict[str, float] = {"round": float(self.round_index)}

        records, own_points, proxy_map = self._collection_phase(details)

        bs_cache = self.caches[BASE_STATION_ID]
        bs_points: FrozenSet[FlaggedPoint] = frozenset()
        for points in bs_cache.child_sets.values():
            bs_points = union_points(bs_points, points)
        bs_points = union_points(bs_points, self._project(proxy_map[BASE_STATION_ID]))

        join_filter = build_join_filter(fmt, bs_points)
        details["filter_points"] = float(len(join_filter))

        filter_at = self._filter_phase(join_filter, details)

        outcome = self._final_phase(records, own_points, proxy_map, filter_at, details)
        details["cache_bytes_max"] = float(
            max(cache.size_bytes(fmt) for cache in self.caches.values())
        )
        outcome.details.update(details)
        self.round_index += 1
        return outcome

    # -- phase 1a: delta collection --------------------------------------------------

    def _project(self, records: List[FullTupleRecord]) -> FrozenSet[FlaggedPoint]:
        points: FrozenSet[FlaggedPoint] = frozenset()
        for record in records:
            join_values = {k: record.values[k] for k in self.fmt.join_attributes}
            points = union_points(points, [(record.flags, self.fmt.quantizer.encode(join_values))])
        return points

    def _payload_bytes(
        self, current: FrozenSet[FlaggedPoint], previous: FrozenSet[FlaggedPoint]
    ) -> Tuple[int, str]:
        """Wire cost of reporting ``current`` given the receiver knows
        ``previous``: the cheaper of a full set or an added/removed delta."""
        fmt = self.fmt
        full = DELTA_HEADER_BYTES + fmt.encoded_points_bytes(current)
        added = current - previous
        removed = previous - current
        if not added and not removed:
            return 0, "unchanged"
        delta = (
            DELTA_HEADER_BYTES
            + fmt.encoded_points_bytes(added)
            + fmt.encoded_points_bytes(removed)
        )
        if delta < full:
            return delta, "delta"
        return full, "full"

    def _collection_phase(self, details: Dict[str, float]):
        network, tree, fmt = self.network, self.tree, self.fmt
        channel = network.channel
        first_round = self.round_index == 0
        treecut_enabled = self.config.dmax_bytes > 0

        records: Dict[int, Optional[FullTupleRecord]] = {}
        own_points: Dict[int, Optional[FlaggedPoint]] = {}
        proxy_map: Dict[int, List[FullTupleRecord]] = {}
        full_up: Dict[int, List[FullTupleRecord]] = {}
        full_bytes_up: Dict[int, int] = {}
        delta_messages = 0
        unchanged_subtrees = 0

        for node_id in tree.post_order():
            cache = self.caches[node_id]
            children = tree.children(node_id)

            received_full: List[FullTupleRecord] = []
            received_full_bytes = 0
            all_children_full = True
            for child in children:
                if self.caches[child].exited:
                    received_full.extend(full_up.pop(child, []))
                    received_full_bytes += full_bytes_up.pop(child, 0)
                else:
                    all_children_full = False

            record, flags = node_tuple(fmt, node_id)
            records[node_id] = record
            own_points[node_id] = (
                (flags, fmt.quantizer.encode({k: record.values[k] for k in fmt.join_attributes}))
                if record is not None
                else None
            )
            own_bytes = fmt.full_tuple_bytes if record is not None else 0

            if node_id == BASE_STATION_ID:
                proxy_map[node_id] = received_full
                continue

            # Treecut membership is decided in round 0 and frozen: the byte
            # volumes it depends on are constant across rounds.
            if first_round:
                cache.exited = (
                    treecut_enabled
                    and all_children_full
                    and received_full_bytes + own_bytes <= self.config.dmax_bytes
                )
            if cache.exited:
                payload_records = received_full + ([record] if record else [])
                payload_bytes = fmt.full_tuples_bytes(len(payload_records))
                channel.unicast(node_id, tree.parent(node_id), payload_bytes, PHASE_COLLECTION)
                full_up[node_id] = payload_records
                full_bytes_up[node_id] = payload_bytes
                continue

            proxy_map[node_id] = received_full
            current: FrozenSet[FlaggedPoint] = frozenset()
            for points in cache.child_sets.values():
                current = union_points(current, points)
            current = union_points(current, self._project(received_full))
            if own_points[node_id] is not None:
                current = union_points(current, [own_points[node_id]])

            payload_bytes, kind = self._payload_bytes(current, cache.last_sent)
            if kind == "unchanged":
                unchanged_subtrees += 1
            elif kind == "delta":
                delta_messages += 1
            channel.unicast(node_id, tree.parent(node_id), payload_bytes, PHASE_COLLECTION)
            cache.last_sent = current
            parent_cache = self.caches[tree.parent(node_id)]
            parent_cache.child_sets[node_id] = current

        details["collection_delta_messages"] = float(delta_messages)
        details["collection_unchanged_subtrees"] = float(unchanged_subtrees)
        return records, own_points, proxy_map

    # -- phase 1b: filter with change suppression -------------------------------------

    def _filter_phase(self, join_filter, details):
        from ..codec.setops import intersect_points

        network, tree = self.network, self.tree
        channel = network.channel
        filter_at: Dict[int, FrozenSet[FlaggedPoint]] = {BASE_STATION_ID: join_filter}
        broadcasts = 0
        suppressed = 0

        for node_id in tree.pre_order():
            cache = self.caches[node_id]
            if cache.exited:
                continue
            incoming = filter_at.get(node_id)
            awake_children = [
                child for child in tree.children(node_id) if not self.caches[child].exited
            ]
            if not awake_children:
                continue
            if incoming is None:
                incoming = frozenset()
            subtree_points: FrozenSet[FlaggedPoint] = frozenset()
            for points in cache.child_sets.values():
                subtree_points = union_points(subtree_points, points)
            subtree_filter = intersect_points(incoming, subtree_points)
            if subtree_filter == (cache.last_filter_broadcast or frozenset()):
                # Unchanged since last round: children reuse their cache.
                suppressed += 1
                for child in awake_children:
                    filter_at[child] = subtree_filter
                continue
            cache.last_filter_broadcast = subtree_filter
            for child in awake_children:
                filter_at[child] = subtree_filter
            if subtree_filter:
                payload = DELTA_HEADER_BYTES + self.fmt.encoded_points_bytes(subtree_filter)
            else:
                payload = DELTA_HEADER_BYTES  # explicit "filter now empty"
            channel.broadcast(node_id, awake_children, payload, PHASE_FILTER)
            broadcasts += 1
        details["filter_broadcasts"] = float(broadcasts)
        details["filter_suppressed"] = float(suppressed)
        return filter_at

    # -- phase 2: unchanged ----------------------------------------------------------

    def _final_phase(self, records, own_points, proxy_map, filter_at, details):
        from ..query.evaluate import Row, evaluate_join

        network, tree, fmt = self.network, self.tree, self.fmt
        channel = network.channel
        carried: Dict[int, List[FullTupleRecord]] = {}
        carried_bytes: Dict[int, int] = {}

        for node_id in tree.post_order():
            cache = self.caches[node_id]
            if cache.exited:
                continue
            payload = 0
            collected: List[FullTupleRecord] = []
            for child in tree.children(node_id):
                if self.caches[child].exited:
                    continue
                payload += carried_bytes.pop(child, 0)
                collected.extend(carried.pop(child, []))

            if node_id == BASE_STATION_ID:
                collected.extend(proxy_map[node_id])
                carried[node_id] = collected
                continue

            incoming = filter_at.get(node_id) or frozenset()
            filter_flags: Dict[int, int] = {}
            for flags, z in incoming:
                filter_flags[z] = filter_flags.get(z, 0) | flags
            matched: List[FullTupleRecord] = []
            record = records[node_id]
            own_point = own_points[node_id]
            if record is not None and own_point is not None:
                if filter_flags.get(own_point[1], 0) & own_point[0]:
                    matched.append(record)
            for proxied in proxy_map.get(node_id, []):
                join_values = {k: proxied.values[k] for k in fmt.join_attributes}
                z = fmt.quantizer.encode(join_values)
                if filter_flags.get(z, 0) & proxied.flags:
                    matched.append(proxied)
            collected.extend(matched)
            payload += fmt.full_tuples_bytes(len(matched))
            channel.unicast(node_id, tree.parent(node_id), payload, PHASE_FINAL)
            carried[node_id] = collected
            carried_bytes[node_id] = payload

        arrived = carried[BASE_STATION_ID]
        tuples_by_alias: Dict[str, List[Row]] = {alias: [] for alias in fmt.aliases}
        for record in arrived:
            for alias in fmt.aliases_of_flags(record.flags):
                tuples_by_alias[alias].append(Row(record.node_id, dict(record.values)))
        result = evaluate_join(self.query, tuples_by_alias, apply_selections=False)
        details["final_tuples_shipped"] = float(len(arrived))

        height = tree.height
        from .. import constants

        response = 3 * height * constants.DEFAULT_LEVEL_SLOT_S
        return JoinOutcome(
            algorithm="sens-join[incremental]",
            result=result,
            stats=network.stats,
            response_time_s=response,
            details={},
        )
