"""Algorithm selection from the paper's cost structure (Fig. 10 as a model).

The paper's bottom line is a *regime split*: "SENS-Join is more efficient
than the state-of-the-art approach unless a high fraction of the input
relations (ca. 60% - 80%) joins" — below the break-even use SENS-Join, above
it the external join is optimal.  A deployment that knows (or can estimate,
e.g. from the previous round of a continuous query) the expected result
fraction can therefore *plan*.

:func:`estimate_costs` prices both methods analytically from the routing
tree — no execution needed:

* **external** — every node ships its subtree's full tuples:
  ``sum_n ceil(full_bytes * (desc(n) + 1) / P)``, exact for the byte-packing
  model this library uses.
* **SENS-Join** — the collection floor (about one packet per node, §VI's
  "lower bound" argument; Treecut keeps the leaves at exactly one), plus a
  result-fraction-proportional share of the external cost for the final
  phase, plus a filter term that also scales with the fraction.

:func:`recommend_algorithm` compares the two and returns the cheaper
method's name.  The estimate is a heuristic — benchmarks check that its
*decisions* (not its absolute numbers) match reality at both extremes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from ..routing.tree import RoutingTree
from .base import TupleFormat

__all__ = ["CostEstimate", "estimate_costs", "recommend_algorithm"]


@dataclass(frozen=True)
class CostEstimate:
    """Predicted transmission counts for both methods at one fraction."""

    external_tx: float
    sens_tx: float
    fraction: float

    @property
    def sens_wins(self) -> bool:
        """True when SENS-Join is predicted to be cheaper."""
        return self.sens_tx < self.external_tx

    @property
    def predicted_savings(self) -> float:
        """1 - sens/external (negative when the external join wins)."""
        if self.external_tx <= 0:
            return 0.0
        return 1.0 - self.sens_tx / self.external_tx


def estimate_costs(
    tree: RoutingTree,
    fmt: TupleFormat,
    expected_fraction: float,
    packet_bytes: int,
) -> CostEstimate:
    """Analytic cost prediction; see the module docstring."""
    if not 0.0 <= expected_fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1]: {expected_fraction}")
    descendants = tree.descendant_counts()
    node_ids = [n for n in tree.node_ids if n != tree.root]
    full = fmt.full_tuple_bytes

    external = sum(
        math.ceil(full * (descendants[n] + 1) / packet_bytes) for n in node_ids
    )

    # Collection floor: ~one packet per node (quadtree keeps almost every
    # stream within a packet; near-root overflow adds the join-ratio share).
    ratio = fmt.raw_join_tuple_bytes / max(full, 1)
    collection = len(node_ids) + ratio * 0.5 * max(external - len(node_ids), 0)
    # Final phase: the contributing fraction of the external volume.
    final = expected_fraction * external
    # Filter: flows only into contributing regions; scale with the fraction
    # but never beyond one packet per interior node.
    filter_cost = min(expected_fraction * 4.0, 1.0) * 0.3 * len(node_ids)
    return CostEstimate(
        external_tx=float(external),
        sens_tx=collection + final + filter_cost,
        fraction=expected_fraction,
    )


def recommend_algorithm(
    tree: RoutingTree,
    fmt: TupleFormat,
    expected_fraction: float,
    packet_bytes: int,
) -> Tuple[str, CostEstimate]:
    """The cheaper method for the expected result fraction.

    Returns ``("sens-join" | "external-join", estimate)``.
    """
    estimate = estimate_costs(tree, fmt, expected_fraction, packet_bytes)
    name = "sens-join" if estimate.sens_wins else "external-join"
    return name, estimate
