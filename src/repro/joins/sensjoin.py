"""SENS-Join: the paper's general-purpose in-network join (§IV).

The protocol in three steps, exactly following Figs. 1-3:

1a. **Join-Attribute-Collection** (post-order up the routing tree).  Near the
    leaves, *Treecut* applies: as long as the accumulated payload of complete
    tuples stays within ``D_max`` (30 bytes) a node forwards complete tuples
    and exits the query.  The first node where the volume would exceed
    ``D_max`` stores the received complete tuples (it becomes a *proxy* for
    that subtree), remembers its children's join-attribute points
    (*SubtreeJoinAtts*, capped at 500 bytes), converts everything to
    quantized join-attribute points, adds its own point, and sends the set
    upward in the compact quadtree representation.

1b. **Filter-Dissemination** (pre-order down the tree).  The base station
    joins the collected points conservatively (cell-interval semantics) into
    the *join filter* and broadcasts it.  *Selective Filter Forwarding*: each
    node intersects the incoming filter with its SubtreeJoinAtts and
    broadcasts only a non-empty intersection — the filter shrinks on the way
    down and entire subtrees without result tuples never hear it.

2.  **Final-Result-Computation** (post-order).  A node whose own point is in
    the filter (in a role it has) sends its complete tuple — stored since
    step 1a, because "it is not possible to re-acquire it from the sensors"
    (§IV-D); a proxy checks and sends on behalf of its cut-off children.
    Tuples aggregate into packets up the tree; the base station computes the
    exact final join.

Knobs (all default to the paper's values) support the ablation studies:
``dmax_bytes`` (Treecut threshold; 0 disables Treecut), ``subtree_limit_bytes``
(Selective-Filter-Forwarding memory; 0 disables pruning), and
``representation`` (``"quadtree"`` | ``"raw"`` | ``"zlib"`` | ``"bzip2"`` —
the Fig. 16 / §VI-B comparisons).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from .. import constants
from ..codec.compression import compressed_size, encode_raw_tuples
from ..codec.quadtree import FlaggedPoint
from ..codec.setops import intersect_points, union_points
from ..errors import ProtocolError
from ..obs.telemetry import NULL_TELEMETRY, Telemetry
from ..query.evaluate import Row, evaluate_join
from ..sim.node import BASE_STATION_ID
from ..sim.trace import (
    FILTER_BROADCAST,
    FILTER_PRUNED,
    FINAL_SEND,
    NullTracer,
    PROXY_STORE,
    SEND_JOIN_ATTS,
    SUBTREE_OVERFLOW,
    SUBTREE_STORE,
    TREECUT_EXIT,
    Tracer,
)
from .base import (
    ExecutionContext,
    FullTupleRecord,
    JoinAlgorithm,
    JoinOutcome,
    TupleFormat,
    node_tuple,
)
from .filterbuild import build_join_filter

__all__ = ["SensJoin", "SensJoinConfig", "PHASE_COLLECTION", "PHASE_FILTER", "PHASE_FINAL"]

PHASE_COLLECTION = "join-attribute-collection"
PHASE_FILTER = "filter-dissemination"
PHASE_FINAL = "final-result"

_REPRESENTATIONS = ("quadtree", "raw", "zlib", "bzip2")


@dataclass(frozen=True)
class SensJoinConfig:
    """Tunable parameters (defaults = the paper's choices)."""

    dmax_bytes: int = constants.DEFAULT_TREECUT_DMAX_BYTES
    subtree_limit_bytes: int = constants.DEFAULT_SUBTREE_FILTER_LIMIT_BYTES
    representation: str = "quadtree"

    def __post_init__(self) -> None:
        if self.dmax_bytes < 0 or self.subtree_limit_bytes < 0:
            raise ValueError("thresholds must be non-negative")
        if self.representation not in _REPRESENTATIONS:
            raise ValueError(
                f"unknown representation {self.representation!r}; "
                f"choose from {_REPRESENTATIONS}"
            )


@dataclass
class _JoinAttrPayload:
    """What a non-treecut node sends upward in step 1a."""

    points: FrozenSet[FlaggedPoint]
    tuple_count: int  # raw (pre-dedup) tuple count, for non-quadtree sizing
    raw_rows: List[Tuple[float, ...]] = field(default_factory=list)


@dataclass
class _NodeState:
    """Per-node protocol state surviving between the three wakeups."""

    record: Optional[FullTupleRecord] = None
    own_point: Optional[FlaggedPoint] = None
    exited: bool = False  # treecut: done after step 1a
    proxy_records: List[FullTupleRecord] = field(default_factory=list)
    subtree_atts: Optional[FrozenSet[FlaggedPoint]] = None
    finish_1a: float = 0.0
    filter_received: Optional[FrozenSet[FlaggedPoint]] = None
    filter_arrival: float = 0.0


class SensJoin(JoinAlgorithm):
    """The SENS-Join protocol (see module docstring)."""

    name = "sens-join"

    def __init__(
        self,
        config: SensJoinConfig = SensJoinConfig(),
        tracer: Optional[Tracer] = None,
        telemetry: Optional[Telemetry] = None,
        filter_override: Optional[
            Callable[[TupleFormat, FrozenSet[FlaggedPoint]], FrozenSet[FlaggedPoint]]
        ] = None,
    ):
        self.config = config
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        if tracer is not None:
            self.tracer = tracer
        else:
            self.tracer = self.telemetry.tracer
        #: Filter-reuse hook (multi-query work sharing): called with
        #: ``(fmt, collected_points)`` in place of ``build_join_filter``.
        #: The returned set must be a *superset* of the single-query filter
        #: — conservative semantics keep the final join exact under any
        #: superset, which is what lets a broker disseminate one composed
        #: filter on behalf of several queries.
        self.filter_override = filter_override
        #: The complete tuples that reached the base station in step 2 of
        #: the most recent :meth:`execute` (set by ``_final_phase``).  A
        #: multi-query broker re-evaluates each member query exactly over
        #: this one arrived set.
        self.last_arrived_records: List[FullTupleRecord] = []
        if config.representation != "quadtree":
            self.name = f"sens-join[{config.representation}]"

    def instrument(self, telemetry: Telemetry) -> None:
        """Attach a live telemetry (spans, counters, and its tracer)."""
        self.telemetry = telemetry
        self.tracer = telemetry.tracer

    # -- payload sizing under the configured representation ---------------------

    def _joinatts_bytes(self, fmt: TupleFormat, payload: _JoinAttrPayload) -> int:
        if not self.telemetry.enabled:
            return self._joinatts_bytes_raw(fmt, payload)
        t0 = time.perf_counter()
        size = self._joinatts_bytes_raw(fmt, payload)
        self._observe_codec("join-atts", size, time.perf_counter() - t0)
        return size

    def _joinatts_bytes_raw(self, fmt: TupleFormat, payload: _JoinAttrPayload) -> int:
        representation = self.config.representation
        if representation == "quadtree":
            return fmt.encoded_points_bytes(payload.points)
        if representation == "raw":
            return payload.tuple_count * fmt.raw_join_tuple_bytes
        raw = encode_raw_tuples(
            (dict(zip(fmt.join_attributes, row)) for row in payload.raw_rows),
            fmt.join_attributes,
        )
        return compressed_size(raw, representation)

    def _filter_bytes(self, fmt: TupleFormat, points: FrozenSet[FlaggedPoint]) -> int:
        if not self.telemetry.enabled:
            return self._filter_bytes_raw(fmt, points)
        t0 = time.perf_counter()
        size = self._filter_bytes_raw(fmt, points)
        self._observe_codec("filter", size, time.perf_counter() - t0)
        return size

    def _filter_bytes_raw(self, fmt: TupleFormat, points: FrozenSet[FlaggedPoint]) -> int:
        if self.config.representation == "quadtree":
            return fmt.encoded_points_bytes(points)
        # Non-quadtree representations ship the filter as raw (quantized
        # representative) tuples; compression never pays off at filter sizes.
        return len(points) * fmt.raw_join_tuple_bytes

    def _observe_codec(self, kind: str, size: int, wall_s: float) -> None:
        """Feed one encode into the codec histograms (telemetry enabled only)."""
        reg = self.telemetry.registry
        rep = self.config.representation
        reg.histogram("codec_encode_wall_seconds", kind=kind, representation=rep).observe(wall_s)
        reg.histogram("codec_payload_bytes", kind=kind, representation=rep).observe(size)

    # -- main protocol -------------------------------------------------------------

    def execute(self, context: ExecutionContext) -> JoinOutcome:
        """Run one snapshot execution of the three-step protocol."""
        network, tree = context.network, context.tree
        fmt = context.tuple_format()
        channel = network.channel
        keep_raw = self.config.representation in ("zlib", "bzip2")

        states: Dict[int, _NodeState] = {node_id: _NodeState() for node_id in tree.node_ids}
        details: Dict[str, float] = {}
        tel = self.telemetry

        with tel.span(
            PHASE_COLLECTION, node_id=BASE_STATION_ID, start=0.0, protocol=self.name
        ) as sp:
            bs_points, bs_finish = self._collection_phase(
                context, fmt, states, keep_raw, details
            )
            sp.end = bs_finish

        details["collection_finish_s"] = bs_finish
        join_filter = self._build_filter(fmt, bs_points)
        details["filter_points"] = float(len(join_filter))
        details["filter_bytes"] = float(self._filter_bytes(fmt, join_filter))

        with tel.span(
            PHASE_FILTER, node_id=BASE_STATION_ID, start=bs_finish, protocol=self.name
        ) as sp:
            filter_finish = self._filter_phase(
                context, fmt, states, join_filter, bs_finish, details
            )
            sp.end = filter_finish

        with tel.span(
            PHASE_FINAL, node_id=BASE_STATION_ID, start=filter_finish, protocol=self.name
        ) as sp:
            result, response_time = self._final_phase(context, fmt, states, details)
            sp.end = max(filter_finish, response_time)

        # Three epoch-scheduled phases (collection, dissemination, final
        # collection; Fig. 1's sleepUntilNextStep boundaries) plus the
        # serialisation overflow accumulated along the critical path.
        phase_overhead = 3 * tree.height * constants.DEFAULT_LEVEL_SLOT_S
        return JoinOutcome(
            algorithm=self.name,
            result=result,
            stats=network.stats,
            response_time_s=phase_overhead + response_time,
            details=details,
        )

    def _build_filter(
        self, fmt: TupleFormat, points: FrozenSet[FlaggedPoint]
    ) -> FrozenSet[FlaggedPoint]:
        """The filter to disseminate: single-query build, or the override."""
        if self.filter_override is not None:
            return self.filter_override(fmt, points)
        return build_join_filter(fmt, points)

    # -- step 1a -------------------------------------------------------------------

    def _collection_phase(
        self,
        context: ExecutionContext,
        fmt: TupleFormat,
        states: Dict[int, _NodeState],
        keep_raw: bool,
        details: Dict[str, float],
    ) -> Tuple[FrozenSet[FlaggedPoint], float]:
        """Post-order collection with Treecut; returns the base station's
        point set and the critical-path finish time."""
        network, tree = context.network, context.tree
        channel = network.channel
        treecut_enabled = self.config.dmax_bytes > 0
        reg = self.telemetry.registry

        # In-flight child payloads, keyed by sender.
        full_up: Dict[int, List[FullTupleRecord]] = {}
        atts_up: Dict[int, _JoinAttrPayload] = {}
        bytes_up: Dict[int, int] = {}
        proxies = 0
        exited = 0

        for node_id in tree.post_order():
            state = states[node_id]
            children = tree.children(node_id)
            children_finish = max(
                (states[child].finish_1a for child in children), default=0.0
            )

            received_full: List[FullTupleRecord] = []
            received_atts: FrozenSet[FlaggedPoint] = frozenset()
            received_tuple_count = 0
            received_raw: List[Tuple[float, ...]] = []
            all_children_full = True
            received_bytes = 0
            for child in children:
                received_bytes += bytes_up.pop(child)
                if child in full_up:
                    received_full.extend(full_up.pop(child))
                else:
                    payload = atts_up.pop(child)
                    received_atts = union_points(received_atts, payload.points)
                    received_tuple_count += payload.tuple_count
                    received_raw.extend(payload.raw_rows)
                    all_children_full = False

            state.record, flags = node_tuple(fmt, node_id)
            own_bytes = fmt.full_tuple_bytes if state.record is not None else 0
            if state.record is not None:
                join_values = {
                    name: state.record.values[name] for name in fmt.join_attributes
                }
                state.own_point = (flags, fmt.quantizer.encode(join_values))

            if node_id == BASE_STATION_ID:
                # The base station acts like a proxy for full tuples it
                # received and keeps its children's points as SubtreeJoinAtts.
                state.proxy_records = received_full
                state.subtree_atts = received_atts
                proxy_points = self._project_records(fmt, received_full)
                bs_points = union_points(received_atts, proxy_points)
                state.finish_1a = children_finish
                details["treecut_proxies"] = float(proxies)
                details["treecut_exited"] = float(exited)
                return bs_points, children_finish

            total_full_bytes = received_bytes + own_bytes
            treecut_applies = (
                treecut_enabled
                and all_children_full
                and total_full_bytes <= self.config.dmax_bytes
            )
            if treecut_applies:
                records = received_full + ([state.record] if state.record else [])
                payload_bytes = fmt.full_tuples_bytes(len(records))
                channel.unicast(node_id, tree.parent(node_id), payload_bytes, PHASE_COLLECTION)
                full_up[node_id] = records
                bytes_up[node_id] = payload_bytes
                state.exited = True
                exited += 1
                state.finish_1a = children_finish + channel.last_send_latency_s
                if reg.enabled:
                    reg.counter("treecut_exits_total", protocol=self.name).inc()
                self.tracer.emit(
                    state.finish_1a, node_id, TREECUT_EXIT,
                    tuples=len(records), bytes=payload_bytes,
                )
                continue

            # Act as proxy for complete tuples received from cut children.
            state.proxy_records = received_full
            if received_full:
                proxies += 1
                if reg.enabled:
                    reg.counter("proxy_stores_total", protocol=self.name).inc()
                    reg.counter(
                        "proxied_tuples_total", protocol=self.name
                    ).inc(len(received_full))
                self.tracer.emit(
                    children_finish, node_id, PROXY_STORE, tuples=len(received_full)
                )
            # Selective Filter Forwarding memory (Fig. 2 line 21): keep the
            # children's join-attribute points, if they fit the budget.
            if received_atts and self.config.subtree_limit_bytes > 0:
                stored_size = fmt.encoded_points_bytes(received_atts)
                if stored_size <= self.config.subtree_limit_bytes:
                    state.subtree_atts = received_atts
                    self.tracer.emit(
                        children_finish, node_id, SUBTREE_STORE, bytes=stored_size
                    )
                else:
                    # Memory cap exceeded (paper: happens "close to the root
                    # only"); this node cannot prune the filter.
                    state.subtree_atts = None
                    if reg.enabled:
                        reg.counter("subtree_overflows_total", protocol=self.name).inc()
                    self.tracer.emit(
                        children_finish, node_id, SUBTREE_OVERFLOW, bytes=stored_size
                    )
            elif self.config.subtree_limit_bytes > 0:
                state.subtree_atts = received_atts  # empty set, costs nothing
            else:
                state.subtree_atts = None

            proxy_points = self._project_records(fmt, received_full)
            points = union_points(received_atts, proxy_points)
            if state.own_point is not None:
                points = union_points(points, [state.own_point])
            tuple_count = received_tuple_count + len(received_full) + (
                1 if state.record is not None else 0
            )
            raw_rows = received_raw
            if keep_raw:
                raw_rows = list(received_raw)
                for record in received_full:
                    raw_rows.append(
                        tuple(record.values[name] for name in fmt.join_attributes)
                    )
                if state.record is not None:
                    raw_rows.append(
                        tuple(state.record.values[name] for name in fmt.join_attributes)
                    )
            payload = _JoinAttrPayload(points, tuple_count, raw_rows)
            payload_bytes = self._joinatts_bytes(fmt, payload)
            channel.unicast(node_id, tree.parent(node_id), payload_bytes, PHASE_COLLECTION)
            atts_up[node_id] = payload
            bytes_up[node_id] = payload_bytes
            state.finish_1a = children_finish + channel.last_send_latency_s
            self.tracer.emit(
                state.finish_1a, node_id, SEND_JOIN_ATTS,
                points=len(points), bytes=payload_bytes,
            )

        raise ProtocolError("post-order traversal never reached the base station")

    def _project_records(
        self, fmt: TupleFormat, records: List[FullTupleRecord]
    ) -> FrozenSet[FlaggedPoint]:
        """pi_JoinAttr over proxied complete tuples (Fig. 2 line 22)."""
        points: FrozenSet[FlaggedPoint] = frozenset()
        for record in records:
            join_values = {name: record.values[name] for name in fmt.join_attributes}
            point = (record.flags, fmt.quantizer.encode(join_values))
            points = union_points(points, [point])
        return points

    # -- step 1b -------------------------------------------------------------------

    def _filter_phase(
        self,
        context: ExecutionContext,
        fmt: TupleFormat,
        states: Dict[int, _NodeState],
        join_filter: FrozenSet[FlaggedPoint],
        start_time: float,
        details: Dict[str, float],
    ) -> float:
        """Pre-order dissemination with Selective Filter Forwarding.

        Returns the time the filter wave dies out (the latest arrival at any
        node that heard it) — the phase-span boundary.
        """
        network, tree = context.network, context.tree
        channel = network.channel
        pruning_enabled = self.config.subtree_limit_bytes > 0
        reg = self.telemetry.registry

        states[BASE_STATION_ID].filter_received = join_filter
        states[BASE_STATION_ID].filter_arrival = start_time
        broadcasts = 0
        pruned_subtrees = 0
        last_arrival = start_time
        # Sibling subtrees regularly receive the same filter and store equal
        # SubtreeJoinAtts (dense deployments quantize to the same cells), so
        # the prune check repeats; memoize it for this wave.
        intersect_memo: Dict[
            Tuple[FrozenSet[FlaggedPoint], FrozenSet[FlaggedPoint]],
            FrozenSet[FlaggedPoint],
        ] = {}

        for node_id in tree.pre_order():
            state = states[node_id]
            if state.exited:
                continue
            incoming = state.filter_received
            if incoming is None or not incoming:
                continue
            awake_children = [
                child for child in tree.children(node_id) if not states[child].exited
            ]
            if not awake_children:
                continue
            if pruning_enabled and state.subtree_atts is not None:
                memo_key = (incoming, state.subtree_atts)
                subtree_filter = intersect_memo.get(memo_key)
                if subtree_filter is None:
                    subtree_filter = intersect_points(incoming, state.subtree_atts)
                    intersect_memo[memo_key] = subtree_filter
            else:
                # Memory cap exceeded (or pruning disabled): forward as is.
                subtree_filter = incoming
            if not subtree_filter:
                pruned_subtrees += 1
                if reg.enabled:
                    reg.counter("filter_pruned_subtrees_total", protocol=self.name).inc()
                self.tracer.emit(state.filter_arrival, node_id, FILTER_PRUNED)
                continue
            payload_bytes = self._filter_bytes(fmt, subtree_filter)
            channel.broadcast(node_id, awake_children, payload_bytes, PHASE_FILTER)
            broadcasts += 1
            self.tracer.emit(
                state.filter_arrival, node_id, FILTER_BROADCAST,
                points=len(subtree_filter), bytes=payload_bytes,
                children=len(awake_children),
            )
            arrival = state.filter_arrival + channel.last_send_latency_s
            last_arrival = max(last_arrival, arrival)
            for child in awake_children:
                states[child].filter_received = subtree_filter
                states[child].filter_arrival = arrival
        details["filter_broadcasts"] = float(broadcasts)
        details["filter_pruned_subtrees"] = float(pruned_subtrees)
        return last_arrival

    # -- step 2 --------------------------------------------------------------------

    def _final_phase(
        self,
        context: ExecutionContext,
        fmt: TupleFormat,
        states: Dict[int, _NodeState],
        details: Dict[str, float],
    ):
        """Post-order collection of the complete tuples that match the filter."""
        network, tree = context.network, context.tree
        channel = network.channel

        carried: Dict[int, List[FullTupleRecord]] = {}
        carried_bytes: Dict[int, int] = {}
        finish: Dict[int, float] = {}
        senders = 0
        # All children of one broadcast share the same filter frozenset;
        # build its z -> flags lookup once instead of per node.
        flags_memo: Dict[FrozenSet[FlaggedPoint], Dict[int, int]] = {}

        for node_id in tree.post_order():
            state = states[node_id]
            if state.exited:
                continue
            records: List[FullTupleRecord] = []
            payload = 0
            children_finish = state.filter_arrival
            for child in tree.children(node_id):
                if states[child].exited:
                    continue
                payload += carried_bytes.pop(child)
                records.extend(carried.pop(child))
                children_finish = max(children_finish, finish[child])

            if node_id == BASE_STATION_ID:
                # Locally stored proxy tuples join for free; the exact final
                # join discards the ones that do not match.
                records.extend(state.proxy_records)
                carried[node_id] = records
                finish[node_id] = children_finish
                continue

            matched = self._matching_records(fmt, state, flags_memo)
            if matched:
                senders += 1
                self.tracer.emit(
                    children_finish, node_id, FINAL_SEND, tuples=len(matched)
                )
            records.extend(matched)
            payload += fmt.full_tuples_bytes(len(matched))
            channel.unicast(node_id, tree.parent(node_id), payload, PHASE_FINAL)
            carried[node_id] = records
            carried_bytes[node_id] = payload
            finish[node_id] = children_finish + channel.last_send_latency_s

        arrived = carried[BASE_STATION_ID]
        self.last_arrived_records = list(arrived)
        tuples_by_alias: Dict[str, List[Row]] = {alias: [] for alias in fmt.aliases}
        for record in arrived:
            for alias in fmt.aliases_of_flags(record.flags):
                tuples_by_alias[alias].append(Row(record.node_id, dict(record.values)))
        result = evaluate_join(context.query, tuples_by_alias, apply_selections=False)

        contributing = result.all_contributing_nodes()
        shipped = {record.node_id for record in arrived}
        details["final_tuples_shipped"] = float(len(arrived))
        details["final_senders"] = float(senders)
        details["false_positives"] = float(len(shipped - contributing))
        return result, finish[BASE_STATION_ID]

    def _matching_records(
        self,
        fmt: TupleFormat,
        state: _NodeState,
        flags_memo: Optional[Dict[FrozenSet[FlaggedPoint], Dict[int, int]]] = None,
    ) -> List[FullTupleRecord]:
        """Own + proxied tuples whose point is in the received filter."""
        incoming = state.filter_received or frozenset()
        if not incoming:
            return []
        filter_flags = flags_memo.get(incoming) if flags_memo is not None else None
        if filter_flags is None:
            filter_flags = {}
            for flags, z in incoming:
                filter_flags[z] = filter_flags.get(z, 0) | flags
            if flags_memo is not None:
                flags_memo[incoming] = filter_flags
        matched: List[FullTupleRecord] = []
        if state.record is not None and state.own_point is not None:
            own_flags, own_z = state.own_point
            if filter_flags.get(own_z, 0) & own_flags:
                matched.append(state.record)
        for record in state.proxy_records:
            join_values = {name: record.values[name] for name in fmt.join_attributes}
            z = fmt.quantizer.encode(join_values)
            if filter_flags.get(z, 0) & record.flags:
                matched.append(record)
        return matched
