"""Exception hierarchy for the SENS-Join reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to discriminate the failure domain (simulation,
query language, codec, protocol).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """A problem inside the discrete-event simulator (scheduling, channel)."""


class NetworkError(SimulationError):
    """Deployment or connectivity problem (e.g. the graph is disconnected)."""


class RoutingError(SimulationError):
    """The routing tree could not be built or repaired."""


class QueryError(ReproError):
    """Base class for query-language problems."""


class ParseError(QueryError):
    """The SQL-dialect text could not be parsed.

    Attributes
    ----------
    position:
        Character offset in the query string where parsing failed, or ``None``
        when the error is not tied to a specific location.
    """

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class BindingError(QueryError):
    """A query references an unknown relation, alias, or attribute."""


class EvaluationError(QueryError):
    """An expression could not be evaluated over a tuple or interval."""


class CodecError(ReproError):
    """Quantizer / Z-order / quadtree encoding or decoding failure."""


class ProtocolError(ReproError):
    """A join protocol violated one of its internal invariants."""


class ExecutionAborted(ReproError):
    """A query execution was aborted (e.g. by unrecovered network failure)."""


class BrokerError(ReproError):
    """A query failed inside the multi-query broker.

    Wraps the engine's exception for one query so the rest of the batch can
    keep executing; the failed query surfaces a degraded
    :class:`~repro.service.broker.QueryOutcome` carrying this error instead
    of aborting the whole ``run()``.

    Attributes
    ----------
    query_id:
        The admitted query the failure belongs to.
    cause:
        The underlying exception raised by the engine (also chained as
        ``__cause__`` when the error is re-raised).
    """

    def __init__(self, message: str, query_id: str = "", cause: Exception | None = None):
        super().__init__(message)
        self.query_id = query_id
        self.cause = cause


class TraceFormatError(ReproError):
    """A JSONL trace export is malformed or has an unsupported schema."""
