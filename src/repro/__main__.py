"""Command-line interface: ``python -m repro <command>``.

Three subcommands:

``query``
    Deploy a simulated network and run one query with a chosen algorithm::

        python -m repro query "SELECT A.hum, B.hum FROM sensors A, sensors B \\
            WHERE A.temp - B.temp > 14 ONCE" --nodes 300 --seed 42

``explain``
    Show how SENS-Join would process a query (attribute sets, quantizer,
    plan) without executing anything.

``compare``
    Run the same query under SENS-Join and the external join and print the
    head-to-head cost table.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .api import SensorNetworkDB
from .errors import ReproError
from .joins.runner import list_engines, snapshot_engine_names


def _engine_epilog() -> str:
    """Help-text inventory of every registered engine (kept in sync with
    ``repro.joins.runner.list_engines`` — a test greps the two)."""
    engines = list_engines()
    snapshot = ", ".join(n for n, kind in engines.items() if kind == "snapshot")
    stateful = ", ".join(n for n, kind in engines.items() if kind == "stateful")
    return (
        f"engines: {snapshot} (snapshot; usable as --algorithm); "
        f"{stateful} (stateful continuous executors, driven per round via "
        "repro.joins — see docs/architecture.md)"
    )


def _add_deployment_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nodes", type=int, default=300, help="sensor node count")
    parser.add_argument("--seed", type=int, default=0, help="deployment/data seed")
    parser.add_argument(
        "--packet-bytes", type=int, default=48, help="maximum packet size in bytes"
    )


def _build_db(args: argparse.Namespace) -> SensorNetworkDB:
    return SensorNetworkDB(
        node_count=args.nodes, seed=args.seed, max_packet_bytes=args.packet_bytes
    )


def _cmd_query(args: argparse.Namespace) -> int:
    db = _build_db(args)
    report = db.execute(args.sql, algorithm=args.algorithm)
    print(report.summary())
    limit = args.limit
    for row in report.rows[:limit]:
        print("  ", {key: round(value, 3) for key, value in row.items()})
    remaining = len(report.rows) - limit
    if remaining > 0:
        print(f"   ... {remaining} more row(s)")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    db = _build_db(args)
    print(db.explain(args.sql))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    db = _build_db(args)
    sens = db.execute(args.sql, algorithm="sens-join")
    external = db.execute(args.sql, algorithm="external-join")
    match = sens.outcome.result.signature() == external.outcome.result.signature()
    rows = [
        ("algorithm", "transmissions", "max node tx", "response s", "rows"),
        (
            "sens-join",
            str(sens.transmissions),
            str(sens.outcome.max_node_transmissions()),
            f"{sens.outcome.response_time_s:.2f}",
            str(sens.outcome.result.row_count),
        ),
        (
            "external-join",
            str(external.transmissions),
            str(external.outcome.max_node_transmissions()),
            f"{external.outcome.response_time_s:.2f}",
            str(external.outcome.result.row_count),
        ),
    ]
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    for row in rows:
        print("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    saving = 1.0 - sens.transmissions / max(external.transmissions, 1)
    print(f"\nresults identical: {match}; SENS-Join saving: {saving:.0%}")
    return 0 if match else 1


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and shell completion)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="SENS-Join (ICDE 2009) reproduction: simulate join queries "
        "over a wireless sensor network.",
        epilog=_engine_epilog(),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    query = commands.add_parser("query", help="run one query and print rows + costs")
    query.add_argument("sql", help="query text in the TinyDB dialect")
    query.add_argument(
        "--algorithm",
        default="sens-join",
        choices=snapshot_engine_names(),
        help="join method (any registered snapshot engine)",
    )
    query.add_argument("--limit", type=int, default=10, help="rows to print")
    _add_deployment_arguments(query)
    query.set_defaults(handler=_cmd_query)

    explain = commands.add_parser("explain", help="show the SENS-Join plan for a query")
    explain.add_argument("sql", help="query text in the TinyDB dialect")
    _add_deployment_arguments(explain)
    explain.set_defaults(handler=_cmd_explain)

    compare = commands.add_parser(
        "compare", help="run SENS-Join and the external join head to head"
    )
    compare.add_argument("sql", help="query text in the TinyDB dialect")
    _add_deployment_arguments(compare)
    compare.set_defaults(handler=_cmd_compare)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
