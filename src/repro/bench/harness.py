"""Parallel experiment harness: cells, fan-out, caching, assembly.

The §VI evaluation is an embarrassingly parallel matrix — every
(experiment, ratio, sweep point, seed) combination is an independent
simulation.  This module decomposes each experiment function of
:mod:`repro.bench.experiments` into picklable **cells**, fans them out over
a :class:`concurrent.futures.ProcessPoolExecutor`, and reassembles the
exact :class:`~repro.bench.reporting.ExperimentSeries` the serial call
would have produced — byte-identical tables and CSVs regardless of worker
count or completion order.

How that identity is achieved:

* a cell re-invokes the *same* experiment function with a single-point
  sweep (e.g. ``fig10_overall("33", fractions=[0.05], ...)``), so each row
  is computed by exactly the code that computes it serially;
* every cell is fully pinned — node counts, seeds and sweep axes are
  resolved in the parent before dispatch, so workers never consult
  environment variables;
* assembly concatenates the single-point series in sweep order (never in
  completion order) and deduplicates notes; experiments whose summary
  note spans the whole sweep (``variance``) or that cross-check rows
  against each other (``loss``) get a custom assembler.

Results are cached on disk, content-addressed by cell parameters plus the
:func:`repro.bench.cache.code_fingerprint`, so warm re-runs skip the
simulations entirely.  See ``docs/benchmarking.md`` for the cache-key and
determinism contract, and :mod:`repro.bench.__main__` for the CLI
(``python -m repro.bench``).
"""

from __future__ import annotations

import fnmatch
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

from .. import constants
from ..errors import ProtocolError
from ..obs.metrics import MetricsRegistry
from .cache import CACHE_DIR_ENV, ResultCache, cache_key, code_fingerprint
from .experiments import (
    DEFAULT_FRACTIONS,
    scale_node_counts,
    variance_summary_note,
)
from .reporting import ExperimentSeries
from .workloads import default_node_count

__all__ = [
    "Cell",
    "CellResult",
    "ExperimentSpec",
    "RunResult",
    "deployment_shard_spec",
    "experiment_specs",
    "run_experiments",
    "run_sharded_deployment",
]

#: Manifest layout version (see :attr:`RunResult.manifest`).
MANIFEST_SCHEMA = 1


@dataclass(frozen=True)
class Cell:
    """One independent unit of work: a pinned experiment-function call.

    ``kwargs`` must be JSON-clean (numbers, strings, lists) — they are both
    the pickled payload sent to workers and the content-addressed cache
    identity.  ``index`` is the cell's position in its experiment's sweep;
    assembly orders by it, never by completion time.
    """

    experiment: str
    func: str
    kwargs: tuple  # canonical ((name, value), ...) pairs, sorted by name
    index: int

    @staticmethod
    def make(experiment: str, func: str, kwargs: Dict[str, Any], index: int) -> "Cell":
        return Cell(experiment, func, tuple(sorted(kwargs.items(), key=lambda kv: kv[0])), index)

    @property
    def call_kwargs(self) -> Dict[str, Any]:
        """Keyword arguments as passed to the experiment function."""
        return {name: _thaw(value) for name, value in self.kwargs}

    @property
    def label(self) -> str:
        """Human-readable progress label, e.g. ``fig10_33[3/8]``."""
        return f"{self.experiment}[{self.index}]"

    def key(self, fingerprint: Optional[str] = None) -> str:
        """Content address of this cell's result."""
        return cache_key(
            {"kind": "cell", "func": self.func, "kwargs": self.call_kwargs},
            fingerprint,
        )


def _freeze(value: Any) -> Any:
    """Lists/tuples -> tuples so cells stay hashable."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    return value


def _thaw(value: Any) -> Any:
    """Tuples -> lists: the JSON-canonical form cache keys are built from."""
    if isinstance(value, tuple):
        return [_thaw(item) for item in value]
    return value


@dataclass
class CellResult:
    """A finished cell: its single-point series plus execution metadata."""

    cell: Cell
    series: ExperimentSeries
    elapsed_s: float
    cached: bool


Assembler = Callable[[List[ExperimentSeries]], ExperimentSeries]


@dataclass
class ExperimentSpec:
    """One named experiment: its cells and how to reassemble them."""

    name: str
    title: str
    cells: List[Cell]
    assemble: Assembler = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.assemble is None:
            self.assemble = _assemble_concat


def _assemble_concat(series_list: List[ExperimentSeries]) -> ExperimentSeries:
    """Default assembly: concatenate rows in cell order, dedupe notes.

    Exactly reproduces a serial run for experiments whose notes are
    constant across sweep points (the per-point series all carry the same
    note, which deduplicates to the single note the serial loop appends).
    """
    if not series_list:
        raise ValueError("cannot assemble an experiment from zero cell series")
    first = series_list[0]
    out = ExperimentSeries(first.experiment, first.title, list(first.columns))
    for part in series_list:
        if part.columns != first.columns:
            raise ProtocolError(
                f"{first.experiment}: cell columns diverged "
                f"({part.columns} vs {first.columns})"
            )
        out.rows.extend(list(row) for row in part.rows)
        for note in part.notes:
            if note not in out.notes:
                out.notes.append(note)
    return out


def _assemble_variance(series_list: List[ExperimentSeries]) -> ExperimentSeries:
    """Variance study: recompute the whole-sweep mean/spread note.

    Per-seed cells each carry a one-seed note; the serial function computes
    the note from the rounded per-row savings, so regenerating it from the
    concatenated ``savings_pct`` column restores byte identity.
    """
    out = _assemble_concat(series_list)
    out.notes = [variance_summary_note([float(v) for v in out.column("savings_pct")])]
    return out


def _assemble_loss(series_list: List[ExperimentSeries]) -> ExperimentSeries:
    """Loss study: re-apply the cross-rate exactness check.

    The serial loop asserts SENS-Join's match count is identical at every
    loss rate; per-rate cells cannot see each other, so the check moves
    here.
    """
    out = _assemble_concat(series_list)
    algorithm = out.columns.index("algorithm")
    matches = out.columns.index("matches")
    sens = {row[matches] for row in out.rows if row[algorithm] == "sens-join"}
    if len(sens) > 1:
        raise ProtocolError(
            f"SENS-Join result changed under loss: match counts {sorted(sens)}"
        )
    return out


def _assemble_shards(series_list: List[ExperimentSeries]) -> ExperimentSeries:
    """Sharded deployment: gate completeness, then append the merge row.

    Each shard cell reports its own slice of the partition; the merge is
    only valid when the slices tile the whole deployment.  Two checks catch
    every partition bug at once: the shard node counts must sum to the
    deployment size, and the shard id-sums must total ``n(n+1)/2`` (sensor
    ids are ``1..n``), which rules out overlap-plus-gap combinations that
    keep the count right.  The appended ``shard == -1`` row is the merged
    view: sums for work columns, maxima for the parallel wall-clock ones.
    """
    out = _assemble_concat(series_list)
    col = {name: out.columns.index(name) for name in out.columns}
    totals = {int(row[col["total_nodes"]]) for row in out.rows}
    shard_counts = {int(row[col["shards"]]) for row in out.rows}
    if len(totals) != 1 or shard_counts != {len(out.rows)}:
        raise ProtocolError(
            f"shard cells disagree on the deployment: total_nodes {sorted(totals)}, "
            f"shards {sorted(shard_counts)} for {len(out.rows)} cell(s)"
        )
    total = totals.pop()
    covered = sum(int(row[col["nodes"]]) for row in out.rows)
    id_sum = sum(int(row[col["id_sum"]]) for row in out.rows)
    expected_ids = total * (total + 1) // 2
    if covered != total or id_sum != expected_ids:
        raise ProtocolError(
            f"sharded deployment merge incomplete: {covered}/{total} node(s), "
            f"id checksum {id_sum} != {expected_ids}"
        )
    out.rows.append([
        -1,
        len(out.rows),
        covered,
        sum(int(row[col["subtrees"]]) for row in out.rows),
        max(int(row[col["max_depth"]]) for row in out.rows),
        sum(int(row[col["tx_packets"]]) for row in out.rows),
        round(sum(float(row[col["energy"]]) for row in out.rows), 1),
        id_sum,
        total,
        max(float(row[col["build_s"]]) for row in out.rows),
        max(float(row[col["tree_s"]]) for row in out.rows),
    ])
    out.notes.append(
        "shard -1 = deterministic merge of all shards (sums; build_s/tree_s "
        "are maxima — shards rebuild in parallel); completeness gated on "
        "node count and id checksum"
    )
    return out


def deployment_shard_spec(
    node_count: int,
    shard_count: int = 4,
    seed: int = 0,
    routing: str = "flat",
    deployment: str = "grid",
) -> ExperimentSpec:
    """A synthetic experiment spec: one cell per shard of a giant deployment.

    The cells are ordinary harness cells (picklable, content-addressed, one
    :func:`repro.bench.experiments.scale_shard` call each), so the existing
    fan-out, cache and progress machinery applies unchanged; only the
    assembler differs — it verifies the shards tile the deployment before
    appending the merged totals row.
    """
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1: {shard_count}")
    name = "shard"
    cells = [
        Cell.make(
            name,
            "scale_shard",
            {
                "node_count": node_count,
                "seed": seed,
                "routing": routing,
                "shard_index": index,
                "shard_count": shard_count,
                "deployment": deployment,
            },
            index,
        )
        for index in range(shard_count)
    ]
    return ExperimentSpec(
        name,
        f"sharded deployment: {node_count} nodes over {shard_count} shard(s)",
        cells,
        _assemble_shards,
    )


def run_sharded_deployment(
    node_count: int,
    shard_count: int = 4,
    *,
    seed: int = 0,
    routing: str = "flat",
    deployment: str = "grid",
    jobs: int = 1,
    cache_dir: Optional[Path] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> RunResult:
    """Partition a giant deployment into per-subtree shards and fan them out.

    The sharded counterpart of :func:`run_experiments` for deployments too
    large to want in one process: each shard worker rebuilds the topology,
    derives the same deterministic subtree partition, and accounts its own
    slice; the results merge through the content-addressed cache and the
    completeness-gated assembler regardless of worker count or completion
    order.  Returns a single-series :class:`RunResult`.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1: {jobs}")
    spec = deployment_shard_spec(
        node_count, shard_count, seed=seed, routing=routing, deployment=deployment
    )
    fingerprint = code_fingerprint()
    registry = MetricsRegistry()
    cache = (
        ResultCache(cache_dir, registry=registry)
        if cache_dir is not None
        else None
    )
    previous_env = os.environ.get(CACHE_DIR_ENV)
    if cache is not None:
        os.environ[CACHE_DIR_ENV] = str(cache_dir)
    try:
        results = _run_cells(spec.cells, jobs, cache, fingerprint, progress)
    finally:
        if cache is not None:
            if previous_env is None:
                os.environ.pop(CACHE_DIR_ENV, None)
            else:
                os.environ[CACHE_DIR_ENV] = previous_env
    by_cell = {id(result.cell): result for result in results}
    ordered = [by_cell[id(cell)] for cell in spec.cells]
    series = [spec.assemble([by_cell[id(cell)].series for cell in spec.cells])]
    manifest = _build_manifest(
        [spec], ordered, fingerprint, jobs, cache_dir, registry
    )
    return RunResult(series=series, results=ordered, manifest=manifest)


def _fig14_node_counts(node_count: int) -> List[int]:
    """Fig. 14's sweep sizes at the requested scale (mirrors the function)."""
    scale = node_count / constants.PAPER_NODE_COUNT
    return [int(round(n * scale)) for n in (1000, 1500, 2000, 2500)]


def experiment_specs(node_count: Optional[int] = None) -> Dict[str, ExperimentSpec]:
    """The full experiment registry at one scale, in canonical order.

    Every cell is fully pinned to ``node_count`` (default:
    :func:`repro.bench.workloads.default_node_count`, i.e. 600 or the
    paper's 1500 under ``REPRO_SCALE=paper``), so the returned specs are
    environment-independent from here on.
    """
    n = node_count if node_count is not None else default_node_count()
    specs: Dict[str, ExperimentSpec] = {}

    def add(
        name: str,
        title: str,
        func: str,
        sweep: Sequence[Dict[str, Any]],
        assemble: Optional[Assembler] = None,
    ) -> None:
        cells = [
            Cell.make(name, func, {k: _freeze(v) for k, v in kwargs.items()}, i)
            for i, kwargs in enumerate(sweep)
        ]
        spec = ExperimentSpec(name, title, cells)
        if assemble is not None:
            spec.assemble = assemble
        specs[name] = spec

    for ratio in ("33", "60"):
        add(
            f"fig10_{ratio}",
            f"overall transmissions vs result fraction ({ratio}% ratio)",
            "fig10_overall",
            [
                {"ratio": ratio, "fractions": [f], "node_count": n, "seed": 0}
                for f in DEFAULT_FRACTIONS
            ],
        )
    for ratio in ("33", "60"):
        add(
            f"fig11_{ratio}",
            f"per-node transmissions vs descendants ({ratio}% ratio)",
            "fig11_per_node",
            [{"ratio": ratio, "node_count": n, "seed": 0}],
        )
    add(
        "fig12",
        "3 join attributes / x attributes overall",
        "fig12_ratio3",
        [{"totals": [t], "node_count": n, "seed": 0} for t in (5, 4, 3)],
    )
    add(
        "fig13",
        "1 join attribute / x attributes overall",
        "fig13_ratio1",
        [{"totals": [t], "node_count": n, "seed": 0} for t in (1, 2, 3, 4, 5)],
    )
    add(
        "fig14",
        "influence of the network size (constant density)",
        "fig14_network_size",
        [{"node_counts": [c], "seed": 0} for c in _fig14_node_counts(n)],
    )
    add(
        "fig15",
        "SENS-Join cost per step vs result fraction",
        "fig15_step_breakdown",
        [
            {"fractions": [f], "node_count": n, "seed": 0}
            for f in (0.03, 0.05, 0.09, 0.25)
        ],
    )
    add(
        "fig16",
        "influence of the quadtree representation",
        "fig16_quadtree_influence",
        [{"node_count": n, "seed": 0}],
    )
    add(
        "compression_table",
        "general-purpose compressors vs the quadtree (§VI-B)",
        "compression_table",
        [{"node_count": n, "seed": 0}],
    )
    add(
        "packet_size",
        "influence of the maximum packet size (§VI-A)",
        "packet_size_study",
        [
            {"packet_sizes": [p], "node_count": n, "seed": 0}
            for p in (
                constants.DEFAULT_MAX_PACKET_BYTES,
                constants.LARGE_MAX_PACKET_BYTES,
            )
        ],
    )
    add(
        "response_time",
        "response time: SENS-Join vs external join (§VII)",
        "response_time_study",
        [
            {"fractions": [f], "node_count": n, "seed": 0}
            for f in (0.05, 0.20, 0.40)
        ],
    )
    add(
        "ablation",
        "ablation of SENS-Join design choices",
        "ablation_study",
        [{"node_count": n, "seed": 0}],
    )
    add(
        "placement",
        "join location after filtering (§IV-E)",
        "placement_study",
        [
            {"fractions": [f], "node_count": n, "seed": 0}
            for f in (0.05, 0.20, 0.60)
        ],
    )
    add(
        "memory",
        "Selective Filter Forwarding memory by depth (§IV-C)",
        "memory_study",
        [{"node_count": n, "seed": 0}],
    )
    add(
        "generality",
        "Requirement 1/2 battery: arbitrary conditions and placements",
        "generality_study",
        [{"node_count": n, "seed": 0}],
    )
    add(
        "related_work",
        "specialised joins: their niche vs the general setting (§II)",
        "related_work_study",
        [{"seed": 3}],
    )
    add(
        "continuous",
        "continuous queries: incremental vs snapshot (E12)",
        "continuous_study",
        [
            {"drift_rates": [d], "node_count": min(n, 600), "seed": 9}
            for d in (0.0001, 0.0005, 0.002)
        ],
    )
    add(
        "variance",
        "savings across deployment/data seeds",
        "variance_study",
        [{"seeds": [s], "node_count": n} for s in (0, 1, 2, 3, 4)],
        assemble=_assemble_variance,
    )
    add(
        "resolution",
        "quantization resolution sweep (§V-B)",
        "resolution_study",
        [
            {"resolutions": [r], "node_count": n, "seed": 0}
            for r in (0.02, 0.05, 0.1, 0.5, 1.0, 2.0, 4.0)
        ],
    )
    add(
        "bs_position",
        "savings vs base-station placement",
        "bs_position_study",
        [{"node_count": n, "seed": 0}],
    )
    add(
        "loss",
        "join methods under lossy links with ARQ (§IV-F)",
        "loss_study",
        [
            {"loss_rates": [r], "node_count": n, "seed": 0}
            for r in (0.0, 0.05, 0.1, 0.2, 0.3)
        ],
        assemble=_assemble_loss,
    )
    add(
        "failure",
        "mid-query crashes: repair cost and completeness (§IV-F)",
        "failure_study",
        [
            {"crash_fractions": [f], "node_count": min(n, 300), "seed": 0}
            for f in (0.0, 0.02, 0.05, 0.1)
        ],
    )
    add(
        "concurrency",
        "multi-query broker: shared-work amortization vs serial",
        "concurrency_study",
        [
            {
                "workloads": [w],
                "concurrency_levels": [c],
                "node_count": min(n, 300),
                "seed": 0,
            }
            for w in ("poisson", "bursty")
            for c in (1, 2, 4, 8)
        ],
    )
    add(
        "churn",
        "continuous churn: self-healing trees and broker degradation",
        "churn_study",
        [
            {
                "churn_rates": [r],
                "concurrency_levels": [c],
                "node_count": min(n, 300),
                "seed": 0,
            }
            for r in (0.0, 0.1, 0.2)
            for c in (1, 8)
        ],
    )
    add(
        "scale",
        "scale ladder: build, tree formation and join cost vs network size",
        "scale_study",
        [
            {"node_counts": [c], "routings": [r], "seed": 0}
            for c in scale_node_counts(n)
            for r in ("flat", "cluster")
        ],
    )
    return specs


def select_specs(
    specs: Dict[str, ExperimentSpec], patterns: Optional[Sequence[str]]
) -> List[ExperimentSpec]:
    """Experiments matching any name/glob pattern, in registry order.

    ``None`` (or an empty selection) means *all* experiments.  A pattern
    that matches nothing raises :class:`ValueError` naming the choices.
    """
    if not patterns:
        return list(specs.values())
    for pattern in patterns:
        if not fnmatch.filter(specs, pattern):
            raise ValueError(
                f"no experiment matches {pattern!r}; "
                f"choices: {', '.join(specs)}"
            )
    return [
        spec
        for name, spec in specs.items()
        if any(fnmatch.fnmatch(name, pattern) for pattern in patterns)
    ]


def _execute_cell(func: str, kwargs: Dict[str, Any]):
    """Worker entry point: run one pinned experiment-function call."""
    from . import experiments

    started = time.perf_counter()
    series = getattr(experiments, func)(**kwargs)
    return series, time.perf_counter() - started


@dataclass
class RunResult:
    """Everything one harness run produced."""

    series: List[ExperimentSeries]
    results: List[CellResult] = field(default_factory=list)
    manifest: Dict[str, Any] = field(default_factory=dict)


def run_experiments(
    patterns: Optional[Sequence[str]] = None,
    *,
    node_count: Optional[int] = None,
    jobs: int = 1,
    cache_dir: Optional[Path] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> RunResult:
    """Run the selected experiments as parallel cells; reassemble in order.

    Parameters
    ----------
    patterns:
        Experiment names or globs (``fig10*``); None/empty selects all.
    node_count:
        Pin every experiment to this scale; None uses the default scale
        (600 nodes, or the paper's 1500 under ``REPRO_SCALE=paper``).
    jobs:
        Worker processes.  ``1`` runs the cells in-process — the output is
        byte-identical either way, only the wall time changes.
    cache_dir:
        Directory of the content-addressed result cache; None disables
        caching.  The directory is shared with workers (so calibration
        cells are cached too) via ``REPRO_BENCH_CACHE_DIR``.
    progress:
        Optional sink for per-cell progress/ETA lines.

    Returns a :class:`RunResult` whose ``series`` list is in registry
    order and whose ``manifest`` is the machine-readable run record.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1: {jobs}")
    specs = experiment_specs(node_count)
    selected = select_specs(specs, patterns)
    empty = [spec.name for spec in selected if not spec.cells]
    if empty:
        raise ValueError(
            f"experiment(s) selected with zero cells: {', '.join(empty)}"
        )
    cells = [cell for spec in selected for cell in spec.cells]
    fingerprint = code_fingerprint()
    registry = MetricsRegistry()
    cache = (
        ResultCache(cache_dir, registry=registry)
        if cache_dir is not None
        else None
    )

    previous_env = os.environ.get(CACHE_DIR_ENV)
    if cache is not None:
        os.environ[CACHE_DIR_ENV] = str(cache_dir)
    try:
        results = _run_cells(cells, jobs, cache, fingerprint, progress)
    finally:
        if cache is not None:
            if previous_env is None:
                os.environ.pop(CACHE_DIR_ENV, None)
            else:
                os.environ[CACHE_DIR_ENV] = previous_env

    by_cell = {id(result.cell): result for result in results}
    ordered = [by_cell[id(cell)] for cell in cells]
    series = [
        spec.assemble([by_cell[id(cell)].series for cell in spec.cells])
        for spec in selected
    ]
    manifest = _build_manifest(
        selected, ordered, fingerprint, jobs, cache_dir, registry
    )
    return RunResult(series=series, results=ordered, manifest=manifest)


def _run_cells(
    cells: List[Cell],
    jobs: int,
    cache: Optional[ResultCache],
    fingerprint: str,
    progress: Optional[Callable[[str], None]],
) -> List[CellResult]:
    total = len(cells)
    done = 0
    started = time.perf_counter()
    results: List[CellResult] = []

    def emit(result: CellResult) -> None:
        nonlocal done
        done += 1
        results.append(result)
        if progress is None:
            return
        flag = " (cached)" if result.cached else ""
        wall = time.perf_counter() - started
        remaining = total - done
        eta = f", eta {wall / done * remaining:.0f}s" if remaining else ""
        progress(
            f"[{done}/{total}] {result.cell.label} "
            f"{result.elapsed_s:.1f}s{flag}{eta}"
        )

    pending: List[Cell] = []
    cached_results: Dict[int, CellResult] = {}
    for cell in cells:
        entry = cache.get(cell.key(fingerprint)) if cache is not None else None
        if entry is not None:
            cached_results[id(cell)] = CellResult(
                cell,
                ExperimentSeries.from_dict(entry["series"]),
                entry.get("elapsed_s", 0.0),
                cached=True,
            )
        else:
            pending.append(cell)

    def finish(cell: Cell, series: ExperimentSeries, elapsed: float) -> None:
        if cache is not None:
            cache.put(
                cell.key(fingerprint),
                {
                    "func": cell.func,
                    "kwargs": cell.call_kwargs,
                    "series": series.to_dict(),
                    "elapsed_s": elapsed,
                },
            )
        emit(CellResult(cell, series, elapsed, cached=False))

    if jobs == 1 or len(pending) <= 1:
        for cell in cells:
            if id(cell) in cached_results:
                emit(cached_results.pop(id(cell)))
                continue
            series, elapsed = _execute_cell(cell.func, cell.call_kwargs)
            finish(cell, series, elapsed)
    else:
        for result in cached_results.values():
            emit(result)
        cached_results.clear()
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = {
                pool.submit(_execute_cell, cell.func, cell.call_kwargs): cell
                for cell in pending
            }
            for future in as_completed(futures):
                cell = futures[future]
                try:
                    series, elapsed = future.result()
                except Exception as error:
                    raise RuntimeError(
                        f"experiment cell {cell.label} "
                        f"({cell.func}{cell.call_kwargs}) failed"
                    ) from error
                finish(cell, series, elapsed)
    for result in cached_results.values():  # jobs == 1 leftovers (none expected)
        emit(result)
    return results


def _build_manifest(
    selected: List[ExperimentSpec],
    results: List[CellResult],
    fingerprint: str,
    jobs: int,
    cache_dir: Optional[Path],
    registry: Optional[MetricsRegistry] = None,
) -> Dict[str, Any]:
    by_experiment: Dict[str, List[CellResult]] = {}
    for result in results:
        by_experiment.setdefault(result.cell.experiment, []).append(result)
    profile: Dict[str, Any] = {
        "cache": {
            "hits": int(registry.total("bench_cache_hits_total")) if registry else 0,
            "misses": int(registry.total("bench_cache_misses_total")) if registry else 0,
            "puts": int(registry.total("bench_cache_puts_total")) if registry else 0,
            "evictions": int(registry.total("bench_cache_evictions_total")) if registry else 0,
        },
        "slowest_cells": [
            {"label": r.cell.label, "elapsed_s": round(r.elapsed_s, 3)}
            for r in sorted(results, key=lambda r: r.elapsed_s, reverse=True)[:5]
            if not r.cached
        ],
    }
    return {
        "schema": MANIFEST_SCHEMA,
        "created_unix": time.time(),
        "code_fingerprint": fingerprint,
        "jobs": jobs,
        "cache_dir": str(cache_dir) if cache_dir is not None else None,
        "total_cells": len(results),
        "cached_cells": sum(1 for r in results if r.cached),
        "total_cell_seconds": round(sum(r.elapsed_s for r in results), 3),
        "profile": profile,
        "experiments": [
            {
                "name": spec.name,
                "title": spec.title,
                "cells": len(spec.cells),
                "cached_cells": sum(
                    1 for r in by_experiment.get(spec.name, []) if r.cached
                ),
                "cell_seconds": round(
                    sum(r.elapsed_s for r in by_experiment.get(spec.name, [])), 3
                ),
            }
            for spec in selected
        ],
        "cells": [
            {
                "experiment": r.cell.experiment,
                "func": r.cell.func,
                "kwargs": r.cell.call_kwargs,
                "key": r.cell.key(fingerprint),
                "cached": r.cached,
                "elapsed_s": round(r.elapsed_s, 3),
            }
            for r in results
        ],
    }
