"""Content-addressed on-disk cache for experiment results.

The parallel harness (:mod:`repro.bench.harness`) decomposes every
experiment into independent *cells*; this module decides whether a cell has
already been computed.  A cell's cache key is the SHA-256 digest of

* the cell's own parameters (function name + keyword arguments, in
  canonical JSON), and
* the :func:`code_fingerprint` — the package version, every public
  constant of :mod:`repro.constants`, and a schema counter bumped whenever
  the cached payload format changes.

Two consequences, by design:

* **Re-runs after unrelated edits are near-instant.**  Editing docs,
  tests, or benchmark plumbing leaves the fingerprint unchanged, so a
  warm cache answers every cell without running a single simulation.
* **Changing the physics invalidates everything.**  Any edit to
  :mod:`repro.constants` (packet size, radio range, ARQ budget, ...) or a
  version bump changes every key.  Edits to protocol *code* that keep the
  constants are **not** detected — bump ``repro.__version__`` (or pass
  ``--no-cache`` / ``--clear-cache``) when simulation semantics change.

Entries are JSON files under ``<root>/<key[:2]>/<key>.json``, written
atomically (temp file + :func:`os.replace`) so concurrent workers can share
one cache directory without locks: the worst case is the same cell computed
twice, with one of the two identical payloads winning the rename.

:func:`calibration_cache_dir` is the hook through which
:mod:`repro.bench.workloads` joins in: when the harness enables caching it
exports ``REPRO_BENCH_CACHE_DIR``, and the (expensive) threshold
calibrations become cacheable cells of their own.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import shutil
import sys
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_SCHEMA_VERSION",
    "ResultCache",
    "cache_key",
    "calibration_cache_dir",
    "code_fingerprint",
]

#: Environment variable through which the harness shares its cache
#: directory with worker processes (and with the calibration layer).
CACHE_DIR_ENV = "REPRO_BENCH_CACHE_DIR"

#: Bump when the cached payload layout changes (invalidates every entry).
CACHE_SCHEMA_VERSION = 1


def _interpreter_fingerprint() -> Dict[str, Any]:
    """The runtime a cached result depends on besides the code itself.

    Float-heavy cells (threshold calibration, latency accumulation) can
    legitimately differ across interpreter versions, implementations and
    platforms, so a cache populated under one Python must not serve another.
    Major.minor is enough version resolution: patch releases do not change
    float or hash semantics.
    """
    return {
        "python": list(sys.version_info[:2]),
        "implementation": sys.implementation.name,
        "platform": sys.platform,
        "machine": platform.machine(),
    }


def code_fingerprint() -> str:
    """Digest of the code-relevant constants and the package version.

    Covers everything a cached result is allowed to depend on besides its
    own parameters: ``repro.__version__``, the public (upper-case) values
    of :mod:`repro.constants`, :data:`CACHE_SCHEMA_VERSION`, and the
    interpreter/platform fingerprint.
    """
    from .. import __version__, constants

    payload = {
        "version": __version__,
        "schema": CACHE_SCHEMA_VERSION,
        "interpreter": _interpreter_fingerprint(),
        "constants": {
            name: repr(getattr(constants, name))
            for name in sorted(dir(constants))
            if name.isupper()
        },
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


def cache_key(payload: Dict[str, Any], fingerprint: Optional[str] = None) -> str:
    """Content address of one cell: parameters + code fingerprint.

    ``payload`` must be JSON-serialisable with a canonical form (plain
    dicts, lists, numbers, strings).  Passing a precomputed
    ``fingerprint`` avoids re-hashing the constants for every cell.
    """
    body = {
        "fingerprint": fingerprint or code_fingerprint(),
        "payload": payload,
    }
    return hashlib.sha256(json.dumps(body, sort_keys=True).encode()).hexdigest()


class ResultCache:
    """A directory of content-addressed JSON entries.

    >>> cache = ResultCache(Path("benchmarks/results/.cache"))
    >>> cache.put("ab12...", {"rows": [[1, 2]]})
    >>> cache.get("ab12...")
    {'rows': [[1, 2]]}

    With a :class:`~repro.obs.metrics.MetricsRegistry` attached, every
    lookup/store/eviction increments the ``bench_cache_*_total`` counters
    the harness records into its run manifest and ``python -m repro.bench
    report`` prints.
    """

    def __init__(self, root: Path, registry: Optional[Any] = None) -> None:
        self.root = Path(root)
        if registry is None:
            from ..obs.metrics import NULL_REGISTRY

            registry = NULL_REGISTRY
        self.registry = registry

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or None (corrupt entries too)."""
        path = self._path(key)
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            if self.registry.enabled:
                self.registry.counter("bench_cache_misses_total").inc()
            return None
        if self.registry.enabled:
            self.registry.counter("bench_cache_hits_total").inc()
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> Path:
        """Atomically store ``payload`` under ``key``; returns the path."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, temp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(temp, path)
        except BaseException:
            if os.path.exists(temp):
                os.unlink(temp)
            raise
        if self.registry.enabled:
            self.registry.counter("bench_cache_puts_total").inc()
        return path

    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed."""
        if not self.root.exists():
            return 0
        count = sum(1 for _ in self.root.glob("*/*.json"))
        shutil.rmtree(self.root)
        if self.registry.enabled and count:
            self.registry.counter("bench_cache_evictions_total").inc(count)
        return count

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def __bool__(self) -> bool:
        # An empty cache is still a cache: never let `if cache:` silently
        # fall through to the no-cache path because len() happens to be 0.
        return True


def calibration_cache_dir() -> Optional[Path]:
    """The shared cache directory, if the harness enabled one.

    Read by :func:`repro.bench.workloads._cached_calibration` so threshold
    calibrations are cached on disk (and shared across worker processes)
    whenever a harness run has caching on.
    """
    value = os.environ.get(CACHE_DIR_ENV)
    return Path(value) if value else None
