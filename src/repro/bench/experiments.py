"""Experiment functions: one per figure/table of the paper's §VI.

Every function builds (or reuses, via caching) a scenario at the paper's
node density, calibrates the workload's selectivity knob, runs the join
methods, and returns an :class:`~repro.bench.reporting.ExperimentSeries`
whose rows mirror the corresponding figure's data series.  The benchmark
suite (``benchmarks/``) wraps these functions with pytest-benchmark timers
and prints the rendered tables; EXPERIMENTS.md records paper-vs-measured.

Each function is written so every sweep iteration is independent of the
others: :mod:`repro.bench.harness` re-invokes the same function once per
sweep point (a *cell*) and concatenates the single-point series, which must
reproduce the serial output byte for byte.  Keep it that way — no state may
leak from one loop iteration into the next, and summary notes must be
recomputable from the emitted rows alone.

Scale note: absolute packet counts depend on the network size (default 600
nodes, ``REPRO_SCALE=paper`` for 1500) — the comparisons are ratios and
orderings, which is what the reproduction targets.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from .. import constants
from ..joins.external import ExternalJoin
from ..joins.sensjoin import (
    PHASE_COLLECTION,
    PHASE_FILTER,
    PHASE_FINAL,
    SensJoin,
    SensJoinConfig,
)
from ..errors import ProtocolError
from .calibrate import measure_result_fraction
from .reporting import ExperimentSeries
from .workloads import (
    Scenario,
    build_scenario,
    calibrated_query,
    default_node_count,
    ratio_query_builder,
)

__all__ = [
    "RATIO_SETTINGS",
    "fig10_overall",
    "fig11_per_node",
    "fig12_ratio3",
    "fig13_ratio1",
    "fig14_network_size",
    "fig15_step_breakdown",
    "fig16_quadtree_influence",
    "compression_table",
    "packet_size_study",
    "response_time_study",
    "ablation_study",
    "continuous_study",
    "placement_study",
    "memory_study",
    "generality_study",
    "related_work_study",
    "variance_study",
    "resolution_study",
    "bs_position_study",
    "loss_study",
    "failure_study",
    "concurrency_study",
    "churn_study",
    "scale_study",
    "scale_shard",
    "scale_node_counts",
    "SCALE_LADDER",
]

#: The paper's two default join-attribute ratios (§VI "Default setting").
RATIO_SETTINGS = {
    "33": (1, 3),  # one join attribute, three attributes overall
    "60": (3, 5),  # three join attributes, five attributes overall
}

#: Result fractions swept in Fig. 10 (the paper plots roughly 0-80 %).
DEFAULT_FRACTIONS = (0.01, 0.03, 0.05, 0.10, 0.20, 0.40, 0.60, 0.80)


def _ratio_counts(ratio: str) -> tuple[int, int]:
    try:
        return RATIO_SETTINGS[ratio]
    except KeyError:
        raise ValueError(f"ratio must be one of {sorted(RATIO_SETTINGS)}") from None


def _run_pair(scenario: Scenario, query, sens_config: Optional[SensJoinConfig] = None):
    """Run external + SENS-Join on the same snapshot; sanity-check equality."""
    external = scenario.run(query, ExternalJoin())
    sens = scenario.run(query, SensJoin(sens_config or SensJoinConfig()))
    if external.result.match_count != sens.result.match_count:
        raise ProtocolError(
            "SENS-Join and the external join disagree: "
            f"{sens.result.match_count} vs {external.result.match_count} matches"
        )
    return external, sens


# ---------------------------------------------------------------------------
# Fig. 10 — overall savings vs fraction of nodes in the result
# ---------------------------------------------------------------------------


def fig10_overall(
    ratio: str = "33",
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    node_count: Optional[int] = None,
    seed: int = 0,
) -> ExperimentSeries:
    """Total transmissions of both methods as the result fraction grows.

    Expected shape (paper Fig. 10): SENS-Join far below the external join at
    small fractions (savings up to ~80 % for the 33 % ratio, ~two-thirds for
    60 %), with a break-even once 60-80 % of the nodes join.
    """
    join_attrs, total_attrs = _ratio_counts(ratio)
    scenario = build_scenario(node_count, seed)
    series = ExperimentSeries(
        experiment=f"fig10_{ratio}",
        title=f"Overall transmissions vs result fraction ({ratio}% join attributes)",
        columns=["fraction", "achieved", "external_tx", "sens_tx", "savings_pct"],
    )
    for fraction in fractions:
        query = calibrated_query(scenario, join_attrs, total_attrs, fraction)
        achieved = measure_result_fraction(scenario.world, query)
        external, sens = _run_pair(scenario, query)
        savings = 100.0 * (1.0 - sens.total_transmissions / external.total_transmissions)
        series.add_row(
            fraction,
            round(achieved, 4),
            external.total_transmissions,
            sens.total_transmissions,
            round(savings, 1),
        )
    series.notes.append(f"{scenario.node_count} nodes, seed {seed}")
    return series


# ---------------------------------------------------------------------------
# Fig. 11 — per-node load vs number of descendants
# ---------------------------------------------------------------------------


def fig11_per_node(
    ratio: str = "33",
    fraction: float = constants.PAPER_RESULT_FRACTION,
    node_count: Optional[int] = None,
    seed: int = 0,
    bins: int = 8,
) -> ExperimentSeries:
    """Per-node transmissions against routing-tree descendants.

    The paper's headline: the most loaded nodes (many descendants, near the
    root — they determine network lifetime) are relieved by more than an
    order of magnitude at the 33 % ratio and by >75 % at 60 %.
    The scatter is summarised into descendant-count bins; the last row
    reports the most-loaded node of each method.
    """
    join_attrs, total_attrs = _ratio_counts(ratio)
    scenario = build_scenario(node_count, seed)
    query = calibrated_query(scenario, join_attrs, total_attrs, fraction)
    external, sens = _run_pair(scenario, query)

    descendants = scenario.tree.descendant_counts()
    ext_loads = {r.node_id: r.tx_packets for r in external.stats.per_node_loads(descendants)}
    sens_loads = {r.node_id: r.tx_packets for r in sens.stats.per_node_loads(descendants)}

    series = ExperimentSeries(
        experiment=f"fig11_{ratio}",
        title=f"Per-node transmissions vs descendants ({ratio}% join attributes)",
        columns=["descendants_bin", "nodes", "external_tx_mean", "sens_tx_mean", "reduction_x"],
    )
    max_desc = max(descendants.values()) or 1
    edges = [0] + [
        int(math.ceil(max_desc ** (i / bins))) for i in range(1, bins + 1)
    ]
    edges = sorted(set(edges))
    sensor_ids = [n for n in scenario.tree.node_ids if n != scenario.tree.root]
    for lo, hi in zip(edges, edges[1:]):
        members = [n for n in sensor_ids if lo <= descendants[n] < hi]
        if not members:
            continue
        ext_mean = sum(ext_loads.get(n, 0) for n in members) / len(members)
        sens_mean = sum(sens_loads.get(n, 0) for n in members) / len(members)
        reduction = round(ext_mean / sens_mean, 1) if sens_mean else "inf"
        series.add_row(
            f"[{lo},{hi})", len(members), round(ext_mean, 2), round(sens_mean, 2),
            reduction,
        )
    ext_max = max(ext_loads.get(n, 0) for n in sensor_ids)
    sens_max = max(sens_loads.get(n, 0) for n in sensor_ids)
    series.add_row(
        "most-loaded", 1, ext_max, sens_max,
        round(ext_max / sens_max, 1) if sens_max else "inf",
    )
    series.notes.append(
        f"most-loaded node relieved {ext_max}/{sens_max} = "
        f"{ext_max / max(sens_max, 1):.1f}x"
    )
    return series


# ---------------------------------------------------------------------------
# Figs. 12/13 — ratio of join attributes to attributes overall
# ---------------------------------------------------------------------------


def _ratio_sweep(
    experiment: str,
    title: str,
    join_attrs: int,
    totals: Sequence[int],
    fraction: float,
    node_count: Optional[int],
    seed: int,
) -> ExperimentSeries:
    scenario = build_scenario(node_count, seed)
    series = ExperimentSeries(
        experiment=experiment,
        title=title,
        columns=["total_attrs", "ratio_pct", "external_tx", "sens_tx", "savings_pct"],
    )
    for total in totals:
        query = calibrated_query(scenario, join_attrs, total, fraction)
        external, sens = _run_pair(scenario, query)
        savings = 100.0 * (1.0 - sens.total_transmissions / external.total_transmissions)
        series.add_row(
            total,
            round(100.0 * join_attrs / total, 1),
            external.total_transmissions,
            sens.total_transmissions,
            round(savings, 1),
        )
    series.notes.append(f"{scenario.node_count} nodes, {fraction:.0%} result fraction")
    return series


def fig12_ratio3(
    fraction: float = constants.PAPER_RESULT_FRACTION,
    node_count: Optional[int] = None,
    seed: int = 0,
    totals: Sequence[int] = (5, 4, 3),
) -> ExperimentSeries:
    """Three join attributes; attributes overall swept 5 -> 3 (Fig. 12).

    Savings grow as the ratio falls; even at the 100 % ratio SENS-Join still
    saves transmissions thanks to the quadtree representation.  ``totals``
    is the sweep axis (one value per row; exposed for the cell harness).
    """
    return _ratio_sweep(
        "fig12", "3 join attributes / x attributes overall", 3, tuple(totals),
        fraction, node_count, seed,
    )


def fig13_ratio1(
    fraction: float = constants.PAPER_RESULT_FRACTION,
    node_count: Optional[int] = None,
    seed: int = 0,
    totals: Sequence[int] = (1, 2, 3, 4, 5),
) -> ExperimentSeries:
    """One join attribute; attributes overall swept 1 -> 5 (Fig. 13)."""
    return _ratio_sweep(
        "fig13", "1 join attribute / x attributes overall", 1, tuple(totals),
        fraction, node_count, seed,
    )


# ---------------------------------------------------------------------------
# Fig. 14 — network size
# ---------------------------------------------------------------------------


def fig14_network_size(
    ratio: str = "33",
    fraction: float = constants.PAPER_RESULT_FRACTION,
    node_counts: Optional[Sequence[int]] = None,
    seed: int = 0,
) -> ExperimentSeries:
    """Savings across network sizes at constant density (Fig. 14).

    The paper sweeps 1000-2500 nodes and finds the savings slightly
    superlinear in the network size (the Treecut start-up region matters
    less in larger networks).  The default sweep scales the paper's sizes by
    the bench scale factor.
    """
    join_attrs, total_attrs = _ratio_counts(ratio)
    if node_counts is None:
        scale = default_node_count() / constants.PAPER_NODE_COUNT
        node_counts = [int(round(n * scale)) for n in (1000, 1500, 2000, 2500)]
    series = ExperimentSeries(
        experiment="fig14",
        title="Influence of the network size (constant density)",
        columns=["nodes", "external_tx", "sens_tx", "savings_pct", "saved_tx"],
    )
    for count in node_counts:
        scenario = build_scenario(count, seed)
        query = calibrated_query(scenario, join_attrs, total_attrs, fraction)
        external, sens = _run_pair(scenario, query)
        saved = external.total_transmissions - sens.total_transmissions
        series.add_row(
            count,
            external.total_transmissions,
            sens.total_transmissions,
            round(100.0 * saved / external.total_transmissions, 1),
            saved,
        )
    return series


# ---------------------------------------------------------------------------
# Fig. 15 — cost breakdown over the protocol steps
# ---------------------------------------------------------------------------


def fig15_step_breakdown(
    ratio: str = "60",
    fractions: Sequence[float] = (0.03, 0.05, 0.09, 0.25),
    node_count: Optional[int] = None,
    seed: int = 0,
) -> ExperimentSeries:
    """Per-step transmissions of SENS-Join at several result fractions.

    Expected shape (Fig. 15): the Join-Attribute-Collection cost is constant
    across fractions (it depends only on the join attributes), forming a
    lower bound; Filter-Dissemination and Final-Result grow with the
    fraction.  The external join's total is included for reference.
    """
    join_attrs, total_attrs = _ratio_counts(ratio)
    scenario = build_scenario(node_count, seed)
    series = ExperimentSeries(
        experiment="fig15",
        title="SENS-Join cost per step vs result fraction",
        columns=[
            "fraction", "collection_tx", "filter_tx", "final_tx", "sens_total",
            "external_total",
        ],
    )
    for fraction in fractions:
        query = calibrated_query(scenario, join_attrs, total_attrs, fraction)
        external, sens = _run_pair(scenario, query)
        phases = sens.per_phase_transmissions()
        series.add_row(
            fraction,
            phases.get(PHASE_COLLECTION, 0),
            phases.get(PHASE_FILTER, 0),
            phases.get(PHASE_FINAL, 0),
            sens.total_transmissions,
            external.total_transmissions,
        )
    series.notes.append("collection cost should be ~constant across fractions")
    return series


# ---------------------------------------------------------------------------
# Fig. 16 + §VI-B — the compact representation's contribution
# ---------------------------------------------------------------------------


def fig16_quadtree_influence(
    fraction: float = 0.04,
    node_count: Optional[int] = None,
    seed: int = 0,
) -> ExperimentSeries:
    """External join vs SENS-Join without/with the quadtree (Fig. 16).

    The paper (4 % of nodes in the result, Q2-style query): sending only
    join attributes cuts the collection step by ~38 % vs the external join;
    the quadtree representation roughly halves the remaining volume.
    """
    scenario = build_scenario(node_count, seed)
    join_attrs, total_attrs = RATIO_SETTINGS["60"]
    query = calibrated_query(scenario, join_attrs, total_attrs, fraction)
    external = scenario.run(query, ExternalJoin())
    sens_raw = scenario.run(query, SensJoin(SensJoinConfig(representation="raw")))
    sens_quad = scenario.run(query, SensJoin(SensJoinConfig()))
    series = ExperimentSeries(
        experiment="fig16",
        title="Influence of the quadtree representation (collection step)",
        columns=["variant", "collection_tx", "total_tx"],
    )
    series.add_row("external-join", external.total_transmissions, external.total_transmissions)
    for label, outcome in (("sens-no-quad", sens_raw), ("sens-join", sens_quad)):
        phases = outcome.per_phase_transmissions()
        series.add_row(label, phases.get(PHASE_COLLECTION, 0), outcome.total_transmissions)
    return series


def compression_table(
    node_count: Optional[int] = None,
    seed: int = 0,
) -> ExperimentSeries:
    """General-purpose compressors vs the quadtree (§VI-B text table).

    The paper (1500 nodes, three join attributes: temperature + X/Y):
    no compression 5619 packets, bzip2 5666 (inflates!), zlib 4571, quadtree
    2762 (halves).  The expected ordering is
    ``quadtree < zlib <= none <= bzip2``.
    """
    scenario = build_scenario(node_count, seed)
    join_attrs, total_attrs = RATIO_SETTINGS["60"]
    query = calibrated_query(scenario, join_attrs, total_attrs, 0.05)
    series = ExperimentSeries(
        experiment="compression_table",
        title="Join-Attribute-Collection cost under different representations",
        columns=["representation", "collection_tx", "collection_bytes"],
    )
    for representation in ("raw", "bzip2", "zlib", "quadtree"):
        outcome = scenario.run(
            query, SensJoin(SensJoinConfig(representation=representation))
        )
        label = "none" if representation == "raw" else representation
        phases = outcome.per_phase_transmissions()
        bytes_by_phase = {
            p: outcome.stats.total_tx_bytes([p]) for p in (PHASE_COLLECTION,)
        }
        series.add_row(
            label, phases.get(PHASE_COLLECTION, 0), bytes_by_phase[PHASE_COLLECTION]
        )
    series.notes.append("expected ordering: quadtree < zlib <= none <= bzip2")
    return series


# ---------------------------------------------------------------------------
# §VI-A packet size + §VII response time + ablations
# ---------------------------------------------------------------------------


def packet_size_study(
    ratio: str = "33",
    fraction: float = constants.PAPER_RESULT_FRACTION,
    packet_sizes: Sequence[int] = (
        constants.DEFAULT_MAX_PACKET_BYTES,
        constants.LARGE_MAX_PACKET_BYTES,
    ),
    node_count: Optional[int] = None,
    seed: int = 0,
) -> ExperimentSeries:
    """Influence of the maximum packet size (§VI-A, last paragraph).

    With larger packets the external join gains more in overall packet
    count (it ships more data per packet), but the most loaded nodes remain
    roughly an order of magnitude better off under SENS-Join.
    """
    join_attrs, total_attrs = _ratio_counts(ratio)
    series = ExperimentSeries(
        experiment="packet_size",
        title="Influence of the maximum packet size",
        columns=[
            "packet_bytes", "external_tx", "sens_tx", "savings_pct",
            "external_max_node", "sens_max_node", "max_node_reduction_x",
        ],
    )
    for packet_bytes in packet_sizes:
        scenario = build_scenario(node_count, seed, packet_bytes=packet_bytes)
        query = calibrated_query(scenario, join_attrs, total_attrs, fraction)
        external, sens = _run_pair(scenario, query)
        ext_max = external.max_node_transmissions()
        sens_max = sens.max_node_transmissions()
        series.add_row(
            packet_bytes,
            external.total_transmissions,
            sens.total_transmissions,
            round(100.0 * (1 - sens.total_transmissions / external.total_transmissions), 1),
            ext_max,
            sens_max,
            round(ext_max / max(sens_max, 1), 1),
        )
    return series


def response_time_study(
    ratio: str = "33",
    fractions: Sequence[float] = (0.05, 0.20, 0.40),
    node_count: Optional[int] = None,
    seed: int = 0,
) -> ExperimentSeries:
    """Response time tradeoff (§VII).

    SENS-Join adds the pre-computation round-trips, but its response time
    "is upper bounded by at most twice the duration of the external join".
    """
    join_attrs, total_attrs = _ratio_counts(ratio)
    scenario = build_scenario(node_count, seed)
    series = ExperimentSeries(
        experiment="response_time",
        title="Response time: SENS-Join vs external join",
        columns=["fraction", "external_s", "sens_s", "ratio"],
    )
    for fraction in fractions:
        query = calibrated_query(scenario, join_attrs, total_attrs, fraction)
        external, sens = _run_pair(scenario, query)
        series.add_row(
            fraction,
            round(external.response_time_s, 3),
            round(sens.response_time_s, 3),
            round(sens.response_time_s / max(external.response_time_s, 1e-9), 2),
        )
    series.notes.append("paper bound: ratio <= 2")
    return series


def ablation_study(
    ratio: str = "33",
    fraction: float = constants.PAPER_RESULT_FRACTION,
    node_count: Optional[int] = None,
    seed: int = 0,
) -> ExperimentSeries:
    """Ablate the paper's design choices (DESIGN.md experiment A1).

    Variants: Treecut disabled (``dmax=0``), Selective Filter Forwarding
    disabled (``limit=0``), raw representation, and a D_max sweep around the
    paper's 30 bytes.
    """
    join_attrs, total_attrs = _ratio_counts(ratio)
    scenario = build_scenario(node_count, seed)
    query = calibrated_query(scenario, join_attrs, total_attrs, fraction)
    external = scenario.run(query, ExternalJoin())
    variants = [
        ("default(dmax=30)", SensJoinConfig()),
        ("no-treecut", SensJoinConfig(dmax_bytes=0)),
        ("no-selective-fwd", SensJoinConfig(subtree_limit_bytes=0)),
        ("raw-representation", SensJoinConfig(representation="raw")),
        ("dmax=10", SensJoinConfig(dmax_bytes=10)),
        ("dmax=20", SensJoinConfig(dmax_bytes=20)),
        ("dmax=40", SensJoinConfig(dmax_bytes=40)),
    ]
    series = ExperimentSeries(
        experiment="ablation",
        title="Ablation of SENS-Join design choices",
        columns=["variant", "collection_tx", "filter_tx", "final_tx", "total_tx"],
    )
    series.add_row("external-join", 0, 0, 0, external.total_transmissions)
    for label, config in variants:
        outcome = scenario.run(query, SensJoin(config))
        phases = outcome.per_phase_transmissions()
        series.add_row(
            label,
            phases.get(PHASE_COLLECTION, 0),
            phases.get(PHASE_FILTER, 0),
            phases.get(PHASE_FINAL, 0),
            outcome.total_transmissions,
        )
    return series


# ---------------------------------------------------------------------------
# E12 — continuous queries with temporal suppression (paper's future work)
# ---------------------------------------------------------------------------


def continuous_study(
    drift_rates: Sequence[float] = (0.0001, 0.0005, 0.002),
    rounds: int = 6,
    node_count: Optional[int] = None,
    seed: int = 9,
    fraction: float = constants.PAPER_RESULT_FRACTION,
):
    """Per-round cost of the incremental executor vs repeated snapshots.

    Implements §VIII's future work ("exploiting temporal correlations"):
    under slow drift the quantized join-attribute points rarely change, so
    delta collection and filter-change suppression shrink the steady-state
    pre-computation.  The first round always pays the full snapshot cost.
    """
    from ..data.relations import SensorWorld
    from ..joins.incremental import IncrementalSensJoin
    from ..joins.runner import run_snapshot
    from ..query.parser import parse_query
    from ..query.query import JoinQuery, Once
    from ..sim.network import DeploymentConfig, deploy_uniform
    from .calibrate import calibrate_threshold

    if node_count is None:
        node_count = min(default_node_count(), 600)
    config = DeploymentConfig().scaled(node_count)
    config = DeploymentConfig(
        node_count=config.node_count, area_side_m=config.area_side_m, seed=seed
    )
    network = deploy_uniform(config)
    series = ExperimentSeries(
        experiment="continuous",
        title="Continuous queries: incremental vs snapshot SENS-Join (per round)",
        columns=[
            "drift_rate", "round0_tx", "steady_tx", "snapshot_sens_tx",
            "snapshot_external_tx", "steady_saving_pct",
        ],
    )
    for drift in drift_rates:
        world = SensorWorld.homogeneous(
            network, seed=seed, area_side_m=config.area_side_m, drift_rate=drift
        )

        def query_for(threshold: float):
            return parse_query(
                "SELECT A.hum, B.hum FROM sensors A, sensors B "
                f"WHERE A.temp - B.temp > {threshold:.9f} ONCE"
            )

        threshold, _ = calibrate_threshold(
            world, query_for, fraction, 0.0, 40.0, increasing=False
        )
        continuous = parse_query(
            "SELECT A.hum, B.hum FROM sensors A, sensors B "
            f"WHERE A.temp - B.temp > {threshold:.9f} SAMPLE PERIOD 60"
        )
        executor = IncrementalSensJoin(network, world, continuous, tree_seed=seed)
        per_round = [executor.run_round(r * 60.0).total_transmissions for r in range(rounds)]
        steady = sum(per_round[1:]) / max(len(per_round) - 1, 1)
        once = JoinQuery(continuous.select, continuous.relations, continuous.where, Once())
        snapshot = run_snapshot(network, world, once, "sens-join", tree_seed=seed)
        external = run_snapshot(network, world, once, "external-join", tree_seed=seed)
        saving = 100.0 * (1.0 - steady / snapshot.total_transmissions)
        series.add_row(
            drift,
            per_round[0],
            round(steady, 1),
            snapshot.total_transmissions,
            external.total_transmissions,
            round(saving, 1),
        )
    series.notes.append("steady = mean of rounds 1..n (round 0 pays full cost)")
    return series


# ---------------------------------------------------------------------------
# §IV-E — join-location analysis (the design-decision check)
# ---------------------------------------------------------------------------


def placement_study(
    ratio: str = "33",
    fractions: Sequence[float] = (0.05, 0.20, 0.60),
    node_count: Optional[int] = None,
    seed: int = 0,
):
    """Validate §IV-E: post-filtering, the base station is the right place.

    For each result fraction we take the *filtered* input (the nodes the
    join filter keeps) and the actual result size, and ask the byte-hops
    model of :mod:`repro.joins.placement` whether any in-network location
    beats the base station.  The paper's claim: with the filter applied the
    join's output exceeds its input, so shipping the result is never worth
    it — "For the final result, the base station is the optimal join
    location".
    """
    from ..joins.placement import analyze_join_location
    from ..joins.sensjoin import SensJoin

    join_attrs, total_attrs = _ratio_counts(ratio)
    scenario = build_scenario(node_count, seed)
    fmt_bytes = 2 * total_attrs
    series = ExperimentSeries(
        experiment="placement",
        title="Join location after filtering: base station vs best in-network",
        columns=[
            "fraction", "filtered_inputs", "result_rows", "bs_byte_hops",
            "best_in_network_byte_hops", "bs_optimal",
        ],
    )
    for fraction in fractions:
        query = calibrated_query(scenario, join_attrs, total_attrs, fraction)
        outcome = scenario.run(query, SensJoin())
        contributors = sorted(
            {record for record in outcome.result.all_contributing_nodes()}
        )
        report = analyze_join_location(
            scenario.network,
            contributors,
            tuple_bytes=fmt_bytes,
            result_rows=outcome.result.match_count,
            result_row_bytes=2 * len(query.select),
        )
        series.add_row(
            fraction,
            len(contributors),
            outcome.result.match_count,
            round(report.base_station.total, 0),
            round(report.best_in_network.total, 0),
            str(report.base_station_is_optimal),
        )
    series.notes.append(
        "post-filter result rows >= inputs, so shipping the result loses"
    )
    return series


# ---------------------------------------------------------------------------
# §IV-C — Selective Filter Forwarding memory audit
# ---------------------------------------------------------------------------


def memory_study(
    ratio: str = "60",
    fraction: float = constants.PAPER_RESULT_FRACTION,
    node_count: Optional[int] = None,
    seed: int = 0,
    depth_buckets: int = 5,
):
    """Audit the SubtreeJoinAtts memory against the paper's §IV-C claims.

    The paper bounds Selective Filter Forwarding's memory with a 500-byte
    cap and argues "the amount of data exceeds a few hundred bytes close to
    the root only" while "the mechanism has its main benefit towards the
    leaves".  This experiment records every node's stored subtree size via
    the protocol tracer and buckets it by tree depth.
    """
    from ..joins.sensjoin import SensJoin
    from ..sim.trace import ListTracer

    join_attrs, total_attrs = _ratio_counts(ratio)
    scenario = build_scenario(node_count, seed)
    query = calibrated_query(scenario, join_attrs, total_attrs, fraction)
    tracer = ListTracer()
    scenario.run(query, SensJoin(tracer=tracer))

    stored = tracer.filter(kind="subtree-store")
    overflow = tracer.filter(kind="subtree-overflow")
    depth_of = {n: scenario.tree.depth(n) for n in scenario.tree.node_ids}
    height = scenario.tree.height or 1

    series = ExperimentSeries(
        experiment="memory",
        title="Selective Filter Forwarding memory by tree depth",
        columns=["depth_bucket", "nodes_storing", "mean_bytes", "max_bytes", "overflows"],
    )
    bucket_span = max(1, (height + depth_buckets - 1) // depth_buckets)
    for bucket_start in range(0, height + 1, bucket_span):
        bucket_end = bucket_start + bucket_span
        in_bucket = [
            event for event in stored
            if bucket_start <= depth_of[event.node_id] < bucket_end
        ]
        over_bucket = [
            event for event in overflow
            if bucket_start <= depth_of[event.node_id] < bucket_end
        ]
        if not in_bucket and not over_bucket:
            continue
        sizes = [event.detail["bytes"] for event in in_bucket]
        series.add_row(
            f"[{bucket_start},{bucket_end})",
            len(in_bucket),
            round(sum(sizes) / len(sizes), 1) if sizes else 0,
            max(sizes) if sizes else 0,
            len(over_bucket),
        )
    series.notes.append(
        f"500-byte cap exceeded by {len(overflow)} node(s) network-wide "
        "(expected: only close to the root)"
    )
    return series


# ---------------------------------------------------------------------------
# Requirements 1 & 2 — the "general-purpose" battery
# ---------------------------------------------------------------------------


def generality_study(
    node_count: Optional[int] = None,
    seed: int = 0,
):
    """Exercise the paper's Requirements 1 and 2 across query shapes.

    Requirement 1: "any number and any kind of join conditions and join
    attributes"; Requirement 2: "arbitrary placements of the tuples".  Each
    row runs one query shape through SENS-Join and the external join,
    asserts identical results, and reports both costs.  Shapes: theta,
    similarity + distance, disjunction, aggregate, three-way self-join, and
    a heterogeneous two-relation join.
    """
    from ..data.relations import SensorWorld
    from ..joins.external import ExternalJoin
    from ..joins.sensjoin import SensJoin
    from ..joins.runner import run_snapshot
    from ..query.parser import parse_query

    scenario = build_scenario(node_count, seed)
    network, world, tree = scenario.network, scenario.world, scenario.tree

    shapes = [
        ("theta", "SELECT A.hum, B.hum FROM sensors A, sensors B "
                  "WHERE A.temp - B.temp > 21.0 ONCE"),
        ("similarity+distance",
         "SELECT A.hum, B.hum FROM sensors A, sensors B "
         "WHERE A.temp - B.temp > 20.0 AND distance(A.x, A.y, B.x, B.y) > 200 ONCE"),
        ("disjunction",
         "SELECT A.hum, B.hum FROM sensors A, sensors B "
         "WHERE A.temp - B.temp > 21.0 OR B.light - A.light > 1300 ONCE"),
        ("aggregate",
         "SELECT MIN(distance(A.x, A.y, B.x, B.y)) FROM sensors A, sensors B "
         "WHERE A.temp - B.temp > 20.0 ONCE"),
        ("three-way",
         "SELECT A.hum FROM sensors A, sensors B, sensors C "
         "WHERE A.temp - B.temp > 11.0 AND B.temp - C.temp > 11.0 ONCE"),
    ]

    series = ExperimentSeries(
        experiment="generality",
        title="Requirement 1/2 battery: arbitrary conditions and placements",
        columns=["shape", "matches", "external_tx", "sens_tx", "identical"],
    )
    for label, sql in shapes:
        query = parse_query(sql, catalog=world.catalog)
        external = run_snapshot(network, world, query, ExternalJoin(), tree=tree,
                                tree_seed=seed)
        sens = run_snapshot(network, world, query, SensJoin(), tree=tree,
                            tree_seed=seed)
        series.add_row(
            label,
            sens.result.match_count,
            external.total_transmissions,
            sens.total_transmissions,
            str(external.result.match_count == sens.result.match_count),
        )

    # Heterogeneous two-relation join over the same deployment.
    hetero_world = SensorWorld.two_relations(
        network, split=0.5, seed=seed, area_side_m=scenario.config.area_side_m
    )
    query = parse_query(
        "SELECT A.hum, B.hum FROM rel_a A, rel_b B WHERE A.temp - B.temp > 20.0 ONCE"
    )
    external = run_snapshot(network, hetero_world, query, ExternalJoin(), tree=tree,
                            tree_seed=seed)
    sens = run_snapshot(network, hetero_world, query, SensJoin(), tree=tree,
                        tree_seed=seed)
    series.add_row(
        "heterogeneous",
        sens.result.match_count,
        external.total_transmissions,
        sens.total_transmissions,
        str(external.result.match_count == sens.result.match_count),
    )
    # Restore the homogeneous membership for other users of the cached scenario.
    scenario.world._apply_memberships()
    return series


# ---------------------------------------------------------------------------
# §II — where the specialised related-work joins actually win
# ---------------------------------------------------------------------------


def related_work_study(seed: int = 3):
    """Reproduce §II's applicability claim for the specialised joins.

    "While their performance is very good when they are applicable, the
    underlying assumptions are strict": two small input regions close to
    each other, far from the base station, and a highly selective join.
    In that niche the mediated join beats the external join; on the paper's
    general workload it loses badly.  Both regimes in one table.
    """
    from ..data.relations import SensorWorld
    from ..joins.external import ExternalJoin
    from ..joins.mediated import MediatedJoin
    from ..joins.sensjoin import SensJoin
    from ..joins.runner import run_snapshot
    from ..query.parser import parse_query
    from ..sim.network import DeploymentConfig, deploy_uniform

    series = ExperimentSeries(
        experiment="related_work",
        title="Specialised joins: their niche vs the general setting",
        columns=["setting", "algorithm", "total_tx", "matches"],
    )

    # Niche setting: two small regions in the far corner of the area.
    config = DeploymentConfig(node_count=300, area_side_m=470.0, seed=seed)
    network = deploy_uniform(config)

    def region(node, cx, cy, radius=90.0):
        return (node.x - cx) ** 2 + (node.y - cy) ** 2 < radius**2

    members_a = [n for n in network.sensor_node_ids
                 if region(network.nodes[n], 120.0, 400.0)]
    members_b = [n for n in network.sensor_node_ids
                 if region(network.nodes[n], 330.0, 400.0)]
    world = SensorWorld(
        network,
        __import__("repro.data.relations", fromlist=["default_fields"]).default_fields(
            470.0, seed=seed
        ),
        relations={"rel_a": members_a, "rel_b": [n for n in members_b
                                                 if n not in set(members_a)]},
    )
    niche_query = parse_query(
        "SELECT A.hum, B.hum FROM rel_a A, rel_b B WHERE A.temp - B.temp > 4.5 ONCE"
    )
    for algorithm in (ExternalJoin(), SensJoin(), MediatedJoin()):
        outcome = run_snapshot(network, world, niche_query, algorithm, tree_seed=seed)
        series.add_row("niche(two-regions)", outcome.algorithm,
                       outcome.total_transmissions, outcome.result.match_count)

    # General setting: the paper's homogeneous self-join at 5%.
    scenario = build_scenario(300, seed)
    general_query = calibrated_query(scenario, 1, 3, 0.05)
    for algorithm in (ExternalJoin(), SensJoin(), MediatedJoin()):
        outcome = scenario.run(general_query, algorithm)
        series.add_row("general(self-join)", outcome.algorithm,
                       outcome.total_transmissions, outcome.result.match_count)
    series.notes.append(
        "niche: mediated competitive; general: external/SENS dominate"
    )
    return series


# ---------------------------------------------------------------------------
# Robustness — variance across deployment/data seeds
# ---------------------------------------------------------------------------


def variance_study(
    ratio: str = "33",
    fraction: float = constants.PAPER_RESULT_FRACTION,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    node_count: Optional[int] = None,
):
    """The headline comparison across independent deployments.

    The paper reports single simulation runs; this study repeats the
    default-setting comparison over several deployment/data seeds and
    reports the spread — the savings must not be an artefact of one
    topology.  The mean/spread note is computed from the *rounded* per-row
    savings so the parallel harness can recompute it from rows alone.
    """
    join_attrs, total_attrs = _ratio_counts(ratio)
    series = ExperimentSeries(
        experiment="variance",
        title=f"Savings across seeds ({ratio}% ratio, {fraction:.0%} fraction)",
        columns=["seed", "external_tx", "sens_tx", "savings_pct", "max_node_reduction_x"],
    )
    savings_values = []
    for seed in seeds:
        scenario = build_scenario(node_count, seed)
        query = calibrated_query(scenario, join_attrs, total_attrs, fraction)
        external, sens = _run_pair(scenario, query)
        savings = 100.0 * (1.0 - sens.total_transmissions / external.total_transmissions)
        savings_values.append(round(savings, 1))
        reduction = external.max_node_transmissions() / max(sens.max_node_transmissions(), 1)
        series.add_row(
            seed,
            external.total_transmissions,
            sens.total_transmissions,
            round(savings, 1),
            round(reduction, 1),
        )
    series.notes.append(variance_summary_note(savings_values))
    return series


def variance_summary_note(savings_values: Sequence[float]) -> str:
    """The mean/spread note of :func:`variance_study`.

    Shared with :mod:`repro.bench.harness`, which must regenerate the note
    from concatenated per-seed rows when the study runs as parallel cells.
    """
    mean = sum(savings_values) / len(savings_values)
    spread = (
        sum((value - mean) ** 2 for value in savings_values) / len(savings_values)
    ) ** 0.5
    return (
        f"savings mean {mean:.1f}% +- {spread:.1f}% over "
        f"{len(savings_values)} seeds"
    )


# ---------------------------------------------------------------------------
# §V-B — sensitivity to the quantization resolution
# ---------------------------------------------------------------------------


def resolution_study(
    resolutions: Sequence[float] = (0.02, 0.05, 0.1, 0.5, 1.0, 2.0, 4.0),
    fraction: float = constants.PAPER_RESULT_FRACTION,
    node_count: Optional[int] = None,
    seed: int = 0,
):
    """Sweep the temperature quantization resolution (§V-B).

    The paper: "the performance of SENS-Join is insensitive to the
    resolution used for the pre-computation as long as it is not too
    coarse" — finer steps cost more bits per point, coarser steps cost
    false positives (footnote 2), and 0.1 °C sits on a wide plateau.
    The result stays exact at every resolution (conservative evaluation).
    """
    from ..data.relations import SensorWorld, default_fields
    from ..data.sensors import SensorCatalog, SensorSpec, standard_catalog
    from ..joins.external import ExternalJoin
    from ..joins.sensjoin import SensJoin
    from ..joins.runner import run_snapshot

    scenario = build_scenario(node_count, seed)
    network = scenario.network
    side = scenario.config.area_side_m
    query = calibrated_query(scenario, 1, 3, fraction)

    series = ExperimentSeries(
        experiment="resolution",
        title="Quantization resolution sweep (temperature)",
        columns=[
            "resolution_degC", "temp_bits", "sens_tx", "false_positives",
            "external_tx", "identical",
        ],
    )
    for resolution in resolutions:
        specs = []
        for spec in standard_catalog(side):
            if spec.name == "temp":
                specs.append(
                    SensorSpec("temp", spec.unit, spec.min_value, spec.max_value,
                               resolution)
                )
            else:
                specs.append(spec)
        catalog = SensorCatalog(specs)
        world = SensorWorld(
            network,
            default_fields(side, seed=seed),
            catalog=catalog,
        )
        external = run_snapshot(network, world, query, ExternalJoin(),
                                tree=scenario.tree, tree_seed=seed)
        sens = run_snapshot(network, world, query, SensJoin(),
                            tree=scenario.tree, tree_seed=seed)
        from ..codec.quantize import QuantizedDimension

        bits = QuantizedDimension.from_spec(catalog["temp"]).bits
        series.add_row(
            resolution,
            bits,
            sens.total_transmissions,
            int(sens.details["false_positives"]),
            external.total_transmissions,
            str(external.result.match_count == sens.result.match_count),
        )
    # Restore the cached scenario's own world/membership.
    scenario.world._apply_memberships()
    series.notes.append(
        "expect a plateau around 0.1 degC; false positives rise once the "
        "resolution exceeds the calibrated condition's scale"
    )
    return series


# ---------------------------------------------------------------------------
# §IV-F — lossy links: retransmission cost across join methods
# ---------------------------------------------------------------------------


def loss_study(
    loss_rates: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.3),
    fraction: float = constants.PAPER_RESULT_FRACTION,
    node_count: Optional[int] = None,
    seed: int = 0,
) -> ExperimentSeries:
    """Every join method under increasing worst-link packet loss (§IV-F).

    The link layer absorbs loss through bounded ARQ, so every method still
    returns its exact result; what changes is the retransmission load on top
    of the paper's transmission metric.  The first transmissions themselves
    are loss-invariant (same data, same tree) and the ARQ draws share one
    seeded stream, so ``retransmissions`` grows monotonically with the loss
    rate per (algorithm, phase).
    """
    from ..joins.mediated import MediatedJoin
    from ..joins.semijoin import SemiJoinBroadcast

    series = ExperimentSeries(
        experiment="loss",
        title="Join methods under lossy links with link-layer ARQ",
        columns=[
            "loss_rate", "algorithm", "total_tx", "retransmissions",
            "retx_overhead_pct", "matches",
        ],
    )
    reference_matches: Optional[int] = None
    for loss_rate in loss_rates:
        scenario = build_scenario(node_count, seed, loss_rate=loss_rate)
        query = calibrated_query(scenario, *RATIO_SETTINGS["33"], fraction)
        for algorithm in (ExternalJoin(), SensJoin(), SemiJoinBroadcast(), MediatedJoin()):
            outcome = scenario.run(query, algorithm)
            if algorithm.name == "sens-join":
                if reference_matches is None:
                    reference_matches = outcome.result.match_count
                elif outcome.result.match_count != reference_matches:
                    raise ProtocolError(
                        "SENS-Join result changed under loss: "
                        f"{outcome.result.match_count} vs {reference_matches} matches"
                    )
            retx = outcome.total_retransmissions
            series.add_row(
                loss_rate,
                outcome.algorithm,
                outcome.total_transmissions,
                retx,
                round(100.0 * retx / max(outcome.total_transmissions, 1), 1),
                outcome.result.match_count,
            )
    series.notes.append(
        "results are exact at every loss rate; retransmissions grow "
        "monotonically with the loss rate per algorithm"
    )
    return series


# ---------------------------------------------------------------------------
# Robustness — base-station placement
# ---------------------------------------------------------------------------


def bs_position_study(
    fraction: float = constants.PAPER_RESULT_FRACTION,
    node_count: Optional[int] = None,
    seed: int = 0,
):
    """The headline comparison for different base-station placements.

    The paper does not pin the access point's position; the savings should
    not depend on it.  Edge-centre (our default, deepest tree), corner
    (deeper still) and area-centre (shallowest) are compared.
    """
    from ..data.relations import SensorWorld
    from ..joins.external import ExternalJoin
    from ..joins.sensjoin import SensJoin
    from ..joins.runner import run_snapshot
    from ..routing.ctp import build_tree
    from ..sim.network import DeploymentConfig, deploy_uniform
    from ..sim.radio import PacketFormat
    from .calibrate import calibrate_threshold

    if node_count is None:
        node_count = default_node_count()
    base = DeploymentConfig().scaled(node_count)
    side = base.area_side_m
    placements = [
        ("edge-centre", (side / 2.0, 0.0)),
        ("corner", (0.0, 0.0)),
        ("area-centre", (side / 2.0, side / 2.0)),
    ]
    series = ExperimentSeries(
        experiment="bs_position",
        title="Savings vs base-station placement",
        columns=["placement", "tree_height", "external_tx", "sens_tx", "savings_pct"],
    )
    builder = ratio_query_builder(1, 3)
    for label, position in placements:
        config = DeploymentConfig(
            node_count=node_count, area_side_m=side, seed=seed,
            base_station_position=position,
        )
        network = deploy_uniform(config, packet_format=PacketFormat())
        world = SensorWorld.homogeneous(network, seed=seed, area_side_m=side)
        tree = build_tree(network, seed=seed)
        threshold, _ = calibrate_threshold(
            world, builder, fraction, 0.0, 40.0, increasing=False
        )
        query = builder(threshold)
        external = run_snapshot(network, world, query, ExternalJoin(), tree=tree,
                                tree_seed=seed)
        sens = run_snapshot(network, world, query, SensJoin(), tree=tree,
                            tree_seed=seed)
        savings = 100.0 * (1.0 - sens.total_transmissions / external.total_transmissions)
        series.add_row(
            label, tree.height, external.total_transmissions,
            sens.total_transmissions, round(savings, 1),
        )
    series.notes.append("SENS-Join wins for every placement; deeper trees save more")
    return series


# ---------------------------------------------------------------------------
# Robustness — in-flight faults, recovery and completeness (§IV-F)
# ---------------------------------------------------------------------------


def failure_study(
    crash_fractions: Sequence[float] = (0.0, 0.02, 0.05, 0.1),
    fraction: float = constants.PAPER_RESULT_FRACTION,
    node_count: Optional[int] = None,
    seed: int = 0,
    max_retries: int = 6,
) -> ExperimentSeries:
    """Mid-query node crashes: detection, repair, cost and completeness.

    For each crash fraction a deterministic :class:`FaultPlan` kills that
    share of the nodes at random times during the first execution.  Three
    recovery models are compared on total cost (including every aborted
    attempt), retries and recall against the pre-failure oracle:

    * ``sens-join[des]`` — the in-flight §IV-F loop: the DES engine detects
      the stall at the base station, repairs the tree mid-query, backs off
      and re-executes on the same kernel timeline;
    * ``sens-join`` / ``external-join`` — the abstract model of
      :func:`~repro.joins.runner.run_with_failures`: the whole batch of
      crashes voids the first attempt (charged in full), then the repaired
      tree re-executes.

    Faults mutate the topology, so every row runs on a *fresh* deployment
    (the shared cached scenario is used read-only, for calibration).
    """
    from ..data.relations import SensorWorld
    from ..joins.base import ExecutionContext, oracle_result
    from ..joins.des_sensjoin import DesSensJoin, RecoveryPolicy
    from ..joins.runner import NetworkFailure, run_snapshot, run_with_failures
    from ..routing.ctp import build_tree
    from ..sim.faults import random_crash_plan

    if node_count is None:
        node_count = min(default_node_count(), 300)
    scenario = build_scenario(node_count, seed)
    query = calibrated_query(scenario, *RATIO_SETTINGS["33"], fraction)
    config = scenario.config

    def fresh_deployment():
        from ..sim.network import deploy_uniform

        network = deploy_uniform(config)
        world = SensorWorld.homogeneous(
            network, seed=seed, area_side_m=config.area_side_m
        )
        tree = build_tree(network, seed=seed)
        return network, world, tree

    series = ExperimentSeries(
        experiment="failure",
        title="Mid-query node crashes: repair cost and completeness (§IV-F)",
        columns=[
            "crash_fraction", "algorithm", "total_tx", "retries",
            "recall", "aborted_tx", "aborted_energy",
        ],
    )
    for crash_fraction in crash_fractions:
        network, world, tree = fresh_deployment()
        crash_count = int(round(crash_fraction * len(network.sensor_node_ids)))
        # Crash times are spread over the first execution's collection
        # phase, whose simulated span scales with the tree depth — so the
        # faults genuinely strike mid-query.
        horizon_s = tree.height * constants.DEFAULT_HOP_LATENCY_S
        plan = random_crash_plan(
            network.sensor_node_ids, crash_count, horizon_s=horizon_s, seed=seed
        )
        engine = DesSensJoin(
            fault_plan=plan,
            recovery=RecoveryPolicy(max_retries=max_retries),
            repair_seed=seed,
        )
        outcome = run_snapshot(
            network, world, query, engine, tree=tree, tree_seed=seed
        )
        series.add_row(
            crash_fraction,
            outcome.algorithm,
            outcome.total_transmissions,
            int(outcome.details.get("retries", 0)),
            round(outcome.details.get("recall", 1.0), 3),
            int(outcome.details.get("aborted_tx_packets", 0)),
            round(outcome.details.get("aborted_energy", 0.0), 1),
        )
        victims = plan.crashed_nodes
        for algorithm in ("sens-join", "external-join"):
            network, world, tree = fresh_deployment()
            world.take_snapshot(0.0)
            oracle = oracle_result(
                ExecutionContext(network=network, tree=tree, world=world, query=query)
            )
            failures = [NetworkFailure("node", victim) for victim in victims]
            outcome = run_with_failures(
                network, world, query, algorithm,
                failures=failures, max_retries=max_retries, tree_seed=seed,
            )
            recall = (
                outcome.result.match_count / oracle.match_count
                if oracle.match_count
                else 1.0
            )
            series.add_row(
                crash_fraction,
                outcome.algorithm,
                outcome.total_transmissions,
                int(outcome.details.get("retries", 0)),
                round(recall, 3),
                int(outcome.details.get("aborted_tx_packets", 0)),
                round(outcome.details.get("aborted_energy", 0.0), 1),
            )
    series.notes.append(
        "aborted_tx/aborted_energy = cost of attempts that delivered "
        "nothing; recall is measured against the pre-failure oracle"
    )
    return series


def concurrency_study(
    workloads: Sequence[str] = ("poisson", "bursty"),
    concurrency_levels: Sequence[int] = (1, 2, 4, 8),
    query_count: int = 16,
    rate_hz: float = 2.0,
    node_count: Optional[int] = None,
    seed: int = 0,
) -> ExperimentSeries:
    """Concurrent multi-query broker: shared-work amortization vs serial.

    Beyond the paper (§III runs one query at a time): a seeded workload of
    ``query_count`` queries — Poisson or bursty arrivals, Zipf-popular over
    a pool of calibrated templates — is driven through the
    :class:`~repro.service.broker.QueryBroker` at each concurrency limit,
    and compared against the serial single-query reference (concurrency 1,
    sharing off) *on the same workload*.  Reported per sweep point: batch
    and share-group counts, piggybacked filter broadcasts, per-query
    latency percentiles, and the total energy/transmission savings.

    Every cell recomputes its own serial baseline so sweep points stay
    independent (the harness cell contract); the baseline work is cheap
    next to the sweep point itself and is what makes ``savings_pct``
    self-contained.  Each broker query's result set is checked against its
    serial counterpart — a mismatch raises, so the table can only ever
    show numbers from exact executions.
    """
    from ..service.broker import BrokerConfig, QueryBroker
    from ..service.workloads import WorkloadSpec, generate_workload

    if node_count is None:
        node_count = min(default_node_count(), 300)
    scenario = build_scenario(node_count, seed)
    # Template pool, hottest first: three selectivities of the 1/3-ratio
    # family (share one quantized domain -> filters compose) plus one
    # 3/5-ratio template (separate domain -> exercises piggybacking).  The
    # second family sits at Zipf rank 2 so realistic workloads actually
    # mix the two domains within a batch.
    templates = [
        calibrated_query(scenario, *RATIO_SETTINGS["33"], 0.05),
        calibrated_query(scenario, *RATIO_SETTINGS["60"], 0.05),
        calibrated_query(scenario, *RATIO_SETTINGS["33"], 0.02),
        calibrated_query(scenario, *RATIO_SETTINGS["33"], 0.08),
    ]

    series = ExperimentSeries(
        experiment="concurrency",
        title="Concurrent multi-query broker: work sharing vs serial execution",
        columns=[
            "workload", "concurrency", "queries", "batches", "share_groups",
            "piggybacked", "total_tx", "p50_latency_s", "p95_latency_s",
            "energy_savings_pct", "tx_savings_pct",
        ],
    )
    for workload in workloads:
        for concurrency in concurrency_levels:
            spec = WorkloadSpec(
                kind=workload, rate_hz=rate_hz, count=query_count, seed=seed
            )
            requests = generate_workload(spec, templates)
            serial = QueryBroker(
                scenario.network,
                scenario.world,
                BrokerConfig(concurrency=1, share_work=False),
                tree=scenario.tree,
            ).run(requests)
            broker = QueryBroker(
                scenario.network,
                scenario.world,
                BrokerConfig(concurrency=concurrency, share_work=True),
                tree=scenario.tree,
            ).run(requests)
            for ref, out in zip(serial.outcomes, broker.outcomes):
                if ref.result_set() != out.result_set():
                    raise ProtocolError(
                        f"shared execution changed query {ref.request.query_id}"
                        f" at concurrency {concurrency}"
                    )
            series.add_row(
                workload,
                concurrency,
                len(broker.outcomes),
                broker.batch_count,
                int(broker.details["share_groups"]),
                int(broker.details["piggybacked_broadcasts"]),
                broker.total_tx_packets,
                round(broker.latency_percentile(0.5), 3),
                round(broker.latency_percentile(0.95), 3),
                round(
                    100.0 * (1.0 - broker.total_energy_j / serial.total_energy_j), 1
                ),
                round(
                    100.0
                    * (1.0 - broker.total_tx_packets / max(serial.total_tx_packets, 1)),
                    1,
                ),
            )
    series.notes.append(
        "savings vs a serial single-query baseline on the same workload; "
        "every broker result set verified identical to its serial run"
    )
    return series


def churn_study(
    churn_rates: Sequence[float] = (0.0, 0.1, 0.2),
    concurrency_levels: Sequence[int] = (1, 8),
    query_count: int = 12,
    rate_hz: float = 2.0,
    node_count: Optional[int] = None,
    seed: int = 0,
    churn_horizon_s: float = 4.0,
) -> ExperimentSeries:
    """Broker degradation ladder under continuous churn: recall vs cost.

    Beyond the paper's one-shot fault batches (§IV-F): a seeded
    :class:`~repro.sim.faults.ChurnModel` keeps departing and rejoining
    nodes for the whole workload while the
    :class:`~repro.service.broker.QueryBroker` runs its resilient ladder
    (shared retries with backoff -> group split -> per-query fallback) and
    the routing tree self-heals incrementally via
    :func:`~repro.routing.ctp.reattach_tree`.  Reported per sweep point:
    terminal status counts, recall against the pre-churn lossless oracle,
    latency percentiles, and the repair overhead (beacons plus energy)
    charged to the ledger.

    Churn mutates the topology, so every cell runs on a *fresh*
    deployment (the cached scenario is used read-only, for calibration).
    Every cell — including ``churn_rate=0.0`` — runs with a
    :class:`~repro.service.broker.DeadlinePolicy` so the resilient code
    path and the report's detail keys are uniform across rows; there is
    deliberately *no* serial cross-check here, because churn legitimately
    changes result sets (that property is checked by the zero-churn
    byte-identity of ``concurrency_study``).
    """
    from ..data.relations import SensorWorld
    from ..routing.ctp import build_tree
    from ..service.broker import BrokerConfig, DeadlinePolicy, QueryBroker
    from ..service.workloads import WorkloadSpec, generate_workload
    from ..sim.faults import ChurnModel
    from ..sim.network import deploy_uniform

    if node_count is None:
        node_count = min(default_node_count(), 300)
    scenario = build_scenario(node_count, seed)
    # Same template pool as concurrency_study, so the zero-churn rows are
    # directly comparable with that experiment's workload.
    templates = [
        calibrated_query(scenario, *RATIO_SETTINGS["33"], 0.05),
        calibrated_query(scenario, *RATIO_SETTINGS["60"], 0.05),
        calibrated_query(scenario, *RATIO_SETTINGS["33"], 0.02),
        calibrated_query(scenario, *RATIO_SETTINGS["33"], 0.08),
    ]
    config = scenario.config

    def fresh_deployment():
        network = deploy_uniform(config)
        world = SensorWorld.homogeneous(
            network, seed=seed, area_side_m=config.area_side_m
        )
        tree = build_tree(network, seed=seed)
        return network, world, tree

    series = ExperimentSeries(
        experiment="churn",
        title="Continuous churn: self-healing trees and broker degradation",
        columns=[
            "churn_rate", "concurrency", "queries", "completed", "degraded",
            "shed", "mean_recall", "min_recall", "p50_latency_s",
            "p95_latency_s", "total_tx", "total_energy", "faults",
            "repairs", "repair_beacons", "repair_energy",
        ],
    )
    for churn_rate in churn_rates:
        for concurrency in concurrency_levels:
            network, world, tree = fresh_deployment()
            spec = WorkloadSpec(
                kind="poisson", rate_hz=rate_hz, count=query_count, seed=seed
            )
            requests = generate_workload(spec, templates)
            churn = ChurnModel.from_departure_fraction(
                churn_rate,
                horizon_s=churn_horizon_s,
                seed=seed,
                rejoin_delay_s=churn_horizon_s / 4.0,
                rejoin_jitter_m=10.0,
            )
            report = QueryBroker(
                network,
                world,
                BrokerConfig(
                    concurrency=concurrency,
                    share_work=concurrency > 1,
                    deadline=DeadlinePolicy(seed=seed),
                ),
                tree=tree,
                tree_seed=seed,
                churn=churn,
            ).run(requests)
            details = report.details
            series.add_row(
                churn_rate,
                concurrency,
                len(report.outcomes),
                int(details["completed"]),
                int(details["degraded"]),
                int(details["shed"]),
                round(details["mean_recall"], 3),
                round(details["min_recall"], 3),
                round(report.latency_percentile(0.5), 3),
                round(report.latency_percentile(0.95), 3),
                report.total_tx_packets,
                round(report.total_energy_j, 1),
                int(details["churn_faults_applied"]),
                int(details["repairs"]),
                int(details["repair_beacons"]),
                round(details["repair_energy_j"], 1),
            )
    series.notes.append(
        "recall measured against the pre-churn lossless oracle; "
        "repair_* = incremental tree re-attach overhead charged to the "
        "energy ledger; no serial cross-check — churn changes result sets"
    )
    return series

# ---------------------------------------------------------------------------
# Scale studies — beyond the paper's 1500 nodes (E13)
# ---------------------------------------------------------------------------

#: Node-count ladder of the scale study, defined at the default bench scale.
#: ``scale_node_counts`` rescales it linearly, so ``--nodes`` pins the whole
#: ladder the same way ``fig14_network_size`` pins its sweep: the default 600
#: runs exactly 1k/5k/10k, a ``--nodes 100`` smoke runs 167/833/1667.
SCALE_LADDER = (1000, 5000, 10000)

#: The bench default the ladder is calibrated against (not
#: :func:`default_node_count`, which moves under ``REPRO_SCALE=paper``).
SCALE_BASE_NODE_COUNT = 600


def scale_node_counts(node_count: int) -> List[int]:
    """The scale-study sweep sizes at the requested harness scale."""
    scale = node_count / SCALE_BASE_NODE_COUNT
    return [max(8, int(round(c * scale))) for c in SCALE_LADDER]


def scale_study(
    node_counts: Optional[Sequence[int]] = None,
    routings: Sequence[str] = ("flat", "cluster"),
    node_count: Optional[int] = None,
    seed: int = 0,
    threshold: float = 6.0,
) -> ExperimentSeries:
    """Scale ladder: topology build, tree formation and one join at 1k-10k.

    Beyond the paper (§VI stops at 1500 nodes): each sweep point deploys a
    *fresh* uniform network at the paper's density — the spatial grid index
    makes the adjacency build O(n) — forms the routing tree in the requested
    mode, and runs one fixed-threshold 33%-ratio SENS-Join snapshot.  The
    query threshold is pinned (no calibration bisection: at 10k nodes each
    probe join is itself seconds of work) so rows across scales share one
    selectivity semantics rather than one result fraction.

    Reported per point: wall-clock build/tree-formation time, topology shape
    (mean degree, tree height, cluster-head count), and the join's
    transmissions, total energy, hottest-node energy (via the array-backed
    :meth:`~repro.sim.network.Network.residual_energy_columns` view) and
    response time.  The cluster rows quantify the grid-head tradeoff: fewer
    interior forwarders, but head fan-in raises response time.
    """
    import time

    from ..data.relations import SensorWorld
    from ..joins.runner import run_snapshot
    from ..routing.cluster import build_cluster_tree
    from ..routing.ctp import build_tree
    from ..sim.network import DeploymentConfig, deploy_uniform

    if node_count is None:
        node_count = default_node_count()
    if node_counts is None:
        node_counts = scale_node_counts(node_count)
    query = ratio_query_builder(*RATIO_SETTINGS["33"])(threshold)
    series = ExperimentSeries(
        experiment="scale",
        title="Scale ladder: build, tree formation and join cost vs network size",
        columns=[
            "nodes", "routing", "build_s", "tree_s", "avg_degree", "height",
            "heads", "join_tx", "join_energy", "hot_node_energy",
            "response_time_s", "matches",
        ],
    )
    for count in node_counts:
        for routing in routings:
            base = DeploymentConfig().scaled(count)
            config = DeploymentConfig(
                node_count=base.node_count,
                area_side_m=base.area_side_m,
                radio_range_m=base.radio_range_m,
                seed=seed,
                routing=routing,
            )
            started = time.perf_counter()
            network = deploy_uniform(config)
            build_s = time.perf_counter() - started
            started = time.perf_counter()
            if routing == "cluster":
                layout = build_cluster_tree(network, seed=seed)
                tree, heads = layout.tree, layout.head_count
            else:
                tree, heads = build_tree(network, seed=seed), 0
            tree_s = time.perf_counter() - started
            sensors = network.sensor_node_ids
            avg_degree = sum(
                len(network.neighbours(node_id)) for node_id in sensors
            ) / len(sensors)
            world = SensorWorld.homogeneous(
                network, seed=seed, area_side_m=config.area_side_m
            )
            outcome = run_snapshot(network, world, query, "sens-join", tree=tree)
            _ids, spent = network.residual_energy_columns()
            series.add_row(
                count,
                routing,
                round(build_s, 3),
                round(tree_s, 3),
                round(avg_degree, 2),
                tree.height,
                heads,
                outcome.total_transmissions,
                round(network.total_energy(), 1),
                round(float(spent.max()), 2),
                round(outcome.response_time_s, 2),
                outcome.result.match_count,
            )
    series.notes.append(
        "fresh deployment per row; build_s/tree_s are wall-clock and vary "
        "run to run — every other column is deterministic per seed; "
        "fixed query threshold (no per-scale calibration), so compare "
        "costs across rows, not result fractions"
    )
    return series


def scale_shard(
    node_count: int,
    seed: int = 0,
    routing: str = "flat",
    shard_index: int = 0,
    shard_count: int = 4,
    deployment: str = "grid",
) -> ExperimentSeries:
    """One shard of a sharded giant deployment (see ``bench shard``).

    Every shard worker rebuilds the *same* deployment and routing tree from
    ``(node_count, seed, routing, deployment)``, computes the *same*
    deterministic partition of the base station's depth-1 subtrees — largest
    subtree first, greedily assigned to the lightest shard bin, ties broken
    by root id and bin index — and then accounts the collection phase for
    its own shard only: every shard node forwards its subtree's tuples one
    hop towards the base station through
    :meth:`~repro.sim.radio.Channel.unicast`.

    Because the partition is a pure function of the cell parameters, the
    merge is deterministic regardless of worker count or completion order,
    and the assembler can gate completeness with a node-count and an id
    checksum (sensor ids are ``1..node_count``, so the shard id-sums must
    total ``n(n+1)/2``).  Grid deployment is the default: at 50k-100k nodes
    a uniform draw at the paper's density is disconnected with high
    probability (mean degree ~10.5 < ln n), while the grid stays connected
    at any size.
    """
    import time

    from ..routing.cluster import build_routing_tree
    from ..sim.network import DeploymentConfig, deploy_grid, deploy_uniform
    from ..sim.node import BASE_STATION_ID

    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1: {shard_count}")
    if not 0 <= shard_index < shard_count:
        raise ValueError(
            f"shard_index {shard_index} outside [0, {shard_count})"
        )
    deployers = {"grid": deploy_grid, "uniform": deploy_uniform}
    if deployment not in deployers:
        raise ValueError(
            f"deployment must be one of {sorted(deployers)}: {deployment!r}"
        )

    base = DeploymentConfig().scaled(node_count)
    config = DeploymentConfig(
        node_count=base.node_count,
        area_side_m=base.area_side_m,
        radio_range_m=base.radio_range_m,
        seed=seed,
        routing=routing,
    )
    started = time.perf_counter()
    network = deployers[deployment](config)
    build_s = time.perf_counter() - started
    started = time.perf_counter()
    tree = build_routing_tree(network, routing=routing, seed=seed)
    tree_s = time.perf_counter() - started

    # Deterministic partition: identical in every worker by construction.
    subtrees = [
        (root, list(tree.subtree(root)))
        for root in sorted(tree.children(BASE_STATION_ID))
    ]
    order = sorted(subtrees, key=lambda item: (-len(item[1]), item[0]))
    loads = [0] * shard_count
    mine: List[List[int]] = []
    for root, members in order:
        target = min(range(shard_count), key=lambda i: (loads[i], i))
        loads[target] += len(members)
        if target == shard_index:
            mine.append(members)

    # Collection-phase accounting for this shard's nodes only: a converge
    # cast where each node relays its proper descendants' tuples plus its
    # own one hop upward (the paper's default three attributes per tuple).
    tuple_bytes = 3 * constants.BYTES_PER_ATTRIBUTE
    descendants = tree.descendant_counts()
    network.reset_accounting()
    tx_packets = 0
    max_depth = 0
    for members in mine:
        for node_id in members:
            tuples = 1 + descendants[node_id]
            tx_packets += network.channel.unicast(
                node_id, tree.parent(node_id), tuples * tuple_bytes,
                "shard-collection",
            )
            depth = tree.depth(node_id)
            if depth > max_depth:
                max_depth = depth

    shard_nodes = sum(len(members) for members in mine)
    id_sum = sum(sum(members) for members in mine)
    series = ExperimentSeries(
        experiment="shard",
        title=f"sharded deployment: {node_count} nodes over {shard_count} shard(s)",
        columns=[
            "shard", "shards", "nodes", "subtrees", "max_depth", "tx_packets",
            "energy", "id_sum", "total_nodes", "build_s", "tree_s",
        ],
    )
    series.add_row(
        shard_index,
        shard_count,
        shard_nodes,
        len(mine),
        max_depth,
        tx_packets,
        round(network.total_energy(), 1),
        id_sum,
        node_count,
        round(build_s, 3),
        round(tree_s, 3),
    )
    return series
