"""Perf suite: micro kernels, DES throughput, end-to-end joins, snapshots.

``python -m repro.bench perf`` establishes the repo's performance
trajectory.  One run times three layers:

* **codec micros** — the §V pipeline kernels (quantize, Z-curve
  interleave/deinterleave, BitWriter assembly, quadtree
  encode/size/decode), each against its pinned ``_reference_*`` twin so
  the report shows the optimized/reference speedup directly;
* **kernel micros** — schedule/drain throughput of the DES event loop at
  several queue depths, plus a same-timestamp burst (the case the
  bucketed queue exists for);
* **scale micros** — the spatial grid index behind the 10k-100k node
  deployments (bulk build, 3x3-cell range queries, churn moves) and the
  full adjacency build against its pinned dense-``numpy`` reference;
* **end-to-end** — ``sens-join`` and ``des-sensjoin`` snapshot queries at
  three network sizes via the standard scenario builder.

Every run appends a versioned snapshot ``BENCH_<n>.json`` (schema
:data:`SCHEMA`) under the results directory and prints deltas against the
previous snapshot (or ``--baseline``).  Raw ns/op is machine-bound, so
each entry also carries a **score**: ns/op divided by the ns/op of a
fixed pure-Python spin loop timed in the same process.  The regression
gate (``--check``) compares scores, not wall times, and only for the
*tracked* micro kernels (codec, kernel and scale groups) — end-to-end
timings and set-operation micros are informational.

``--quick`` keeps every workload shape identical and only lowers the
repeat counts, so a quick CI run gates validly against a committed
full-run baseline.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import re
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from random import Random
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .cache import _interpreter_fingerprint

__all__ = [
    "SCHEMA",
    "TRACKED_GROUPS",
    "DEFAULT_THRESHOLD",
    "add_perf_arguments",
    "build_suite",
    "cmd_perf",
    "compare_snapshots",
    "default_results_dir",
    "latest_snapshot",
    "next_snapshot_path",
    "snapshot_history",
]

#: Snapshot payload schema; bump when the layout changes.
SCHEMA = "repro.bench-perf/1"

#: Groups whose entries the regression gate compares (see module docstring).
TRACKED_GROUPS = ("codec", "kernel", "scale")

#: Default regression gate: fail on >25% score increase of a tracked kernel.
DEFAULT_THRESHOLD = 0.25

_SNAPSHOT_RE = re.compile(r"^BENCH_(\d+)\.json$")

#: Mirrors ``repro.bench.__main__.DEFAULT_RESULTS_DIR`` (not imported: the
#: CLI module re-executes when imported under its real name from ``-m`` runs).
DEFAULT_RESULTS_DIR = Path("benchmarks") / "results"

#: End-to-end matrix: every engine at every node count.
E2E_ENGINES = ("sens-join", "des-sensjoin")
E2E_NODE_COUNTS = (50, 200, 600)


# -- measurement --------------------------------------------------------------


@dataclass
class Bench:
    """One timeable unit: a closure plus the op count it performs."""

    group: str
    name: str
    ops: int
    run: Callable[[], Any]
    #: The pinned pre-optimization twin, if the kernel has one.
    reference: Optional[Callable[[], Any]] = None
    #: Entries outside the regression gate (setops, e2e) set this False.
    tracked: bool = True

    @property
    def key(self) -> str:
        return f"{self.group}.{self.name}"


def _best_ns_per_op(run: Callable[[], Any], ops: int, repeats: int) -> float:
    """Best-of-``repeats`` wall time per operation, in nanoseconds."""
    best = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter_ns()
        run()
        elapsed = time.perf_counter_ns() - started
        if best is None or elapsed < best:
            best = elapsed
    return best / ops


def calibration_ns_per_op(repeats: int = 5) -> float:
    """ns/op of a fixed pure-Python spin loop — the score denominator.

    Dividing every measurement by this normalizes away most of the
    machine/interpreter speed difference, which is what lets a CI runner
    gate against a baseline recorded elsewhere.
    """
    n = 200_000

    def spin() -> int:
        acc = 0
        for i in range(n):
            acc += i
        return acc

    return _best_ns_per_op(spin, n, repeats)


# -- micro workloads ----------------------------------------------------------


def _codec_benches() -> List[Bench]:
    from ..codec import zcurve
    from ..codec.bits import BitWriter, _ReferenceBitWriter
    from ..codec.quadtree import QuadtreeCodec
    from ..codec.quantize import QuantizedDimension, Quantizer
    from ..codec.setops import intersect_encoded, union_encoded

    benches: List[Bench] = []
    rng = Random(20090329)  # ICDE 2009, for what it's worth

    # quantize: raw tuples -> Z-numbers through a two-dimension quantizer.
    dims = [
        QuantizedDimension("humidity", 0.0, 0.1, 1024, 10),
        QuantizedDimension("temperature", -30.0, 0.1, 1024, 10),
    ]
    quantizer = Quantizer(dims)
    tuples = [
        {"humidity": rng.uniform(0.0, 102.3), "temperature": rng.uniform(-30.0, 72.3)}
        for _ in range(4096)
    ]

    def run_quantize() -> None:
        encode = quantizer.encode
        for values in tuples:
            encode(values)

    benches.append(Bench("codec", "quantize_encode", len(tuples), run_quantize))

    # zcurve: the table-driven interleaver vs the per-bit reference.
    bpd = [10, 10]
    coords = [(rng.randrange(1 << 10), rng.randrange(1 << 10)) for _ in range(4096)]
    zs = [zcurve.interleave(c, bpd) for c in coords]

    def run_interleave() -> None:
        interleave = zcurve.interleave
        for c in coords:
            interleave(c, bpd)

    def run_interleave_ref() -> None:
        interleave = zcurve._reference_interleave
        for c in coords:
            interleave(c, bpd)

    benches.append(
        Bench("codec", "zcurve_interleave", len(coords), run_interleave, run_interleave_ref)
    )

    def run_deinterleave() -> None:
        deinterleave = zcurve.deinterleave
        for z in zs:
            deinterleave(z, bpd)

    def run_deinterleave_ref() -> None:
        deinterleave = zcurve._reference_deinterleave
        for z in zs:
            deinterleave(z, bpd)

    benches.append(
        Bench("codec", "zcurve_deinterleave", len(zs), run_deinterleave, run_deinterleave_ref)
    )

    # bits: chunked writer vs the immediate-fold reference writer.  The
    # stream must be long enough for the O(N log N) vs O(N^2) asymptotics
    # to separate (a filter-phase quadtree stream is tens of kilobits).
    fields = [(rng.randrange(1 << 7), 7) for _ in range(32768)]

    def run_writer() -> None:
        writer = BitWriter()
        write = writer.write_uint
        for value, width in fields:
            write(value, width)
        writer.getvalue()

    def run_writer_ref() -> None:
        writer = _ReferenceBitWriter()
        write = writer.write_uint
        for value, width in fields:
            write(value, width)
        writer.getvalue()

    benches.append(Bench("codec", "bits_writer", len(fields), run_writer, run_writer_ref))

    # quadtree encode/size on the standard 20-bit shape ...
    codec = QuadtreeCodec(2, zcurve.level_widths(bpd))
    points = sorted(
        {(rng.randrange(1, 4), rng.randrange(1 << 20)) for _ in range(512)}
    )

    benches.append(
        Bench(
            "codec",
            "quadtree_encode",
            1,
            lambda: codec.encode(points),
            lambda: codec._reference_encode(points),
        )
    )
    benches.append(
        Bench(
            "codec",
            "quadtree_size",
            1,
            lambda: codec.encoded_size_bits(points),
            lambda: codec._reference_encoded_size_bits(points),
        )
    )

    # ... and decode on a deep/wide shape where the linear-time parse shows.
    big_codec = QuadtreeCodec(2, zcurve.level_widths([13, 13]))
    big_points = sorted(
        {(rng.randrange(1, 4), rng.randrange(1 << 26)) for _ in range(8192)}
    )
    big_encoded = big_codec.encode(big_points)

    benches.append(
        Bench(
            "codec",
            "quadtree_decode",
            1,
            lambda: big_codec.decode(big_encoded),
            lambda: big_codec._reference_decode(big_encoded),
        )
    )

    # setops: informational — built on encode/decode, not separately tuned.
    half_a = codec.encode(points[: len(points) // 2 + 64])
    half_b = codec.encode(points[len(points) // 2 - 64 :])
    benches.append(
        Bench(
            "setops",
            "union_encoded",
            1,
            lambda: union_encoded(codec, half_a, half_b),
            tracked=False,
        )
    )
    benches.append(
        Bench(
            "setops",
            "intersect_encoded",
            1,
            lambda: intersect_encoded(codec, half_a, half_b),
            tracked=False,
        )
    )
    return benches


def _kernel_benches() -> List[Bench]:
    from ..sim.kernel import Environment

    benches: List[Bench] = []
    rng = Random(97)
    for depth in (64, 512, 4096):
        delays = [rng.random() * 100.0 for _ in range(depth)]

        def run(delays: List[float] = delays) -> None:
            env = Environment()
            timeout = env.timeout
            for delay in delays:
                timeout(delay)
            env.run()

        benches.append(Bench("kernel", f"events_depth{depth}", depth, run))

    # The bucketed queue's home turf: bursts of same-timestamp events
    # (every receiver of a broadcast wave shares one fire time).
    burst_delays = [float(i % 16) for i in range(4096)]

    def run_burst() -> None:
        env = Environment()
        timeout = env.timeout
        for delay in burst_delays:
            timeout(delay)
        env.run()

    benches.append(Bench("kernel", "events_burst16", len(burst_delays), run_burst))
    return benches


def _scale_benches() -> List[Bench]:
    from ..sim.network import DeploymentConfig, deploy_uniform
    from ..sim.spatial import SpatialGridIndex

    benches: List[Bench] = []
    rng = Random(64)
    config = DeploymentConfig().scaled(2000)
    side = config.area_side_m
    cell = config.radio_range_m
    limit2 = cell * cell
    points = [(rng.uniform(0.0, side), rng.uniform(0.0, side)) for _ in range(5000)]

    # Bulk build: the path every deployment constructor takes.
    def run_build() -> None:
        index = SpatialGridIndex(cell)
        insert = index.insert
        for node_id, (x, y) in enumerate(points):
            insert(node_id, x, y)

    benches.append(Bench("scale", "grid_build_n5000", len(points), run_build))

    # Range queries over a built index: the adjacency-build inner loop.
    built = SpatialGridIndex(cell)
    for node_id, (x, y) in enumerate(points):
        built.insert(node_id, x, y)
    queries = points[:2048]

    def run_query() -> None:
        neighbours = built.neighbours_within
        for x, y in queries:
            neighbours(x, y, limit2)

    benches.append(Bench("scale", "grid_query_n5000", len(queries), run_query))

    # Churn moves on a persistent index: fail/revive/move_node's O(1) path.
    # Repeats re-apply the same ops from wherever the last run left each
    # node; a move costs the same regardless of origin cell.
    churning = SpatialGridIndex(cell)
    for node_id, (x, y) in enumerate(points):
        churning.insert(node_id, x, y)
    churn_ops = [
        (rng.randrange(len(points)), rng.uniform(0.0, side), rng.uniform(0.0, side))
        for _ in range(8192)
    ]

    def run_churn() -> None:
        move = churning.move
        for node_id, x, y in churn_ops:
            move(node_id, x, y)

    benches.append(Bench("scale", "grid_churn_n5000", len(churn_ops), run_churn))

    # Whole-network adjacency build vs the pinned dense-numpy reference.
    network = deploy_uniform(config)
    benches.append(
        Bench(
            "scale",
            "adjacency_build_n2000",
            1,
            network._rebuild_adjacency,
            network._reference_adjacency,
        )
    )
    return benches


def _e2e_benches() -> List[Bench]:
    from ..joins.runner import run_snapshot
    from .workloads import build_scenario, ratio_query_builder

    benches: List[Bench] = []
    # A fixed Q1-style threshold (as `repro.obs record` uses) keeps the
    # suite self-contained: no calibration bisection in the timed path.
    query = ratio_query_builder(1, 3)(6.0)
    for node_count in E2E_NODE_COUNTS:
        for engine in E2E_ENGINES:

            def run(engine: str = engine, node_count: int = node_count) -> None:
                scenario = build_scenario(node_count=node_count, seed=0)
                run_snapshot(
                    scenario.network,
                    scenario.world,
                    query,
                    engine,
                    tree=scenario.tree,
                    tree_seed=scenario.seed,
                )

            benches.append(
                Bench("e2e", f"{engine}_n{node_count}", 1, run, tracked=False)
            )
    return benches


def build_suite(only: Optional[Sequence[str]] = None) -> List[Bench]:
    """The full bench list, optionally filtered by ``group.name`` globs.

    A pattern that matches nothing raises :class:`ValueError` naming the
    available keys (mirroring the experiment harness's selection errors).
    """
    suite = _codec_benches() + _kernel_benches() + _scale_benches() + _e2e_benches()
    if not only:
        return suite
    keys = [bench.key for bench in suite]
    for pattern in only:
        if not fnmatch.filter(keys, pattern):
            raise ValueError(
                f"no perf bench matches {pattern!r}; choices: {', '.join(keys)}"
            )
    return [
        bench
        for bench in suite
        if any(fnmatch.fnmatch(bench.key, pattern) for pattern in only)
    ]


# -- snapshots ----------------------------------------------------------------


def snapshot_entries(path: Path) -> Dict[str, Dict[str, Any]]:
    """``group.name -> entry`` of one snapshot file.

    Raises :class:`ValueError` (the CLI's exit-2 path) if the file is
    unreadable, corrupt, or from a different schema.
    """
    try:
        payload = json.loads(path.read_text())
    except OSError as error:
        raise ValueError(f"cannot read baseline {path}: {error}") from None
    except json.JSONDecodeError as error:
        raise ValueError(f"baseline {path} is not valid JSON ({error})") from None
    if not isinstance(payload, dict) or payload.get("schema") != SCHEMA:
        raise ValueError(
            f"baseline {path} does not carry schema {SCHEMA!r} "
            f"(got {payload.get('schema') if isinstance(payload, dict) else payload!r})"
        )
    entries = payload.get("entries")
    if not isinstance(entries, list):
        raise ValueError(f"baseline {path} has no entry list")
    out: Dict[str, Dict[str, Any]] = {}
    for entry in entries:
        if isinstance(entry, dict) and "group" in entry and "name" in entry:
            out[f"{entry['group']}.{entry['name']}"] = entry
    return out


def _numbered_snapshots(results_dir: Path) -> List[Tuple[int, Path]]:
    if not results_dir.exists():
        return []
    found = []
    for path in results_dir.iterdir():
        match = _SNAPSHOT_RE.match(path.name)
        if match:
            found.append((int(match.group(1)), path))
    return sorted(found)


def default_results_dir() -> Path:
    """Where committed ``BENCH_<n>.json`` snapshots live.

    ``DEFAULT_RESULTS_DIR`` is cwd-relative, which silently resolves to an
    *empty* directory when a CLI runs from anywhere but the repo root — a
    perf trajectory that "has no history" while ``benchmarks/results/`` is
    right there in the tree.  Prefer the cwd-relative directory when it
    actually holds snapshots (or the repo-anchored one does not exist),
    otherwise fall back to the directory next to this source tree.
    """
    local = DEFAULT_RESULTS_DIR
    if _numbered_snapshots(local):
        return local
    anchored = Path(__file__).resolve().parents[3] / DEFAULT_RESULTS_DIR
    if _numbered_snapshots(anchored):
        return anchored
    return local


def snapshot_history(results_dir: Optional[Path] = None) -> List[Path]:
    """Every ``BENCH_<n>.json`` in ascending snapshot order."""
    base = Path(results_dir) if results_dir is not None else default_results_dir()
    return [path for _, path in _numbered_snapshots(base)]


def latest_snapshot(results_dir: Path) -> Optional[Path]:
    """The highest-numbered ``BENCH_<n>.json``, or None."""
    numbered = _numbered_snapshots(Path(results_dir))
    return numbered[-1][1] if numbered else None


def next_snapshot_path(results_dir: Path) -> Path:
    """The next free ``BENCH_<n>.json`` path (1-based, gapless or not)."""
    numbered = _numbered_snapshots(Path(results_dir))
    n = numbered[-1][0] + 1 if numbered else 1
    return Path(results_dir) / f"BENCH_{n}.json"


@dataclass
class Regression:
    """One tracked kernel whose normalized score got worse than allowed."""

    key: str
    baseline_score: float
    score: float

    @property
    def ratio(self) -> float:
        return self.score / self.baseline_score


def compare_snapshots(
    baseline: Dict[str, Dict[str, Any]],
    current: Dict[str, Dict[str, Any]],
    threshold: float = DEFAULT_THRESHOLD,
) -> List[Regression]:
    """Tracked entries whose score regressed by more than ``threshold``.

    Only keys present in both snapshots participate; a kernel added or
    removed between snapshots is reported in the delta table, not gated.
    """
    regressions: List[Regression] = []
    for key, entry in sorted(current.items()):
        if not entry.get("tracked"):
            continue
        base = baseline.get(key)
        if base is None or not base.get("tracked"):
            continue
        old = base.get("score")
        new = entry.get("score")
        if not isinstance(old, (int, float)) or not isinstance(new, (int, float)):
            continue
        if old > 0 and new > old * (1.0 + threshold):
            regressions.append(Regression(key, float(old), float(new)))
    return regressions


# -- CLI ----------------------------------------------------------------------


def _format_ns(ns: float) -> str:
    if ns >= 1e9:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f}us"
    return f"{ns:.0f}ns"


def add_perf_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``perf`` subcommand's arguments (shared with tests)."""
    parser.add_argument(
        "--quick",
        action="store_true",
        help="same workload shapes, fewer end-to-end repeats (CI smoke mode)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="micro-bench repeats (default: 7; best-of-N damps scheduler noise)",
    )
    parser.add_argument(
        "--only",
        action="append",
        default=None,
        metavar="GLOB",
        help="run only benches whose group.name matches (repeatable)",
    )
    parser.add_argument(
        "--results-dir",
        default=None,
        help="where BENCH_<n>.json snapshots live (default: benchmarks/results)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="snapshot to diff/gate against (default: latest BENCH_<n>.json)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if any tracked kernel's score regressed past --threshold",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed fractional score regression (default: 0.25)",
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="measure and report without writing a new snapshot",
    )


def cmd_perf(args: argparse.Namespace) -> int:
    """Handler behind ``python -m repro.bench perf``."""
    if args.repeats is not None and args.repeats < 1:
        raise ValueError(f"--repeats must be >= 1: {args.repeats}")
    if not (0.0 < args.threshold):
        raise ValueError(f"--threshold must be positive: {args.threshold}")
    results_dir = Path(args.results_dir) if args.results_dir else default_results_dir()
    # Micros are cheap, so quick mode keeps the full best-of-7 (anything
    # lower is too noisy for a 25% gate on shared CI runners); it only
    # drops the expensive end-to-end repeats.
    micro_repeats = args.repeats if args.repeats is not None else 7
    e2e_repeats = 1 if args.quick else 2

    suite = build_suite(args.only)

    # Resolve the baseline before writing, so a fresh snapshot never
    # compares against itself.
    if args.baseline:
        baseline_path: Optional[Path] = Path(args.baseline)
        if not baseline_path.exists():
            raise ValueError(f"baseline {baseline_path} does not exist")
    else:
        baseline_path = latest_snapshot(results_dir)
    baseline = snapshot_entries(baseline_path) if baseline_path else {}

    calibration = calibration_ns_per_op()
    mode = "quick" if args.quick else "full"
    print(
        f"# repro.bench perf ({mode}): {len(suite)} bench(es), "
        f"calibration {calibration:.1f} ns/op",
        flush=True,
    )

    entries: List[Dict[str, Any]] = []
    for i, bench in enumerate(suite, 1):
        repeats = e2e_repeats if bench.group == "e2e" else micro_repeats
        ns_per_op = _best_ns_per_op(bench.run, bench.ops, repeats)
        entry: Dict[str, Any] = {
            "group": bench.group,
            "name": bench.name,
            "ops": bench.ops,
            "repeats": repeats,
            "ns_per_op": round(ns_per_op, 3),
            "score": round(ns_per_op / calibration, 6),
            "tracked": bench.tracked,
        }
        line = f"[{i}/{len(suite)}] {bench.key}: {_format_ns(ns_per_op)}/op"
        if bench.reference is not None:
            reference_ns = _best_ns_per_op(bench.reference, bench.ops, repeats)
            entry["reference_ns_per_op"] = round(reference_ns, 3)
            entry["speedup"] = round(reference_ns / ns_per_op, 2)
            line += f" ({entry['speedup']}x vs reference)"
        base = baseline.get(bench.key)
        if base and isinstance(base.get("score"), (int, float)) and base["score"] > 0:
            delta = entry["score"] / base["score"] - 1.0
            entry["baseline_delta"] = round(delta, 4)
            line += f" [{delta:+.1%} vs baseline]"
        print(line, flush=True)
        entries.append(entry)

    snapshot: Dict[str, Any] = {
        "schema": SCHEMA,
        "created_unix": time.time(),
        "mode": mode,
        "interpreter": _interpreter_fingerprint(),
        "calibration_ns_per_op": round(calibration, 3),
        "baseline": str(baseline_path) if baseline_path else None,
        "entries": entries,
    }

    if not args.no_write:
        path = next_snapshot_path(results_dir)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        snapshot["path"] = str(path)
        print(f"snapshot: {path}")
    if baseline_path:
        print(f"baseline: {baseline_path}")

    if args.check:
        if not baseline:
            print("regression gate: no baseline snapshot — nothing to gate against")
            return 0
        current = {f"{e['group']}.{e['name']}": e for e in entries}
        regressions = compare_snapshots(baseline, current, args.threshold)
        if regressions:
            for reg in regressions:
                print(
                    f"REGRESSION {reg.key}: score {reg.baseline_score:.2f} -> "
                    f"{reg.score:.2f} ({reg.ratio - 1.0:+.1%}, "
                    f"limit +{args.threshold:.0%})",
                    file=sys.stderr,
                )
            return 1
        print(
            f"regression gate: {sum(1 for e in entries if e['tracked'])} tracked "
            f"kernel(s) within +{args.threshold:.0%} of baseline"
        )
    return 0
