"""ASCII visualisation of deployments, fields, and protocol load.

No plotting stack is assumed; these renderers turn a deployment into
terminal art good enough to *see* the paper's mechanisms at work:

:func:`render_field`
    The spatial structure of a sensor field (Fig. 4's point: nearby nodes
    read similar values) as a character heat map.
:func:`render_node_load`
    Per-node transmission load after an execution — under the external join
    the hot spine toward the base station lights up; under SENS-Join it
    fades.
:func:`render_tree_depths`
    The routing tree as per-cell hop counts.
:func:`render_histogram`
    A quick horizontal bar chart for cost breakdowns.
:func:`render_timeline`
    Node activity over simulated time from ``(time, node_id)`` pairs — the
    view behind ``python -m repro.obs timeline``.
:func:`render_sparkline`
    A one-line min/max-scaled trend strip — the view behind
    ``python -m repro.bench trend`` and the timeline's per-kind lanes.

All renderers rasterise node positions onto a character grid; cells holding
several nodes show the mean value.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..routing.tree import RoutingTree
from ..sim.network import Network

__all__ = [
    "render_field",
    "render_node_load",
    "render_tree_depths",
    "render_histogram",
    "render_timeline",
    "render_sparkline",
]

#: Light-to-dark ramp used for heat maps.
DEFAULT_RAMP = " .:-=+*#%@"


def _rasterise(
    network: Network,
    value_of: Callable[[int], Optional[float]],
    width: int,
    height: int,
) -> np.ndarray:
    """Mean node value per character cell; NaN where no node lies."""
    xs = np.array([node.x for node in network.nodes.values()])
    ys = np.array([node.y for node in network.nodes.values()])
    max_x = float(xs.max()) or 1.0
    max_y = float(ys.max()) or 1.0
    sums = np.zeros((height, width))
    counts = np.zeros((height, width))
    for node_id, node in network.nodes.items():
        value = value_of(node_id)
        if value is None:
            continue
        column = min(int(node.x / max_x * (width - 1)), width - 1)
        row = min(int(node.y / max_y * (height - 1)), height - 1)
        sums[row, column] += value
        counts[row, column] += 1
    with np.errstate(invalid="ignore"):
        grid = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    return grid


def _grid_to_text(grid: np.ndarray, ramp: str, legend: str) -> str:
    finite = grid[np.isfinite(grid)]
    if finite.size == 0:
        return "(no nodes to draw)"
    lo, hi = float(finite.min()), float(finite.max())
    span = (hi - lo) or 1.0
    lines = []
    # Row 0 is y=0; print top row (largest y) first, like a map.
    for row in reversed(range(grid.shape[0])):
        cells = []
        for column in range(grid.shape[1]):
            value = grid[row, column]
            if not np.isfinite(value):
                cells.append(" ")
            else:
                index = int((value - lo) / span * (len(ramp) - 1))
                cells.append(ramp[index])
        lines.append("".join(cells))
    lines.append(f"{legend}: '{ramp[0]}'={lo:.2f} ... '{ramp[-1]}'={hi:.2f}")
    return "\n".join(lines)


def render_field(
    network: Network,
    sensor: str,
    width: int = 60,
    height: int = 24,
    ramp: str = DEFAULT_RAMP,
) -> str:
    """Heat map of the current snapshot's readings for one sensor."""

    def value_of(node_id: int) -> Optional[float]:
        node = network.nodes[node_id]
        if node.is_base_station or sensor not in node.readings:
            return None
        return node.readings[sensor]

    grid = _rasterise(network, value_of, width, height)
    return _grid_to_text(grid, ramp, legend=sensor)


def render_node_load(
    network: Network,
    loads: Mapping[int, int],
    width: int = 60,
    height: int = 24,
    ramp: str = DEFAULT_RAMP,
) -> str:
    """Heat map of per-node transmission counts (0 renders as the ramp's
    lightest character, so quiet regions stay visible)."""

    def value_of(node_id: int) -> Optional[float]:
        if network.nodes[node_id].is_base_station:
            return None
        return float(loads.get(node_id, 0))

    grid = _rasterise(network, value_of, width, height)
    return _grid_to_text(grid, ramp, legend="tx packets")


def render_tree_depths(
    network: Network,
    tree: RoutingTree,
    width: int = 60,
    height: int = 24,
) -> str:
    """Hop-count map: digits 0-9, then letters for deeper levels."""
    symbols = "0123456789abcdefghijklmnopqrstuvwxyz"

    def value_of(node_id: int) -> Optional[float]:
        if node_id not in tree:
            return None
        return float(tree.depth(node_id))

    grid = _rasterise(network, value_of, width, height)
    finite = grid[np.isfinite(grid)]
    if finite.size == 0:
        return "(no nodes to draw)"
    lines = []
    for row in reversed(range(grid.shape[0])):
        cells = []
        for column in range(grid.shape[1]):
            value = grid[row, column]
            if not np.isfinite(value):
                cells.append(" ")
            else:
                cells.append(symbols[min(int(round(value)), len(symbols) - 1)])
        lines.append("".join(cells))
    lines.append(f"hop count 0..{int(finite.max())} (base station = 0)")
    return "\n".join(lines)


def render_timeline(
    events: Sequence[Tuple[float, int]],
    width: int = 72,
    height: int = 20,
    ramp: str = DEFAULT_RAMP,
) -> str:
    """Node-activity heat map over time from ``(time, node_id)`` pairs.

    Time is bucketed into ``width`` columns (earliest to latest event) and
    node ids into at most ``height`` row bands (lowest id at the top); each
    cell's character encodes how many events fall into that (band, bucket),
    darkest = busiest.  Events with negative node ids (no specific node) are
    dropped.
    """
    points = [(t, n) for t, n in events if n >= 0]
    if not points:
        return "(no events to draw)"
    times = np.array([t for t, _ in points])
    t_lo, t_hi = float(times.min()), float(times.max())
    t_span = (t_hi - t_lo) or 1.0
    node_ids = sorted({n for _, n in points})
    bands = min(height, len(node_ids))
    band_of = {n: min(i * bands // len(node_ids), bands - 1)
               for i, n in enumerate(node_ids)}
    counts = np.zeros((bands, width))
    for t, n in points:
        column = min(int((t - t_lo) / t_span * (width - 1)), width - 1)
        counts[band_of[n], column] += 1
    peak = float(counts.max()) or 1.0
    # Band labels: the id range each row covers.
    band_members: dict[int, list[int]] = {}
    for n in node_ids:
        band_members.setdefault(band_of[n], []).append(n)
    labels = []
    for band in range(bands):
        members = band_members.get(band, [])
        if not members:
            labels.append("")
        elif len(members) == 1:
            labels.append(f"{members[0]}")
        else:
            labels.append(f"{members[0]}-{members[-1]}")
    label_width = max(len(label) for label in labels)
    lines = []
    for band in range(bands):
        cells = []
        for column in range(width):
            count = counts[band, column]
            if count == 0:
                cells.append(" ")
            else:
                index = int(count / peak * (len(ramp) - 1))
                cells.append(ramp[max(index, 1)])
        lines.append(f"{labels[band].rjust(label_width)} |{''.join(cells)}|")
    lines.append(
        f"{'node'.rjust(label_width)}  t={t_lo:.3f}s ... {t_hi:.3f}s, "
        f"peak {int(peak)} events/cell"
    )
    return "\n".join(lines)


def render_sparkline(
    values: Sequence[float],
    ramp: str = DEFAULT_RAMP,
) -> str:
    """One-line trend strip: each value becomes a ramp character.

    The scale is per-call min..max (a flat sequence renders as the lowest
    rung), which is exactly what a trajectory view wants — the *shape* of
    the series, not its absolute magnitude.  Non-finite values render as a
    space so a gap in the history stays visible.
    """
    if not len(values):
        return "(nothing to plot)"
    finite = [v for v in values if np.isfinite(v)]
    if not finite:
        return " " * len(values)
    lo, hi = min(finite), max(finite)
    span = hi - lo
    chars = []
    for value in values:
        if not np.isfinite(value):
            chars.append(" ")
        elif span == 0.0:
            chars.append(ramp[0])
        else:
            rung = int((value - lo) / span * (len(ramp) - 1))
            chars.append(ramp[rung])
    return "".join(chars)


def render_histogram(
    entries: Sequence[Tuple[str, float]],
    width: int = 50,
    bar: str = "#",
) -> str:
    """Horizontal bar chart: one row per (label, value)."""
    if not entries:
        return "(nothing to plot)"
    label_width = max(len(label) for label, _ in entries)
    peak = max((value for _, value in entries), default=0.0) or 1.0
    lines = []
    for label, value in entries:
        bar_length = int(round(value / peak * width))
        lines.append(
            f"{label.rjust(label_width)} | {bar * bar_length} {value:g}"
        )
    return "\n".join(lines)
