"""Experiment harness: workloads, calibration, experiments, parallel runs.

The package splits into five layers (see ``docs/benchmarking.md``):

* :mod:`~repro.bench.workloads` — deployed, data-bound scenarios and the
  paper's calibrated query templates;
* :mod:`~repro.bench.calibrate` — the selectivity-knob bisection;
* :mod:`~repro.bench.experiments` — one function per §VI figure/table,
  each returning an :class:`~repro.bench.reporting.ExperimentSeries`;
* :mod:`~repro.bench.harness` + :mod:`~repro.bench.cache` — decomposition
  into parallel cells, the content-addressed result cache, and
  deterministic reassembly;
* :mod:`~repro.bench.reporting` / :mod:`~repro.bench.ascii_viz` — tables,
  CSVs and terminal visualisation.

Command line: ``python -m repro.bench run --all --jobs 4``.
"""

from .ascii_viz import render_field, render_histogram, render_node_load, render_tree_depths
from .cache import ResultCache, cache_key, code_fingerprint
from .calibrate import calibrate_threshold, measure_result_fraction, snapshot_rows
from .experiments import (
    RATIO_SETTINGS,
    ablation_study,
    bs_position_study,
    compression_table,
    continuous_study,
    loss_study,
    memory_study,
    generality_study,
    related_work_study,
    resolution_study,
    fig10_overall,
    fig11_per_node,
    fig12_ratio3,
    fig13_ratio1,
    fig14_network_size,
    fig15_step_breakdown,
    fig16_quadtree_influence,
    packet_size_study,
    placement_study,
    response_time_study,
    variance_study,
)
from .harness import (
    Cell,
    CellResult,
    ExperimentSpec,
    RunResult,
    experiment_specs,
    run_experiments,
)
from .reporting import ExperimentSeries, render_table, save_csv
from .workloads import (
    Scenario,
    build_scenario,
    calibrated_query,
    default_node_count,
    ratio_query_builder,
)

__all__ = [
    "Cell",
    "CellResult",
    "ExperimentSeries",
    "ExperimentSpec",
    "RATIO_SETTINGS",
    "ResultCache",
    "RunResult",
    "Scenario",
    "ablation_study",
    "bs_position_study",
    "build_scenario",
    "cache_key",
    "calibrate_threshold",
    "calibrated_query",
    "code_fingerprint",
    "compression_table",
    "continuous_study",
    "default_node_count",
    "experiment_specs",
    "fig10_overall",
    "fig11_per_node",
    "fig12_ratio3",
    "fig13_ratio1",
    "fig14_network_size",
    "fig15_step_breakdown",
    "fig16_quadtree_influence",
    "loss_study",
    "measure_result_fraction",
    "memory_study",
    "generality_study",
    "related_work_study",
    "resolution_study",
    "packet_size_study",
    "placement_study",
    "ratio_query_builder",
    "render_field",
    "render_histogram",
    "render_node_load",
    "render_tree_depths",
    "render_table",
    "response_time_study",
    "run_experiments",
    "save_csv",
    "snapshot_rows",
    "variance_study",
]
