"""Plain-text reporting of experiment series.

Every experiment function in :mod:`repro.bench.experiments` returns an
:class:`ExperimentSeries`; :func:`render_table` turns it into the fixed-width
table the benchmark suite prints, and :func:`save_csv` persists it for
postprocessing.  :meth:`ExperimentSeries.to_dict` /
:meth:`ExperimentSeries.from_dict` give the lossless JSON form used by the
result cache and the run manifest of :mod:`repro.bench.harness`.  Nothing
here depends on plotting libraries — the paper's figures are line/bar charts
over exactly these rows.

Values are restricted to finite numbers and strings: :meth:`add_row` raises
on NaN/infinity instead of letting them silently corrupt CSVs (and the JSON
cache, which cannot represent them).  An experiment that genuinely wants to
report an unbounded ratio passes the string ``"inf"``.
"""

from __future__ import annotations

import csv
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Union

__all__ = ["ExperimentSeries", "render_table", "save_csv"]

Value = Union[int, float, str]


@dataclass
class ExperimentSeries:
    """One experiment's output: named columns, one row per sweep point."""

    experiment: str
    title: str
    columns: List[str]
    rows: List[List[Value]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: Value) -> None:
        """Append one sweep point (must match the column count).

        Raises :class:`ValueError` on an arity mismatch and on non-finite
        floats — NaN/inf would round-trip through CSV as unparseable
        strings and are not representable in the JSON result cache.
        """
        if len(values) != len(self.columns):
            raise ValueError(
                f"{self.experiment}: row has {len(values)} values for "
                f"{len(self.columns)} columns"
            )
        for column, value in zip(self.columns, values):
            if isinstance(value, float) and not math.isfinite(value):
                raise ValueError(
                    f"{self.experiment}: non-finite value {value!r} for "
                    f"column {column!r} (pass the string 'inf' to report "
                    "an unbounded ratio)"
                )
        self.rows.append(list(values))

    def column(self, name: str) -> List[Value]:
        """All values of one column."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def as_dicts(self) -> List[Dict[str, Value]]:
        """Rows as dictionaries."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def to_dict(self) -> Dict[str, Any]:
        """Lossless JSON-serialisable form (see :meth:`from_dict`)."""
        return {
            "experiment": self.experiment,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExperimentSeries":
        """Rebuild a series from :meth:`to_dict` output.

        Exact for every value :meth:`add_row` accepts: JSON preserves int
        vs float, and ``repr``-based float serialisation round-trips.
        """
        return cls(
            experiment=payload["experiment"],
            title=payload["title"],
            columns=list(payload["columns"]),
            rows=[list(row) for row in payload["rows"]],
            notes=list(payload.get("notes", [])),
        )


def _format_value(value: Value) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.3f}"
    return str(value)


def render_table(series: ExperimentSeries) -> str:
    """Fixed-width table with title and notes, ready to print.

    Column widths are the maximum of the header and every formatted cell;
    floats print with three decimals unless integral (then as integers).
    """
    cells = [[_format_value(v) for v in row] for row in series.rows]
    widths = [len(column) for column in series.columns]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [f"== {series.experiment}: {series.title} =="]
    header = "  ".join(name.rjust(widths[i]) for i, name in enumerate(series.columns))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for row in cells:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    for note in series.notes:
        lines.append(f"   note: {note}")
    return "\n".join(lines)


def save_csv(series: ExperimentSeries, directory: Union[str, Path]) -> Path:
    """Write the series to ``<directory>/<experiment>.csv``; returns the path.

    The directory (including missing parents) is created on demand, so a
    fresh checkout without ``benchmarks/results/`` works.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{series.experiment}.csv"
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(series.columns)
        writer.writerows(series.rows)
    return path
