"""Bench CLI: ``python -m repro.bench <command>``.

Three subcommands (full guide: ``docs/benchmarking.md``):

``run``
    Execute experiments as parallel cells and write tables + CSVs +
    a machine-readable run manifest::

        python -m repro.bench run --all --jobs 4
        python -m repro.bench run 'fig1*' loss --jobs 2 --scale paper
        python -m repro.bench run fig10_33 --nodes 150 --no-cache

``list``
    Show every experiment with its cell count at the chosen scale.

``report``
    Re-render the tables of the last ``run`` from its saved series bundle
    without re-running anything.

``perf`` / ``trend``
    Time the codec/kernel/e2e hot paths against the latest committed
    ``BENCH_<n>.json`` snapshot, and render the whole snapshot history as
    per-kernel sparklines (``trend --check`` validates the history).

Results land under ``--results-dir`` (default ``benchmarks/results``):
``<experiment>.csv`` per experiment, ``series.json`` (the lossless bundle
``report`` reads), ``run_manifest.json`` (per-cell timings and cache hits),
and the result cache under ``.cache/``.  The rendered report goes to
``--out`` (default ``experiment_report_<scale>.txt``, matching the old
``scripts/run_all_experiments.py``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from ..errors import ReproError
from .cache import ResultCache
from .harness import experiment_specs, run_experiments, run_sharded_deployment
from .reporting import ExperimentSeries, render_table, save_csv

DEFAULT_RESULTS_DIR = Path("benchmarks") / "results"
SERIES_BUNDLE = "series.json"
MANIFEST_NAME = "run_manifest.json"
SHARD_MANIFEST_NAME = "shard_manifest.json"


def _resolve_node_count(args: argparse.Namespace) -> int:
    from .. import constants

    if args.nodes is not None:
        if args.nodes < 2:
            raise ValueError(f"--nodes must be >= 2: {args.nodes}")
        return args.nodes
    return constants.PAPER_NODE_COUNT if args.scale == "paper" else 600


def _add_scale_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        choices=["bench", "paper"],
        default="bench",
        help="bench = 600 nodes (CI default), paper = 1500 nodes",
    )
    parser.add_argument(
        "--nodes",
        type=int,
        default=None,
        help="override the node count (takes precedence over --scale)",
    )


def _cmd_run(args: argparse.Namespace) -> int:
    results_dir = Path(args.results_dir)
    cache_dir = results_dir / ".cache"
    if args.clear_cache:
        removed = ResultCache(cache_dir).clear()
        print(f"cache cleared ({removed} entries)")
        if not args.patterns and not args.all:
            return 0
    if not args.patterns and not args.all:
        print(
            "error: select experiments by name/glob or pass --all "
            "(see `python -m repro.bench list`)",
            file=sys.stderr,
        )
        return 2

    node_count = _resolve_node_count(args)
    started = time.perf_counter()
    run = run_experiments(
        args.patterns or None,
        node_count=node_count,
        jobs=args.jobs,
        cache_dir=None if args.no_cache else cache_dir,
        progress=lambda line: print(line, flush=True),
    )
    wall = time.perf_counter() - started

    out_path = Path(args.out or f"experiment_report_{args.scale}.txt")
    lines = [f"# Experiment report ({args.scale} scale, {node_count} nodes)\n"]
    for series in run.series:
        save_csv(series, results_dir)
        lines.append(render_table(series))
        lines.append("")
    out_path.write_text("\n".join(lines))

    run.manifest.update(
        {
            "scale": args.scale,
            "node_count": node_count,
            "wall_seconds": round(wall, 3),
            "report": str(out_path),
            "results_dir": str(results_dir),
        }
    )
    (results_dir / MANIFEST_NAME).write_text(
        json.dumps(run.manifest, indent=2, sort_keys=True) + "\n"
    )
    (results_dir / SERIES_BUNDLE).write_text(
        json.dumps([series.to_dict() for series in run.series], sort_keys=True)
        + "\n"
    )

    cached = run.manifest["cached_cells"]
    total = run.manifest["total_cells"]
    print(
        f"{len(run.series)} experiment(s), {total} cell(s) "
        f"({cached} cached) in {wall:.1f}s wall "
        f"({run.manifest['total_cell_seconds']:.1f}s of cell time); "
        f"report: {out_path}; manifest: {results_dir / MANIFEST_NAME}"
    )
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    node_count = _resolve_node_count(args)
    specs = experiment_specs(node_count)
    width = max(len(name) for name in specs)
    print(f"# experiments at {node_count} nodes (cells run in parallel)")
    for name, spec in specs.items():
        cells = f"{len(spec.cells)} cell{'s' if len(spec.cells) != 1 else ''}"
        print(f"{name.ljust(width)}  {cells:>9}  {spec.title}")
    return 0


def _render_profile(manifest_path: Path) -> Optional[str]:
    """One-line profile summary from a run manifest, or None if absent."""
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, ValueError):
        return None
    profile = manifest.get("profile")
    if not isinstance(profile, dict):
        return None
    cache = profile.get("cache", {})
    line = (
        f"# cache: {cache.get('hits', 0)} hit(s), "
        f"{cache.get('misses', 0)} miss(es), "
        f"{cache.get('puts', 0)} put(s), "
        f"{cache.get('evictions', 0)} eviction(s)"
    )
    slowest = profile.get("slowest_cells") or []
    if slowest:
        cells = ", ".join(
            f"{entry['label']} {entry['elapsed_s']:.1f}s" for entry in slowest
        )
        line += f"\n# slowest cells: {cells}"
    return line


def _cmd_report(args: argparse.Namespace) -> int:
    bundle = Path(args.results_dir) / SERIES_BUNDLE
    if not bundle.exists():
        print(
            f"error: {bundle} not found — run `python -m repro.bench run` first",
            file=sys.stderr,
        )
        return 2
    try:
        payloads = json.loads(bundle.read_text())
    except OSError as error:
        print(f"error: cannot read {bundle}: {error}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(
            f"error: {bundle} is not valid JSON ({error}) — "
            "re-run `python -m repro.bench run` to regenerate it",
            file=sys.stderr,
        )
        return 2
    if not isinstance(payloads, list):
        print(
            f"error: {bundle} does not hold a series list — "
            "re-run `python -m repro.bench run` to regenerate it",
            file=sys.stderr,
        )
        return 2
    for payload in payloads:
        try:
            series = ExperimentSeries.from_dict(payload)
        except (KeyError, TypeError, AttributeError):
            print(
                f"error: {bundle} holds a malformed series entry — "
                "re-run `python -m repro.bench run` to regenerate it",
                file=sys.stderr,
            )
            return 2
        print(render_table(series))
        print()
    profile = _render_profile(Path(args.results_dir) / MANIFEST_NAME)
    if profile is not None:
        print(profile)
    return 0


def _cmd_shard(args: argparse.Namespace) -> int:
    if args.nodes < 2:
        raise ValueError(f"--nodes must be >= 2: {args.nodes}")
    results_dir = Path(args.results_dir)
    cache_dir = results_dir / ".cache"
    started = time.perf_counter()
    run = run_sharded_deployment(
        args.nodes,
        args.shards,
        seed=args.seed,
        routing=args.routing,
        deployment=args.deployment,
        jobs=args.jobs,
        cache_dir=None if args.no_cache else cache_dir,
        progress=lambda line: print(line, flush=True),
    )
    wall = time.perf_counter() - started
    series = run.series[0]
    save_csv(series, results_dir)
    print(render_table(series))
    run.manifest.update(
        {
            "node_count": args.nodes,
            "shard_count": args.shards,
            "wall_seconds": round(wall, 3),
            "results_dir": str(results_dir),
        }
    )
    (results_dir / SHARD_MANIFEST_NAME).write_text(
        json.dumps(run.manifest, indent=2, sort_keys=True) + "\n"
    )
    cached = run.manifest["cached_cells"]
    print(
        f"{args.nodes} nodes over {args.shards} shard(s) "
        f"({cached} cached) in {wall:.1f}s wall; "
        f"csv: {results_dir / 'shard.csv'}; "
        f"manifest: {results_dir / SHARD_MANIFEST_NAME}"
    )
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from .perf import cmd_perf  # deferred: keeps `list`/`report` startup light

    return cmd_perf(args)


def _cmd_trend(args: argparse.Namespace) -> int:
    from .ascii_viz import render_sparkline
    from .perf import snapshot_entries, snapshot_history

    history = snapshot_history(
        Path(args.results_dir) if args.results_dir else None
    )
    if not history:
        print(
            "no BENCH_<n>.json snapshots found — run "
            "`python -m repro.bench perf --save` to start a history",
            file=sys.stderr,
        )
        return 2 if args.check else 0
    loaded = []
    for path in history:
        try:
            loaded.append((path, snapshot_entries(path)))
        except ValueError as error:
            if args.check:
                # The CI gate: a corrupt or schema-drifted snapshot in the
                # committed history is an error, not something to paper over.
                raise
            print(f"warning: skipping {path.name}: {error}", file=sys.stderr)
    if args.check:
        print(f"snapshot history ok: {len(loaded)} snapshot(s) readable")
    if len(loaded) < 2:
        print(
            f"{len(loaded)} readable snapshot(s) — a trend needs at least 2; "
            "run `python -m repro.bench perf --save` to add a point"
        )
        return 0

    # Per-kernel trajectory of the spin-loop-normalized score.  A missing
    # kernel in one snapshot renders as a gap, not a zero.
    keys = sorted({key for _, entries in loaded for key in entries})
    names = [path.name for path, _ in loaded]
    print(
        f"perf trajectory over {len(loaded)} snapshots "
        f"({names[0]} .. {names[-1]}, lower is better):"
    )
    key_width = max(len(key) for key in keys)
    for key in keys:
        scores = [
            float(entries[key]["score"]) if key in entries else float("nan")
            for _, entries in loaded
        ]
        finite = [s for s in scores if s == s]
        first, last = finite[0], finite[-1]
        change = (last - first) / first * 100.0 if first else 0.0
        print(
            f"{key.rjust(key_width)} |{render_sparkline(scores)}| "
            f"{first:.2f} -> {last:.2f} ({change:+.1f}%)"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The bench CLI parser (exposed for testing and shell completion)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's §VI evaluation as parallel, "
        "cached experiment cells.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser(
        "run", help="run experiments (parallel cells, cached results)"
    )
    run.add_argument(
        "patterns",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment names or globs, e.g. fig10_33 'fig1*' loss",
    )
    run.add_argument("--all", action="store_true", help="run every experiment")
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (1 = in-process; output is identical)",
    )
    _add_scale_arguments(run)
    run.add_argument(
        "--results-dir",
        default=str(DEFAULT_RESULTS_DIR),
        help="where CSVs, series.json, the manifest and the cache live",
    )
    run.add_argument("--out", default=None, help="report file (default: experiment_report_<scale>.txt)")
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="compute every cell even if a cached result exists",
    )
    run.add_argument(
        "--clear-cache",
        action="store_true",
        help="delete the result cache first (alone: just clear and exit)",
    )
    run.set_defaults(handler=_cmd_run)

    lister = commands.add_parser("list", help="list experiments and cell counts")
    _add_scale_arguments(lister)
    lister.set_defaults(handler=_cmd_list)

    report = commands.add_parser(
        "report", help="re-render tables from the last run's series.json"
    )
    report.add_argument("--results-dir", default=str(DEFAULT_RESULTS_DIR))
    report.set_defaults(handler=_cmd_report)

    shard = commands.add_parser(
        "shard",
        help="fan a giant deployment out over per-subtree shard workers",
    )
    shard.add_argument(
        "--nodes", type=int, default=10000, help="deployment size (default 10000)"
    )
    shard.add_argument(
        "--shards", type=int, default=4, help="shard cells to partition into"
    )
    shard.add_argument(
        "--jobs", type=int, default=1, help="worker processes (1 = in-process)"
    )
    shard.add_argument("--seed", type=int, default=0)
    shard.add_argument("--routing", choices=["flat", "cluster"], default="flat")
    shard.add_argument(
        "--deployment",
        choices=["grid", "uniform"],
        default="grid",
        help="grid stays connected at any size; uniform is the paper's draw",
    )
    shard.add_argument("--results-dir", default=str(DEFAULT_RESULTS_DIR))
    shard.add_argument(
        "--no-cache",
        action="store_true",
        help="compute every shard even if a cached result exists",
    )
    shard.set_defaults(handler=_cmd_shard)

    perf = commands.add_parser(
        "perf",
        help="time codec/kernel/e2e hot paths; write BENCH_<n>.json snapshots",
    )
    from .perf import add_perf_arguments

    add_perf_arguments(perf)
    perf.set_defaults(handler=_cmd_perf)

    trend = commands.add_parser(
        "trend",
        help="per-kernel sparklines over the committed BENCH_<n>.json history",
    )
    trend.add_argument(
        "--results-dir",
        default=None,
        help="snapshot directory (default: benchmarks/results, repo-anchored)",
    )
    trend.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 2) when any snapshot in the history is malformed",
    )
    trend.set_defaults(handler=_cmd_trend)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (ReproError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output was piped into something that stopped reading (`| head`).
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
