"""Selectivity calibration.

The paper's main experimental parameter is the **fraction of nodes in the
result**, varied "by adapting the join conditions" (§VI: "to vary the
fraction of tuples that join, we can also adapt the join conditions. This is
much easier to present, and this is what we do.").

This module does the same mechanically: the workload templates expose one
numeric knob (a range-condition threshold), and :func:`calibrate_threshold`
bisects that knob until the measured fraction of contributing nodes matches
the target.  Measuring never runs a protocol — it evaluates the join
directly over the snapshot (the vectorised evaluator makes this cheap), so
calibration is exact with respect to the data the protocols will see.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..data.relations import SensorWorld
from ..errors import QueryError
from ..joins.base import TupleFormat, node_tuple
from ..query.evaluate import Row, evaluate_join
from ..query.query import JoinQuery

__all__ = ["measure_result_fraction", "calibrate_threshold", "snapshot_rows"]


def snapshot_rows(world: SensorWorld, query: JoinQuery) -> Dict[str, List[Row]]:
    """The per-alias candidate tuples of the current snapshot.

    Applies relation membership and selection predicates exactly like the
    protocols do (via :func:`repro.joins.base.node_tuple`), so the measured
    fraction matches what an execution would produce.
    """
    fmt = TupleFormat(query, world)
    rows: Dict[str, List[Row]] = {alias: [] for alias in fmt.aliases}
    for node_id in world.network.sensor_node_ids:
        record, flags = node_tuple(fmt, node_id)
        if record is None:
            continue
        for alias in fmt.aliases_of_flags(flags):
            rows[alias].append(Row(node_id, dict(record.values)))
    return rows


def measure_result_fraction(world: SensorWorld, query: JoinQuery) -> float:
    """Fraction of sensor nodes whose tuple appears in the join result."""
    total = len(world.network.sensor_node_ids)
    if total == 0:
        raise QueryError("network has no sensor nodes")
    result = evaluate_join(query, snapshot_rows(world, query), apply_selections=False)
    return len(result.all_contributing_nodes()) / total


def calibrate_threshold(
    world: SensorWorld,
    query_for: Callable[[float], JoinQuery],
    target_fraction: float,
    lo: float,
    hi: float,
    increasing: bool = True,
    tolerance: float = 0.005,
    max_iterations: int = 40,
) -> Tuple[float, float]:
    """Bisect a threshold until the result fraction hits the target.

    Parameters
    ----------
    query_for:
        Builds the query for a candidate threshold value.
    target_fraction:
        Desired fraction of nodes in the result (e.g. 0.05).
    lo, hi:
        Search bracket for the threshold.
    increasing:
        True when a *larger* threshold yields a *larger* fraction (e.g.
        ``|A.temp - B.temp| < delta``); False for the opposite (e.g.
        ``A.temp - B.temp > delta``).
    tolerance:
        Accept when ``|measured - target| <= tolerance``.

    Returns ``(threshold, achieved_fraction)``; after the iteration budget
    the midpoint's fraction is returned even outside tolerance (the caller
    reports the achieved fraction, so experiments stay honest).
    """
    if not 0.0 <= target_fraction <= 1.0:
        raise ValueError(f"target fraction must be in [0, 1]: {target_fraction}")
    if lo >= hi:
        raise ValueError(f"invalid bracket: [{lo}, {hi}]")
    world.take_snapshot(0.0)
    best_threshold, best_fraction = lo, measure_result_fraction(world, query_for(lo))
    for _ in range(max_iterations):
        mid = (lo + hi) / 2.0
        fraction = measure_result_fraction(world, query_for(mid))
        if abs(fraction - target_fraction) < abs(best_fraction - target_fraction):
            best_threshold, best_fraction = mid, fraction
        if abs(fraction - target_fraction) <= tolerance:
            return mid, fraction
        overshoot = fraction > target_fraction
        if overshoot == increasing:
            hi = mid
        else:
            lo = mid
    return best_threshold, best_fraction
