"""Workload construction for the §VI experiments.

The paper's experiment queries follow one template::

    SELECT A.att_1,..., A.att_n, B.att_1,..., B.att_n
    FROM Sensors A, Sensors B
    WHERE join-expr(A.join-atts, B.join-atts) AND ... ONCE

with two default settings "settled towards different ends of the spectrum":

* **33 %** — one join attribute out of three attributes overall: the join
  condition is a Q1-style range condition over the temperature,
  ``A.temp - B.temp > delta``;
* **60 %** — three join attributes out of five: a Q2-style similarity +
  distance condition, ``|A.temp - B.temp| < delta AND
  distance(A.x, A.y, B.x, B.y) > 100``.

``delta`` is the selectivity knob that
:func:`repro.bench.calibrate.calibrate_threshold` tunes to hit a target
fraction of nodes in the result.

Scale: the paper's default is 1500 nodes on 1050 m x 1050 m.  Benches run a
scaled-down default (600 nodes, same density) so the suite stays fast; set
``REPRO_SCALE=paper`` to run every experiment at full size.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Optional, Tuple

from .. import constants
from ..data.relations import SensorWorld
from ..joins.runner import run_snapshot
from ..query.parser import parse_query
from ..query.query import JoinQuery
from ..routing.cluster import build_routing_tree
from ..routing.tree import RoutingTree
from ..sim.network import DeploymentConfig, Network, deploy_uniform
from ..sim.radio import PacketFormat
from .cache import ResultCache, cache_key, calibration_cache_dir
from .calibrate import calibrate_threshold

__all__ = [
    "Scenario",
    "build_scenario",
    "default_node_count",
    "ratio_query_builder",
    "calibrated_query",
    "JOIN_ATTR_SETS",
    "EXTRA_ATTR_POOL",
]

#: Join-attribute sets by count: 1 = Q1-style, 3 = Q2-style.
JOIN_ATTR_SETS = {1: ["temp"], 2: ["temp", "hum"], 3: ["temp", "x", "y"]}

#: Non-join attributes added to reach a target "attributes overall" count.
EXTRA_ATTR_POOL = ["hum", "pres", "light", "x", "y"]

#: Q2's minimum-distance constant (metres).
MIN_DISTANCE_M = 100.0


def default_node_count() -> int:
    """600 by default; the paper's 1500 under ``REPRO_SCALE=paper``."""
    if os.environ.get("REPRO_SCALE", "").lower() == "paper":
        return constants.PAPER_NODE_COUNT
    return 600


@dataclass
class Scenario:
    """A deployed, data-bound, routed network ready for query execution."""

    network: Network
    world: SensorWorld
    tree: RoutingTree
    config: DeploymentConfig
    seed: int

    @property
    def node_count(self) -> int:
        """Number of sensor nodes (excluding the base station)."""
        return len(self.network.sensor_node_ids)

    def run(self, query: JoinQuery, algorithm, **kwargs):
        """Execute one snapshot query on this scenario."""
        return run_snapshot(
            self.network, self.world, query, algorithm, tree=self.tree,
            tree_seed=self.seed, **kwargs,
        )


@lru_cache(maxsize=16)
def _cached_scenario(
    node_count: int, seed: int, packet_bytes: int, length_scale: float,
    loss_rate: float, routing: str,
) -> Scenario:
    base = DeploymentConfig()  # paper density
    config = base.scaled(node_count)
    config = DeploymentConfig(
        node_count=config.node_count,
        area_side_m=config.area_side_m,
        radio_range_m=config.radio_range_m,
        seed=seed,
        loss_rate=loss_rate,
        routing=routing,
    )
    network = deploy_uniform(config, packet_format=PacketFormat(packet_bytes))
    world = SensorWorld.homogeneous(
        network, seed=seed, area_side_m=config.area_side_m, length_scale=length_scale
    )
    tree = build_routing_tree(network, routing=config.routing, seed=seed)
    return Scenario(network, world, tree, config, seed)


def build_scenario(
    node_count: Optional[int] = None,
    seed: int = 0,
    packet_bytes: int = constants.DEFAULT_MAX_PACKET_BYTES,
    length_scale: float = 150.0,
    loss_rate: float = 0.0,
    routing: str = "flat",
) -> Scenario:
    """A deployment at the paper's density (cached per parameter set).

    ``routing`` selects the tree-construction mode (``"flat"`` CTP vs
    ``"cluster"`` grid-head routing) and is carried on the scenario's
    :class:`~repro.sim.network.DeploymentConfig`.
    """
    if node_count is None:
        node_count = default_node_count()
    return _cached_scenario(
        node_count, seed, packet_bytes, length_scale, loss_rate, routing
    )


def ratio_query_builder(
    join_attr_count: int, total_attr_count: int
) -> Callable[[float], JoinQuery]:
    """A query template with the requested join/overall attribute counts.

    Returns ``query_for(threshold)``.  The threshold semantics depend on the
    join-attribute count: one join attribute uses the Q1-style condition
    (fraction *decreases* with the threshold), two or three join attributes
    use Q2-style similarity conditions (fraction *increases*).
    """
    try:
        join_attrs = JOIN_ATTR_SETS[join_attr_count]
    except KeyError:
        raise ValueError(
            f"supported join-attribute counts: {sorted(JOIN_ATTR_SETS)}; "
            f"got {join_attr_count}"
        ) from None
    if total_attr_count < join_attr_count:
        raise ValueError(
            f"total attributes ({total_attr_count}) cannot be fewer than "
            f"join attributes ({join_attr_count})"
        )
    extras = [name for name in EXTRA_ATTR_POOL if name not in join_attrs]
    needed = total_attr_count - join_attr_count
    if needed > len(extras):
        raise ValueError(f"not enough distinct attributes for total={total_attr_count}")
    selected = extras[:needed] if needed else join_attrs[:1]
    select_clause = ", ".join(
        f"{alias}.{name}" for name in selected for alias in ("A", "B")
    )

    def query_for(threshold: float) -> JoinQuery:
        # All templates are Q1-style *tail* range conditions: the threshold
        # moves through the temperature-difference distribution's tail, so
        # the calibrated values stay far above the 0.1 degC quantization
        # resolution (a similarity condition tight enough for a 5% result
        # fraction would sit *below* the resolution and the conservative
        # pre-computation join would degenerate to "keep everything" —
        # exactly the too-coarse-resolution caveat of §V-B).
        if join_attr_count == 1:
            condition = f"A.temp - B.temp > {threshold:.9f}"
        elif join_attr_count == 2:
            condition = (
                f"A.temp - B.temp > {threshold:.9f} AND |A.hum - B.hum| < 150.0"
            )
        else:
            condition = (
                f"A.temp - B.temp > {threshold:.9f} "
                f"AND distance(A.x, A.y, B.x, B.y) > {MIN_DISTANCE_M:.1f}"
            )
        sql = (
            f"SELECT {select_clause} FROM sensors A, sensors B "
            f"WHERE {condition} ONCE"
        )
        return parse_query(sql)

    return query_for


def _bracket_for(join_attr_count: int, world: SensorWorld) -> Tuple[float, float, bool]:
    """Threshold search bracket and monotonicity per template.

    Every template uses ``A.temp - B.temp > delta``: a larger delta means a
    smaller result fraction (decreasing monotonicity).
    """
    return 0.0, 40.0, False


@lru_cache(maxsize=64)
def _cached_calibration(
    node_count: int,
    seed: int,
    packet_bytes: int,
    join_attr_count: int,
    total_attr_count: int,
    fraction_milli: int,
) -> float:
    """One calibrated threshold, memoised in-process and (optionally) on disk.

    When a harness run enables its result cache
    (:func:`repro.bench.cache.calibration_cache_dir` is set), calibrations
    become content-addressed cells of their own: worker processes share one
    directory, so each unique (deployment, template, fraction) threshold is
    bisected once per cache lifetime rather than once per process.
    """
    params = {
        "kind": "calibration",
        "node_count": node_count,
        "seed": seed,
        "packet_bytes": packet_bytes,
        "join_attr_count": join_attr_count,
        "total_attr_count": total_attr_count,
        "fraction_milli": fraction_milli,
    }
    cache_dir = calibration_cache_dir()
    disk = ResultCache(cache_dir) if cache_dir is not None else None
    key = cache_key(params) if disk is not None else None
    if disk is not None:
        entry = disk.get(key)
        if entry is not None:
            return float(entry["threshold"])
    scenario = build_scenario(node_count, seed, packet_bytes)
    builder = ratio_query_builder(join_attr_count, total_attr_count)
    lo, hi, increasing = _bracket_for(join_attr_count, scenario.world)
    threshold, _achieved = calibrate_threshold(
        scenario.world,
        builder,
        fraction_milli / 1000.0,
        lo,
        hi,
        increasing=increasing,
    )
    if disk is not None:
        disk.put(key, {"params": params, "threshold": threshold})
    return threshold


def calibrated_query(
    scenario: Scenario,
    join_attr_count: int,
    total_attr_count: int,
    target_fraction: float = constants.PAPER_RESULT_FRACTION,
) -> JoinQuery:
    """The template query tuned so ~``target_fraction`` of nodes join."""
    threshold = _cached_calibration(
        scenario.node_count,
        scenario.seed,
        scenario.network.packet_format.max_packet_bytes,
        join_attr_count,
        total_attr_count,
        int(round(target_fraction * 1000)),
    )
    return ratio_query_builder(join_attr_count, total_attr_count)(threshold)
