"""Join evaluation at the base station.

Two evaluators live here, both driven by the same query AST:

:func:`evaluate_join`
    **Exact** n-way join over full tuples (raw sensor values).  Used for the
    final result computation of both SENS-Join and the external join.  It is
    a vectorised nested-loop join: aliases are bound one at a time, every
    join conjunct is applied as soon as all the aliases it references are
    bound (early pruning), and all arithmetic runs in numpy over index
    arrays — thousands of tuples join in milliseconds.

:func:`conservative_semijoin`
    **Conservative** n-way semi-join over quantization-cell intervals.  Used
    to build the join filter (§IV-A step 1a): a point survives iff it
    participates in at least one combination that *possibly* satisfies all
    join predicates (interval semantics — see :mod:`repro.query.intervals`).
    The output per alias is exactly the N-way semi-join reduction [10] of
    the quantized relations.

Both share :class:`Row` — one tuple with its originating node id — and the
incremental binding engine :func:`_expand_combinations`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import EvaluationError, QueryError
from .expressions import Aggregate, ColumnRef, Predicate
from .query import JoinQuery

__all__ = ["Row", "JoinResult", "evaluate_join", "conservative_semijoin", "CellBounds"]


@dataclass(frozen=True)
class Row:
    """One relation tuple: its source node and its attribute values."""

    node_id: int
    values: Mapping[str, float]

    def project(self, attributes: Sequence[str]) -> "Row":
        """A copy restricted to the given attributes."""
        return Row(self.node_id, {name: self.values[name] for name in attributes})


class JoinResult:
    """Outcome of an exact join evaluation.

    ``rows`` holds the SELECT output (one dict per result row; for aggregate
    queries exactly one row).  ``combinations`` holds, for every result row
    of the underlying join (pre-aggregation), the tuple of contributing node
    ids in FROM-clause alias order — this is the canonical value the
    equivalence tests compare across join algorithms.

    Internally both are backed by numpy arrays and materialised lazily:
    large results (the external join at low selectivity can produce millions
    of matches) stay cheap unless someone actually iterates them.
    """

    def __init__(
        self,
        aliases: Tuple[str, ...],
        node_combos: np.ndarray,
        row_columns: "Dict[str, np.ndarray]",
    ):
        self.aliases = tuple(aliases)
        # (match_count, n_aliases) int array of contributing node ids.
        self._node_combos = np.asarray(node_combos, dtype=int).reshape(-1, len(aliases))
        # SELECT output as column arrays, all of equal length.
        self._row_columns = row_columns
        self._rows_cache: Optional[List[Dict[str, float]]] = None
        self._combos_cache: Optional[List[Tuple[int, ...]]] = None

    @classmethod
    def from_lists(
        cls,
        aliases: Tuple[str, ...],
        rows: List[Dict[str, float]],
        combinations: List[Tuple[int, ...]],
    ) -> "JoinResult":
        """Build from plain Python lists (test convenience)."""
        combo_array = np.array(combinations, dtype=int).reshape(-1, len(aliases))
        labels = list(rows[0]) if rows else []
        columns = {
            label: np.array([row[label] for row in rows], dtype=float) for label in labels
        }
        return cls(aliases, combo_array, columns)

    @property
    def rows(self) -> List[Dict[str, float]]:
        """The SELECT output rows (materialised on first access)."""
        if self._rows_cache is None:
            labels = list(self._row_columns)
            count = len(next(iter(self._row_columns.values()))) if labels else 0
            self._rows_cache = [
                {label: float(self._row_columns[label][i]) for label in labels}
                for i in range(count)
            ]
        return self._rows_cache

    @property
    def combinations(self) -> List[Tuple[int, ...]]:
        """Contributing node-id tuples (materialised on first access)."""
        if self._combos_cache is None:
            self._combos_cache = [tuple(int(v) for v in row) for row in self._node_combos]
        return self._combos_cache

    @property
    def row_count(self) -> int:
        """Number of SELECT output rows."""
        if not self._row_columns:
            return 0
        return len(next(iter(self._row_columns.values())))

    @property
    def match_count(self) -> int:
        """Number of joining tuple combinations (pre-aggregation)."""
        return int(self._node_combos.shape[0])

    def contributing_nodes(self, alias: str) -> Set[int]:
        """Node ids whose tuple (under ``alias``) joins at least once."""
        try:
            position = self.aliases.index(alias)
        except ValueError:
            raise QueryError(f"unknown alias {alias!r}") from None
        if self._node_combos.size == 0:
            return set()
        return {int(v) for v in np.unique(self._node_combos[:, position])}

    def all_contributing_nodes(self) -> Set[int]:
        """Node ids contributing under any alias."""
        if self._node_combos.size == 0:
            return set()
        return {int(v) for v in np.unique(self._node_combos)}

    def signature(self, digits: int = 9) -> tuple:
        """Order-independent fingerprint for cross-algorithm comparison.

        Two algorithms computed the same result iff the signatures match:
        the multiset of contributing node-id combinations plus the multiset
        of (rounded) output rows.
        """
        combos = tuple(sorted(self.combinations))
        rows = tuple(
            sorted(
                tuple(sorted((key, round(value, digits)) for key, value in row.items()))
                for row in self.rows
            )
        )
        return (combos, rows)

    def result_set(self, digits: int = 9) -> frozenset:
        """The result as a comparable set, for differential testing.

        Non-aggregate queries emit one output row per joining combination,
        so elements are ``(node_combo, canonical_row)`` pairs — equality
        means two engines found the same matches *and* computed the same
        values for them, and a partial (faulted) result's set is a subset
        of the oracle's.  Aggregate queries collapse to a single row, so
        combinations and (rounded) rows are keyed separately instead.
        """

        def canonical(row: Mapping[str, float]) -> Tuple[Tuple[str, float], ...]:
            return tuple(sorted((key, round(value, digits)) for key, value in row.items()))

        rows = self.rows
        if len(rows) == self.match_count:
            return frozenset(zip(self.combinations, (canonical(row) for row in rows)))
        elements: set = {("combo", combo) for combo in self.combinations}
        elements |= {("row", canonical(row)) for row in rows}
        return frozenset(elements)


# ---------------------------------------------------------------------------
# Incremental combination expansion (shared by exact and conservative modes)
# ---------------------------------------------------------------------------


def _conjunct_schedule(
    query: JoinQuery, aliases: Sequence[str]
) -> List[Tuple[int, Predicate]]:
    """For each join conjunct, the 1-based binding step where it can fire.

    A conjunct fires at the first step where every alias it references has
    been bound (aliases are bound in FROM order).
    """
    schedule: List[Tuple[int, Predicate]] = []
    for conjunct in query.join_predicates:
        referenced = {alias for alias, _ in conjunct.columns()}
        step = max(aliases.index(alias) for alias in referenced) + 1
        schedule.append((step, conjunct))
    return schedule


def evaluate_join(
    query: JoinQuery,
    tuples_by_alias: Mapping[str, Sequence[Row]],
    apply_selections: bool = True,
) -> JoinResult:
    """Exact n-way join; see the module docstring.

    Parameters
    ----------
    query:
        The bound query; must have at least one relation.
    tuples_by_alias:
        The candidate tuples per alias (full tuples — every attribute the
        query references must be present).
    apply_selections:
        Apply per-alias selection predicates here.  The protocols apply
        them at the nodes already, so they pass ``False``; callers feeding
        raw snapshots leave the default.
    """
    aliases = query.aliases
    working: Dict[str, List[Row]] = {}
    for alias in aliases:
        rows = list(tuples_by_alias.get(alias, ()))
        if apply_selections:
            for predicate in query.selection_predicates(alias):
                rows = [
                    row
                    for row in rows
                    if predicate.evaluate(
                        {(alias, name): value for name, value in row.values.items()}
                    )
                ]
        working[alias] = rows

    combos = _expand_exact(query, aliases, working)
    match_count = combos.shape[0]

    # SELECT evaluation over the surviving combinations, vectorised.
    env: Dict[ColumnRef, np.ndarray] = {}
    node_combos = np.zeros((match_count, len(aliases)), dtype=int)
    for position, alias in enumerate(aliases):
        rows = working[alias]
        indices = combos[:, position] if match_count else np.zeros(0, dtype=int)
        node_ids = np.array([row.node_id for row in rows], dtype=int)
        node_combos[:, position] = node_ids[indices] if len(rows) else indices
        referenced_attrs = {
            attr
            for item in query.select
            for ref_alias, attr in item.payload.columns()
            if ref_alias == alias
        }
        for attr in referenced_attrs:
            column = np.array([row.values[attr] for row in rows], dtype=float)
            env[(alias, attr)] = column[indices] if len(rows) else np.array([])

    if query.is_aggregate:
        out_columns: Dict[str, np.ndarray] = {}
        for item in query.select:
            aggregate = item.payload
            assert isinstance(aggregate, Aggregate)
            if aggregate.operand is None:
                out_columns[item.name] = np.array([aggregate.apply([], match_count)])
            else:
                if match_count == 0 and aggregate.func != "COUNT":
                    # Aggregate over empty result: SQL would yield NULL; we
                    # return an empty result set instead of inventing a value.
                    return JoinResult(tuple(aliases), np.zeros((0, len(aliases))), {})
                per_row = aggregate.operand.values(env) if match_count else np.array([])
                out_columns[item.name] = np.array([aggregate.apply(per_row, match_count)])
        return JoinResult(tuple(aliases), node_combos, out_columns)

    out_columns = {}
    for item in query.select:
        values = np.broadcast_to(
            np.asarray(item.payload.values(env), dtype=float), (match_count,)
        ).astype(float)
        out_columns[item.name] = values
    return JoinResult(tuple(aliases), node_combos, out_columns)


def _expand_exact(
    query: JoinQuery,
    aliases: Sequence[str],
    working: Mapping[str, Sequence[Row]],
) -> np.ndarray:
    """Index combinations satisfying every join conjunct, shape (M, n)."""
    schedule = _conjunct_schedule(query, aliases)
    # Partial environment: (alias, attr) -> value array over partial combos.
    combos = np.zeros((1, 0), dtype=int)  # one empty combination
    env: Dict[ColumnRef, np.ndarray] = {}
    for step, alias in enumerate(aliases, start=1):
        rows = working[alias]
        count = len(rows)
        if count == 0:
            return np.zeros((0, len(aliases)), dtype=int)
        # Cross product: every partial combo x every tuple of this alias.
        partial = combos.shape[0]
        new_combos = np.empty((partial * count, combos.shape[1] + 1), dtype=int)
        new_combos[:, :-1] = np.repeat(combos, count, axis=0)
        new_combos[:, -1] = np.tile(np.arange(count), partial)
        combos = new_combos
        # Extend the environment to the new shape.
        env = {ref: np.repeat(column, count) for ref, column in env.items()}
        attrs_needed = _attrs_needed(query, alias)
        for attr in attrs_needed:
            column = np.array([row.values[attr] for row in rows], dtype=float)
            env[(alias, attr)] = np.tile(column, partial)
        # Fire every conjunct scheduled at this step.
        mask: Optional[np.ndarray] = None
        for fire_step, conjunct in schedule:
            if fire_step != step:
                continue
            part = np.broadcast_to(conjunct.values(env), (combos.shape[0],))
            mask = part if mask is None else (mask & part)
        if mask is not None:
            combos = combos[mask]
            env = {ref: column[mask] for ref, column in env.items()}
    return combos


def _attrs_needed(query: JoinQuery, alias: str) -> List[str]:
    """Attributes of ``alias`` referenced by any join conjunct."""
    attrs: Set[str] = set()
    for conjunct in query.join_predicates:
        for ref_alias, attr in conjunct.columns():
            if ref_alias == alias:
                attrs.add(attr)
    return sorted(attrs)


# ---------------------------------------------------------------------------
# Conservative semi-join over quantization cells
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CellBounds:
    """One quantized join-attribute tuple as per-attribute value intervals.

    ``lo[attr]``/``hi[attr]`` bound the raw values the cell may contain.
    Produced by :meth:`repro.codec.quantize.Quantizer.cell_bounds`.
    """

    lo: Mapping[str, float]
    hi: Mapping[str, float]


def conservative_semijoin(
    query: JoinQuery,
    cells_by_alias: Mapping[str, Sequence[CellBounds]],
) -> Dict[str, Set[int]]:
    """Indices per alias of cells that possibly join (N-way semi-join).

    A cell of alias X survives iff there is a combination of cells (one per
    other alias) such that **every** join predicate *possibly* holds under
    interval semantics.  Guaranteed no false negatives: if raw tuples
    t1..tn join, then their cells form a possibly-joining combination, so
    each of their cells survives.

    The two-alias case (every experiment in the paper) runs as a single
    vectorised pass without materialising combinations.
    """
    aliases = query.aliases
    if len(aliases) < 2:
        raise QueryError("conservative_semijoin needs at least two relations")
    if len(aliases) == 2:
        return _semijoin_two_way(query, cells_by_alias)
    return _semijoin_n_way(query, cells_by_alias)


def _bounds_env_for(
    alias: str,
    cells: Sequence[CellBounds],
    attrs: Sequence[str],
    orient_rows: bool,
) -> Dict[ColumnRef, Tuple[np.ndarray, np.ndarray]]:
    env: Dict[ColumnRef, Tuple[np.ndarray, np.ndarray]] = {}
    for attr in attrs:
        lo = np.array([cell.lo[attr] for cell in cells], dtype=float)
        hi = np.array([cell.hi[attr] for cell in cells], dtype=float)
        if orient_rows:
            env[(alias, attr)] = (lo[:, None], hi[:, None])
        else:
            env[(alias, attr)] = (lo[None, :], hi[None, :])
    return env


def _semijoin_two_way(
    query: JoinQuery,
    cells_by_alias: Mapping[str, Sequence[CellBounds]],
) -> Dict[str, Set[int]]:
    alias_a, alias_b = query.aliases
    cells_a = list(cells_by_alias.get(alias_a, ()))
    cells_b = list(cells_by_alias.get(alias_b, ()))
    if not cells_a or not cells_b:
        return {alias_a: set(), alias_b: set()}
    env: Dict[ColumnRef, Tuple[np.ndarray, np.ndarray]] = {}
    env.update(_bounds_env_for(alias_a, cells_a, _attrs_needed(query, alias_a), True))
    env.update(_bounds_env_for(alias_b, cells_b, _attrs_needed(query, alias_b), False))
    possible = np.ones((len(cells_a), len(cells_b)), dtype=bool)
    for conjunct in query.join_predicates:
        conjunct_possible, _ = conjunct.masks(env)
        possible &= np.broadcast_to(conjunct_possible, possible.shape)
    survivors_a = {int(i) for i in np.nonzero(possible.any(axis=1))[0]}
    survivors_b = {int(j) for j in np.nonzero(possible.any(axis=0))[0]}
    return {alias_a: survivors_a, alias_b: survivors_b}


def _semijoin_n_way(
    query: JoinQuery,
    cells_by_alias: Mapping[str, Sequence[CellBounds]],
    max_combinations: int = 5_000_000,
) -> Dict[str, Set[int]]:
    """General case: incremental binding with possible-mask pruning."""
    aliases = query.aliases
    schedule = _conjunct_schedule(query, aliases)
    combos = np.zeros((1, 0), dtype=int)
    env: Dict[ColumnRef, Tuple[np.ndarray, np.ndarray]] = {}
    for step, alias in enumerate(aliases, start=1):
        cells = list(cells_by_alias.get(alias, ()))
        count = len(cells)
        if count == 0:
            return {alias: set() for alias in aliases}
        partial = combos.shape[0]
        if partial * count > max_combinations:
            raise EvaluationError(
                f"conservative n-way semi-join would expand to "
                f"{partial * count} combinations (> {max_combinations}); "
                "reduce the relations or tighten the predicates"
            )
        new_combos = np.empty((partial * count, combos.shape[1] + 1), dtype=int)
        new_combos[:, :-1] = np.repeat(combos, count, axis=0)
        new_combos[:, -1] = np.tile(np.arange(count), partial)
        combos = new_combos
        env = {
            ref: (np.repeat(lo, count), np.repeat(hi, count)) for ref, (lo, hi) in env.items()
        }
        for attr in _attrs_needed(query, alias):
            lo = np.array([cell.lo[attr] for cell in cells], dtype=float)
            hi = np.array([cell.hi[attr] for cell in cells], dtype=float)
            env[(alias, attr)] = (np.tile(lo, partial), np.tile(hi, partial))
        mask: Optional[np.ndarray] = None
        for fire_step, conjunct in schedule:
            if fire_step != step:
                continue
            possible, _ = conjunct.masks(env)
            possible = np.broadcast_to(possible, (combos.shape[0],))
            mask = possible if mask is None else (mask & possible)
        if mask is not None:
            combos = combos[mask]
            env = {ref: (lo[mask], hi[mask]) for ref, (lo, hi) in env.items()}
    survivors: Dict[str, Set[int]] = {}
    for position, alias in enumerate(aliases):
        survivors[alias] = {int(i) for i in np.unique(combos[:, position])}
    return survivors
