"""Closed-interval arithmetic with three-valued predicate outcomes.

Why this exists: SENS-Join's pre-computation joins *quantized*
join-attribute tuples.  A quantized value stands for an interval of raw
values (one quantization cell), so the pre-computation join must be
*conservative*: a pair of cells may only be dropped when **no** pair of raw
values inside them can satisfy the join condition (§V-B, footnote 2: "As we
reduce the resolution, we need to adjust the join of the pre-computation not
to miss a joining tuple").

Evaluating an arbitrary theta-condition over cells is classic interval
arithmetic: numeric expressions map intervals to intervals, and comparisons
yield a :class:`TriBool` — ``TRUE`` (holds for every value combination),
``FALSE`` (holds for none; safe to prune) or ``MAYBE``.  The filter keeps
everything not ``FALSE``.

The scalar :class:`Interval` here is the readable reference implementation;
the vectorised twin used on large point sets lives in the expression AST
(:meth:`repro.query.expressions.Expression.bounds`), and a hypothesis test
checks they agree.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from ..errors import EvaluationError

__all__ = ["Interval", "TriBool"]


class TriBool(enum.Enum):
    """Three-valued logic for predicates over intervals."""

    FALSE = 0
    TRUE = 1
    MAYBE = 2

    def __and__(self, other: "TriBool") -> "TriBool":
        if self is TriBool.FALSE or other is TriBool.FALSE:
            return TriBool.FALSE
        if self is TriBool.TRUE and other is TriBool.TRUE:
            return TriBool.TRUE
        return TriBool.MAYBE

    def __or__(self, other: "TriBool") -> "TriBool":
        if self is TriBool.TRUE or other is TriBool.TRUE:
            return TriBool.TRUE
        if self is TriBool.FALSE and other is TriBool.FALSE:
            return TriBool.FALSE
        return TriBool.MAYBE

    def negate(self) -> "TriBool":
        """Logical NOT (MAYBE stays MAYBE)."""
        if self is TriBool.TRUE:
            return TriBool.FALSE
        if self is TriBool.FALSE:
            return TriBool.TRUE
        return TriBool.MAYBE

    @property
    def possible(self) -> bool:
        """True unless definitely FALSE (the pruning criterion)."""
        return self is not TriBool.FALSE

    @property
    def definite(self) -> bool:
        """True only when TRUE for every value combination."""
        return self is TriBool.TRUE

    @staticmethod
    def of(value: bool) -> "TriBool":
        """Lift an exact boolean."""
        return TriBool.TRUE if value else TriBool.FALSE


@dataclass(frozen=True)
class Interval:
    """A closed interval [lo, hi] of reals.

    Degenerate intervals (lo == hi) represent exact values, so exact scalar
    evaluation is the special case ``Interval.point(v)`` — a property the
    tests exploit.
    """

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if math.isnan(self.lo) or math.isnan(self.hi):
            raise EvaluationError("interval bounds must not be NaN")
        if self.lo > self.hi:
            raise EvaluationError(f"empty interval: lo={self.lo} > hi={self.hi}")

    @staticmethod
    def point(value: float) -> "Interval":
        """The degenerate interval containing exactly ``value``."""
        return Interval(value, value)

    @property
    def is_point(self) -> bool:
        """True for degenerate (exact-value) intervals."""
        return self.lo == self.hi

    @property
    def width(self) -> float:
        """hi - lo."""
        return self.hi - self.lo

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies in the interval."""
        return self.lo <= value <= self.hi

    # -- arithmetic -----------------------------------------------------------

    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def __sub__(self, other: "Interval") -> "Interval":
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def __mul__(self, other: "Interval") -> "Interval":
        products = (
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        )
        return Interval(min(products), max(products))

    def __truediv__(self, other: "Interval") -> "Interval":
        if other.contains(0.0):
            # Dividing by an interval spanning zero: bounds blow up.  The
            # conservative answer is the whole real line, which keeps the
            # evaluation sound (everything stays MAYBE downstream).
            return Interval(-math.inf, math.inf)
        reciprocals = Interval(1.0 / other.hi, 1.0 / other.lo)
        return self * reciprocals

    def abs(self) -> "Interval":
        """|x| over the interval."""
        if self.lo >= 0:
            return self
        if self.hi <= 0:
            return -self
        return Interval(0.0, max(-self.lo, self.hi))

    def sqrt(self) -> "Interval":
        """sqrt(x); negative parts clamp to zero (sound for distance use)."""
        lo = math.sqrt(max(self.lo, 0.0))
        hi = math.sqrt(max(self.hi, 0.0))
        return Interval(lo, hi)

    def square(self) -> "Interval":
        """x^2 (tighter than self * self when the interval spans zero)."""
        return self.abs() * self.abs()

    def min_with(self, other: "Interval") -> "Interval":
        """Elementwise min of the two ranges."""
        return Interval(min(self.lo, other.lo), min(self.hi, other.hi))

    def max_with(self, other: "Interval") -> "Interval":
        """Elementwise max of the two ranges."""
        return Interval(max(self.lo, other.lo), max(self.hi, other.hi))

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    # -- comparisons (TriBool) --------------------------------------------------

    def lt(self, other: "Interval") -> TriBool:
        """self < other, three-valued."""
        if self.hi < other.lo:
            return TriBool.TRUE
        if self.lo >= other.hi:
            return TriBool.FALSE
        return TriBool.MAYBE

    def le(self, other: "Interval") -> TriBool:
        """self <= other, three-valued."""
        if self.hi <= other.lo:
            return TriBool.TRUE
        if self.lo > other.hi:
            return TriBool.FALSE
        return TriBool.MAYBE

    def gt(self, other: "Interval") -> TriBool:
        """self > other, three-valued."""
        return other.lt(self)

    def ge(self, other: "Interval") -> TriBool:
        """self >= other, three-valued."""
        return other.le(self)

    def eq(self, other: "Interval") -> TriBool:
        """self == other, three-valued."""
        if self.is_point and other.is_point and self.lo == other.lo:
            return TriBool.TRUE
        if self.hi < other.lo or other.hi < self.lo:
            return TriBool.FALSE
        return TriBool.MAYBE

    def ne(self, other: "Interval") -> TriBool:
        """self != other, three-valued."""
        return self.eq(other).negate()

    @staticmethod
    def distance(x1: "Interval", y1: "Interval", x2: "Interval", y2: "Interval") -> "Interval":
        """Euclidean distance over interval coordinates."""
        return ((x1 - x2).square() + (y1 - y2).square()).sqrt()
