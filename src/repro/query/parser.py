"""Parser for the TinyDB-style SQL dialect of the paper.

Grammar (§III problem statement, extended with the notation the paper's own
example queries use)::

    query       := SELECT select_list FROM from_list [WHERE predicate] mode
    select_list := '*' | select_item (',' select_item)*
    select_item := (aggregate | expr) [AS ident]
    aggregate   := (MIN|MAX|AVG|SUM|COUNT) '(' (expr | '*') ')'
    from_list   := relation (',' relation)*
    relation    := ident [ident]              -- name + optional alias
    mode        := ONCE | SAMPLE PERIOD number
    predicate   := and_term (OR and_term)*
    and_term    := not_term (AND not_term)*
    not_term    := NOT not_term | comparison | '(' predicate ')'
    comparison  := expr ('<'|'<='|'>'|'>='|'='|'!='|'<>') expr
    expr        := term (('+'|'-') term)*
    term        := factor (('*'|'/') factor)*
    factor      := '-' factor | atom
    atom        := number | column | call | '(' expr ')' | '|' expr '|'
    call        := ident '(' expr (',' expr)* ')'
    column      := ident '.' ident | ident   -- bare names bind if FROM has
                                             -- exactly one relation

Notable dialect features straight from the paper's queries:

* ``|expr|`` absolute-value bars (Q2: ``|A.temp - B.temp| < 0.3``);
* the ``distance(x1, y1, x2, y2)`` builtin (Q1, Q2);
* the TinyDB temporal clauses ``ONCE`` and ``SAMPLE PERIOD x`` [18];
* ``SELECT *`` (expanded against a sensor catalogue when one is supplied).

``(`` after NOT/WHERE is ambiguous between predicate grouping and arithmetic
grouping; the parser resolves it by backtracking (try predicate, fall back to
comparison), which a couple of nasty tests pin down.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..data.sensors import SensorCatalog
from ..errors import ParseError
from .expressions import (
    Abs,
    Add,
    Aggregate,
    And,
    Column,
    Compare,
    Distance,
    Div,
    Expression,
    Literal,
    Mul,
    Neg,
    Not,
    Or,
    Predicate,
    Sub,
)
from .query import JoinQuery, Once, SamplePeriod, SelectItem

__all__ = ["parse_query", "tokenize", "Token"]

_KEYWORDS = {
    "SELECT",
    "FROM",
    "WHERE",
    "AND",
    "OR",
    "NOT",
    "AS",
    "ONCE",
    "SAMPLE",
    "PERIOD",
    "MIN",
    "MAX",
    "AVG",
    "SUM",
    "COUNT",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><=|>=|!=|<>|[<>=+\-*/(),.|*])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    kind: str  # "number" | "ident" | "keyword" | "op" | "eof"
    text: str
    position: int


def tokenize(source: str) -> List[Token]:
    """Split the query text into tokens; raises ParseError on junk."""
    tokens: List[Token] = []
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise ParseError(
                f"unexpected character {source[position]!r} at offset {position}",
                position,
            )
        if match.lastgroup == "ws":
            position = match.end()
            continue
        text = match.group()
        if match.lastgroup == "ident":
            upper = text.upper()
            kind = "keyword" if upper in _KEYWORDS else "ident"
            tokens.append(Token(kind, upper if kind == "keyword" else text, position))
        elif match.lastgroup == "number":
            tokens.append(Token("number", text, position))
        else:
            tokens.append(Token("op", text, position))
        position = match.end()
    tokens.append(Token("eof", "", len(source)))
    return tokens


class _Parser:
    """Recursive-descent parser with explicit backtracking support."""

    def __init__(self, tokens: Sequence[Token], relations: List[Tuple[str, str]]):
        self._tokens = tokens
        self._index = 0
        # Filled while parsing FROM; needed to bind bare column names.
        self._relations = relations

    # -- token plumbing ------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._current
        if token.kind != "eof":
            self._index += 1
        return token

    def _check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self._current
        return token.kind == kind and (text is None or token.text == text)

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        if self._check(kind, text):
            return self._advance()
        token = self._current
        wanted = text if text is not None else kind
        raise ParseError(
            f"expected {wanted!r} but found {token.text or 'end of input'!r} "
            f"at offset {token.position}",
            token.position,
        )

    def _mark(self) -> int:
        return self._index

    def _reset(self, mark: int) -> None:
        self._index = mark

    # -- grammar: query ---------------------------------------------------------

    def parse_query(self, catalog: Optional[SensorCatalog]) -> JoinQuery:
        """Parse a full query (the grammar's start symbol)."""
        self._expect("keyword", "SELECT")
        star = self._accept("op", "*") is not None
        select_items: List[SelectItem] = []
        if not star:
            select_items.append(self._select_item())
            while self._accept("op", ","):
                select_items.append(self._select_item())
        self._expect("keyword", "FROM")
        self._from_list()
        where: Optional[Predicate] = None
        if self._accept("keyword", "WHERE"):
            where = self._predicate()
        mode = self._mode()
        self._expect("eof")
        if star:
            if catalog is None:
                raise ParseError(
                    "SELECT * requires a sensor catalogue to expand against; "
                    "pass catalog= to parse_query()"
                )
            for _, alias in self._relations:
                for name in catalog.names:
                    select_items.append(SelectItem(Column(alias, name)))
        query = JoinQuery(select_items, self._relations, where, mode)
        if catalog is not None:
            query.validate_attributes(catalog)
        return query

    def _select_item(self) -> SelectItem:
        payload: Expression | Aggregate
        token = self._current
        if token.kind == "keyword" and token.text in Aggregate.FUNCS:
            self._advance()
            self._expect("op", "(")
            if token.text == "COUNT" and self._accept("op", "*"):
                operand: Optional[Expression] = None
            else:
                operand = self._expression()
            self._expect("op", ")")
            payload = Aggregate(token.text, operand)
        else:
            payload = self._expression()
        label = None
        if self._accept("keyword", "AS"):
            label = self._expect("ident").text
        return SelectItem(payload, label)

    def _from_list(self) -> None:
        # Bare-column binding in the SELECT list used pre-scanned relations
        # (see parse_query); the authoritative parse rebuilds the list.
        self._relations.clear()
        self._from_relation()
        while self._accept("op", ","):
            self._from_relation()

    def _from_relation(self) -> None:
        name = self._expect("ident").text
        alias_token = self._accept("ident")
        alias = alias_token.text if alias_token is not None else name
        self._relations.append((name, alias))

    def _mode(self):
        if self._accept("keyword", "ONCE"):
            return Once()
        if self._accept("keyword", "SAMPLE"):
            self._expect("keyword", "PERIOD")
            number = self._expect("number")
            return SamplePeriod(float(number.text))
        token = self._current
        raise ParseError(
            f"expected ONCE or SAMPLE PERIOD at offset {token.position}", token.position
        )

    # -- grammar: predicates ------------------------------------------------------

    def _predicate(self) -> Predicate:
        parts = [self._and_term()]
        while self._accept("keyword", "OR"):
            parts.append(self._and_term())
        return parts[0] if len(parts) == 1 else Or(*parts)

    def _and_term(self) -> Predicate:
        parts = [self._not_term()]
        while self._accept("keyword", "AND"):
            parts.append(self._not_term())
        return parts[0] if len(parts) == 1 else And(*parts)

    def _not_term(self) -> Predicate:
        if self._accept("keyword", "NOT"):
            return Not(self._not_term())
        if self._check("op", "("):
            # Ambiguous: '(' may open a grouped predicate or an arithmetic
            # sub-expression of a comparison.  Try the predicate reading
            # first; on failure (or if a comparison operator follows the
            # closing paren) fall back to parsing a comparison.
            mark = self._mark()
            try:
                self._advance()  # consume '('
                inner = self._predicate()
                self._expect("op", ")")
                if self._current.kind == "op" and self._current.text in (
                    "<", "<=", ">", ">=", "=", "!=", "<>", "+", "-", "*", "/",
                ):
                    raise ParseError("grouped predicate followed by operator", None)
                return inner
            except ParseError:
                self._reset(mark)
        return self._comparison()

    def _comparison(self) -> Predicate:
        left = self._expression()
        token = self._current
        if token.kind == "op" and token.text in ("<", "<=", ">", ">=", "=", "!=", "<>"):
            self._advance()
            op = "!=" if token.text == "<>" else token.text
            right = self._expression()
            return Compare(op, left, right)
        raise ParseError(
            f"expected a comparison operator at offset {token.position}", token.position
        )

    # -- grammar: expressions -------------------------------------------------------

    def _expression(self) -> Expression:
        node = self._term()
        while True:
            if self._accept("op", "+"):
                node = Add(node, self._term())
            elif self._accept("op", "-"):
                node = Sub(node, self._term())
            else:
                return node

    def _term(self) -> Expression:
        node = self._factor()
        while True:
            if self._accept("op", "*"):
                node = Mul(node, self._factor())
            elif self._accept("op", "/"):
                node = Div(node, self._factor())
            else:
                return node

    def _factor(self) -> Expression:
        if self._accept("op", "-"):
            return Neg(self._factor())
        return self._atom()

    def _atom(self) -> Expression:
        token = self._current
        if token.kind == "number":
            self._advance()
            return Literal(float(token.text))
        if self._accept("op", "("):
            inner = self._expression()
            self._expect("op", ")")
            return inner
        if self._accept("op", "|"):
            inner = self._expression()
            self._expect("op", "|")
            return Abs(inner)
        if token.kind == "ident" or (token.kind == "keyword" and token.text in ("MIN", "MAX")):
            return self._column_or_call()
        raise ParseError(
            f"expected a value at offset {token.position}, found {token.text!r}",
            token.position,
        )

    def _column_or_call(self) -> Expression:
        name_token = self._advance()
        name = name_token.text
        if self._accept("op", "("):
            arguments = [self._expression()]
            while self._accept("op", ","):
                arguments.append(self._expression())
            self._expect("op", ")")
            return self._builtin(name, arguments, name_token.position)
        if self._accept("op", "."):
            attribute = self._expect("ident").text
            return Column(name, attribute)
        # Bare attribute: legal only with an unambiguous FROM clause.
        if len(self._relations) == 1:
            return Column(self._relations[0][1], name)
        raise ParseError(
            f"bare column {name!r} is ambiguous with {len(self._relations)} "
            f"relations in FROM; qualify it as alias.{name}",
            name_token.position,
        )

    def _builtin(self, name: str, arguments: List[Expression], position: int) -> Expression:
        lowered = name.lower()
        if lowered == "distance":
            if len(arguments) != 4:
                raise ParseError(
                    f"distance() takes 4 arguments (x1, y1, x2, y2), got {len(arguments)}",
                    position,
                )
            return Distance(*arguments)
        if lowered == "abs":
            if len(arguments) != 1:
                raise ParseError(f"abs() takes 1 argument, got {len(arguments)}", position)
            return Abs(arguments[0])
        raise ParseError(f"unknown function {name!r}", position)


def parse_query(source: str, catalog: Optional[SensorCatalog] = None) -> JoinQuery:
    """Parse the dialect into a :class:`~repro.query.query.JoinQuery`.

    Parameters
    ----------
    source:
        The query text (case-insensitive keywords).
    catalog:
        Optional sensor catalogue; when given, ``SELECT *`` is expanded
        against it and every referenced attribute is validated.

    Examples
    --------
    The paper's Q1::

        SELECT MIN(distance(A.x, A.y, B.x, B.y))
        FROM Sensors A, Sensors B
        WHERE A.temp - B.temp > 10.0
        ONCE
    """
    tokens = tokenize(source)
    # The FROM clause appears after the SELECT list, but bare-column binding
    # inside the SELECT list needs the relations.  Two passes: pre-scan for
    # FROM to collect (name, alias) pairs, then parse for real with that
    # knowledge seeded in (the real FROM parse rebuilds the same list).
    relations = _prescan_from(tokens)
    parser = _Parser(tokens, relations)
    return parser.parse_query(catalog)


def _prescan_from(tokens: Sequence[Token]) -> List[Tuple[str, str]]:
    """Locate the top-level FROM clause and collect its relation list."""
    depth = 0
    for index, token in enumerate(tokens):
        if token.kind == "op" and token.text == "(":
            depth += 1
        elif token.kind == "op" and token.text == ")":
            depth -= 1
        elif token.kind == "keyword" and token.text == "FROM" and depth == 0:
            scanner = _Parser(tokens, [])
            scanner._index = index + 1
            scanner._from_list()
            return scanner._relations
    raise ParseError("query has no FROM clause")
