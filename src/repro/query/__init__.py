"""Query layer: SQL dialect, expression AST, interval logic, join evaluation."""

from .evaluate import CellBounds, JoinResult, Row, conservative_semijoin, evaluate_join
from .expressions import (
    Abs,
    Add,
    Aggregate,
    And,
    Column,
    Compare,
    Distance,
    Div,
    Expression,
    Literal,
    Mul,
    Neg,
    Not,
    Or,
    Predicate,
    Sub,
)
from .intervals import Interval, TriBool
from .parser import parse_query, tokenize
from .query import JoinQuery, Once, SamplePeriod, SelectItem

__all__ = [
    "Abs",
    "Add",
    "Aggregate",
    "And",
    "CellBounds",
    "Column",
    "Compare",
    "Distance",
    "Div",
    "Expression",
    "Interval",
    "JoinQuery",
    "JoinResult",
    "Literal",
    "Mul",
    "Neg",
    "Not",
    "Once",
    "Or",
    "Predicate",
    "Row",
    "SamplePeriod",
    "SelectItem",
    "Sub",
    "TriBool",
    "conservative_semijoin",
    "evaluate_join",
    "parse_query",
    "tokenize",
]
