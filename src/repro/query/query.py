"""Query model: the bound form of a SENS-Join-processable query.

The problem statement (§III) fixes the query shape::

    SELECT R1.attrs, ..., Rn.attrs
    FROM Relation_1 R1, ..., Relation_n Rn
    WHERE preds(R1) AND ... AND preds(Rn)
      AND join-exprs(R1.join-attrs, ..., Rn.join-attrs)
    {SAMPLE PERIOD x | ONCE}

:class:`JoinQuery` holds the parsed form and derives the structure every
component downstream needs:

* the WHERE conjunction split into **selection predicates** (reference one
  alias — evaluated locally at each node, §IV-A line 8f) and **join
  predicates** (reference two or more aliases);
* the **join attributes** per alias (Definition 1: a join-attribute tuple is
  the projection of a tuple onto the join attributes);
* the **full-tuple attributes** per alias: join attributes plus whatever the
  SELECT list needs — this is what a node ships in the final phase, and its
  size vs. the join-attribute size is the paper's central
  "ratio join attributes / attributes overall" parameter (§VI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple, Union

from ..data.sensors import SensorCatalog
from ..errors import BindingError, QueryError
from .expressions import Aggregate, And, Column, ColumnRef, Expression, Predicate

__all__ = ["JoinQuery", "SelectItem", "Once", "SamplePeriod", "QueryMode"]


@dataclass(frozen=True)
class Once:
    """Snapshot execution: one result from the current network state."""

    def sql(self) -> str:
        """Render the clause."""
        return "ONCE"


@dataclass(frozen=True)
class SamplePeriod:
    """Continuous execution: an independent result every ``seconds``."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds <= 0:
            raise QueryError(f"SAMPLE PERIOD must be positive, got {self.seconds}")

    def sql(self) -> str:
        """Render the clause."""
        return f"SAMPLE PERIOD {self.seconds:g}"


QueryMode = Union[Once, SamplePeriod]


@dataclass(frozen=True)
class SelectItem:
    """One SELECT-list entry: a plain expression or an aggregate."""

    payload: Union[Expression, Aggregate]
    label: Optional[str] = None

    @property
    def is_aggregate(self) -> bool:
        """True for aggregate entries (Q1's ``MIN(distance(...))``)."""
        return isinstance(self.payload, Aggregate)

    @property
    def name(self) -> str:
        """Output column name (explicit label or the rendered expression)."""
        return self.label if self.label is not None else self.payload.sql()

    def sql(self) -> str:
        """Render the entry."""
        if self.label is not None:
            return f"{self.payload.sql()} AS {self.label}"
        return self.payload.sql()


def _flatten_conjuncts(predicate: Predicate) -> List[Predicate]:
    """Split a predicate tree at top-level ANDs."""
    if isinstance(predicate, And):
        result: List[Predicate] = []
        for part in predicate.parts:
            result.extend(_flatten_conjuncts(part))
        return result
    return [predicate]


def _aliases_of(columns: Set[ColumnRef]) -> Set[str]:
    return {alias for alias, _ in columns}


class JoinQuery:
    """A validated join query over sensor relations.

    Parameters
    ----------
    select:
        SELECT-list entries; either all aggregates or none (no GROUP BY in
        the dialect, matching the paper's queries).
    relations:
        ``(relation_name, alias)`` pairs from the FROM clause.  A self-join
        lists the same relation under two aliases (Q1/Q2).
    where:
        The full WHERE predicate, or None.
    mode:
        :class:`Once` or :class:`SamplePeriod`.
    """

    def __init__(
        self,
        select: Sequence[SelectItem],
        relations: Sequence[Tuple[str, str]],
        where: Optional[Predicate],
        mode: QueryMode = Once(),
    ):
        if not select:
            raise QueryError("SELECT list must not be empty")
        if len(relations) < 1:
            raise QueryError("FROM clause must name at least one relation")
        aliases = [alias for _, alias in relations]
        if len(set(aliases)) != len(aliases):
            raise QueryError(f"duplicate aliases in FROM clause: {aliases}")
        aggregate_flags = {item.is_aggregate for item in select}
        if aggregate_flags == {True, False}:
            raise QueryError(
                "mixing aggregate and plain SELECT entries requires GROUP BY, "
                "which the dialect does not support"
            )
        names = [item.name for item in select]
        duplicates = sorted({name for name in names if names.count(name) > 1})
        if duplicates:
            raise QueryError(
                f"duplicate SELECT output name(s) {duplicates}; "
                "label colliding expressions with AS"
            )
        self.select: Tuple[SelectItem, ...] = tuple(select)
        self.relations: Tuple[Tuple[str, str], ...] = tuple(relations)
        self.where = where
        self.mode = mode
        self._conjuncts = _flatten_conjuncts(where) if where is not None else []
        self._check_alias_references()

    # -- validation ------------------------------------------------------------

    def _check_alias_references(self) -> None:
        known = set(self.aliases)
        referenced: Set[ColumnRef] = set()
        for item in self.select:
            referenced |= item.payload.columns()
        if self.where is not None:
            referenced |= self.where.columns()
        unknown = _aliases_of(referenced) - known
        if unknown:
            raise BindingError(
                f"unknown alias(es) {sorted(unknown)}; FROM clause defines {sorted(known)}"
            )

    def validate_attributes(self, catalog: SensorCatalog) -> None:
        """Check every referenced attribute against a sensor catalogue."""
        referenced: Set[ColumnRef] = set()
        for item in self.select:
            referenced |= item.payload.columns()
        if self.where is not None:
            referenced |= self.where.columns()
        for _, attribute in referenced:
            if attribute not in catalog:
                raise BindingError(
                    f"unknown attribute {attribute!r}; catalogue has {catalog.names}"
                )

    # -- basic properties ---------------------------------------------------------

    @property
    def aliases(self) -> List[str]:
        """Aliases in FROM-clause order."""
        return [alias for _, alias in self.relations]

    def relation_of(self, alias: str) -> str:
        """The relation name bound to ``alias``."""
        for name, candidate in self.relations:
            if candidate == alias:
                return name
        raise BindingError(f"unknown alias {alias!r}")

    @property
    def is_self_join(self) -> bool:
        """True when the same relation appears under several aliases."""
        names = [name for name, _ in self.relations]
        return len(set(names)) < len(names)

    @property
    def is_aggregate(self) -> bool:
        """True when the SELECT list aggregates the join result."""
        return bool(self.select) and self.select[0].is_aggregate

    # -- predicate split (§IV-A) -----------------------------------------------

    @property
    def conjuncts(self) -> List[Predicate]:
        """Top-level AND-split of the WHERE clause."""
        return list(self._conjuncts)

    def selection_predicates(self, alias: str) -> List[Predicate]:
        """Conjuncts that only reference ``alias`` (evaluated at the node)."""
        result = []
        for conjunct in self._conjuncts:
            referenced = _aliases_of(conjunct.columns())
            if referenced == {alias}:
                result.append(conjunct)
        return result

    @property
    def join_predicates(self) -> List[Predicate]:
        """Conjuncts that reference two or more aliases."""
        return [
            conjunct
            for conjunct in self._conjuncts
            if len(_aliases_of(conjunct.columns())) >= 2
        ]

    def require_join(self) -> None:
        """Raise unless this is a genuine join (≥2 relations + join exprs)."""
        if len(self.relations) < 2:
            raise QueryError("a join query needs at least two relations in FROM")
        if not self.join_predicates:
            raise QueryError(
                "no join predicate connects the relations (cross products "
                "are not supported by the join methods)"
            )

    # -- attribute sets -----------------------------------------------------------

    def join_attributes(self, alias: str) -> List[str]:
        """Attributes of ``alias`` appearing in join predicates (Def. 1)."""
        attributes: Set[str] = set()
        for predicate in self.join_predicates:
            for ref_alias, attribute in predicate.columns():
                if ref_alias == alias:
                    attributes.add(attribute)
        return sorted(attributes)

    def select_attributes(self, alias: str) -> List[str]:
        """Attributes of ``alias`` the SELECT list needs."""
        attributes: Set[str] = set()
        for item in self.select:
            for ref_alias, attribute in item.payload.columns():
                if ref_alias == alias:
                    attributes.add(attribute)
        return sorted(attributes)

    def full_tuple_attributes(self, alias: str) -> List[str]:
        """What a node must ship for the final result: select ∪ join attrs.

        Selection-predicate-only attributes are *not* included: they are
        evaluated locally and never leave the node.
        """
        return sorted(set(self.select_attributes(alias)) | set(self.join_attributes(alias)))

    def join_attribute_ratio(self, alias: str) -> float:
        """The paper's central parameter: |join attrs| / |full tuple attrs|."""
        full = self.full_tuple_attributes(alias)
        if not full:
            return 0.0
        return len(self.join_attributes(alias)) / len(full)

    # -- rendering ---------------------------------------------------------------

    def sql(self) -> str:
        """Round-trippable SQL rendering."""
        select_clause = ", ".join(item.sql() for item in self.select)
        from_clause = ", ".join(f"{name} {alias}" for name, alias in self.relations)
        parts = [f"SELECT {select_clause}", f"FROM {from_clause}"]
        if self.where is not None:
            parts.append(f"WHERE {self.where.sql()}")
        parts.append(self.mode.sql())
        return "\n".join(parts)

    def __repr__(self) -> str:
        return f"<JoinQuery {self.sql()!r}>"
