"""Expression AST with three evaluation modes.

The problem statement (§III) allows "join conditions that are arbitrary
expressions over the join attributes" — theta-joins, similarity joins,
distance predicates.  Every expression node therefore supports three
evaluators, all used by the system:

``evaluate(env)``
    Exact scalar evaluation over one tuple combination; ``env`` maps
    ``(alias, attribute)`` to a float.  Used in tests and for readability.
``values(env)``
    Exact *vectorised* evaluation; ``env`` maps columns to numpy arrays (all
    of one broadcastable shape).  The base station uses this to join
    thousands of tuples in bulk.
``bounds(env)`` / ``masks(env)``
    Conservative evaluation over quantization cells.  Numeric nodes map
    interval environments to intervals (scalar: :class:`Interval`;
    vectorised: ``(lo, hi)`` array pairs); predicate nodes return a
    :class:`TriBool` (scalar) or a pair of boolean masks ``(possible,
    definite)`` (vectorised).  ``possible`` is the filter-construction
    criterion: a cell pair is pruned only when the predicate cannot hold
    anywhere inside the cells.

The invariant connecting the modes (checked by property tests): for any
environment of point intervals, ``bounds`` degenerates to ``evaluate``, and
for any environment of true intervals, the exact result of any contained
point env lies within ``bounds`` / is consistent with ``masks``.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence, Set, Tuple

import numpy as np

from ..errors import EvaluationError, QueryError
from .intervals import Interval, TriBool

__all__ = [
    "Expression",
    "Column",
    "Literal",
    "Neg",
    "Abs",
    "Add",
    "Sub",
    "Mul",
    "Div",
    "Distance",
    "Predicate",
    "Compare",
    "And",
    "Or",
    "Not",
    "Aggregate",
    "ColumnRef",
    "ScalarEnv",
    "ArrayEnv",
    "IntervalEnv",
    "BoundsEnv",
]

#: A column is identified by (relation alias, attribute name).
ColumnRef = Tuple[str, str]
ScalarEnv = Mapping[ColumnRef, float]
ArrayEnv = Mapping[ColumnRef, np.ndarray]
IntervalEnv = Mapping[ColumnRef, Interval]
#: Vectorised interval environment: column -> (lo array, hi array).
BoundsEnv = Mapping[ColumnRef, Tuple[np.ndarray, np.ndarray]]


# ---------------------------------------------------------------------------
# Numeric expressions
# ---------------------------------------------------------------------------


class Expression:
    """Base class of numeric expression nodes."""

    def evaluate(self, env: ScalarEnv) -> float:
        """Exact scalar value under ``env``."""
        raise NotImplementedError

    def values(self, env: ArrayEnv) -> np.ndarray:
        """Exact vectorised values under an array environment."""
        raise NotImplementedError

    def bounds(self, env: IntervalEnv) -> Interval:
        """Conservative interval under an interval environment."""
        raise NotImplementedError

    def bounds_arrays(self, env: BoundsEnv) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised conservative (lo, hi) arrays."""
        raise NotImplementedError

    def columns(self) -> Set[ColumnRef]:
        """Every (alias, attribute) the expression references."""
        raise NotImplementedError

    def sql(self) -> str:
        """Round-trippable SQL-dialect rendering."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.sql()}>"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Expression) and self.sql() == other.sql()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.sql()))


class Column(Expression):
    """A reference like ``A.temp``."""

    def __init__(self, alias: str, name: str):
        if not alias or not name:
            raise QueryError("column alias and name must be non-empty")
        self.alias = alias
        self.name = name

    @property
    def ref(self) -> ColumnRef:
        """The (alias, attribute) pair."""
        return (self.alias, self.name)

    def evaluate(self, env: ScalarEnv) -> float:
        try:
            return env[self.ref]
        except KeyError:
            raise EvaluationError(f"no value bound for column {self.sql()}") from None

    def values(self, env: ArrayEnv) -> np.ndarray:
        try:
            return env[self.ref]
        except KeyError:
            raise EvaluationError(f"no values bound for column {self.sql()}") from None

    def bounds(self, env: IntervalEnv) -> Interval:
        try:
            return env[self.ref]
        except KeyError:
            raise EvaluationError(f"no interval bound for column {self.sql()}") from None

    def bounds_arrays(self, env: BoundsEnv) -> Tuple[np.ndarray, np.ndarray]:
        try:
            return env[self.ref]
        except KeyError:
            raise EvaluationError(f"no bounds bound for column {self.sql()}") from None

    def columns(self) -> Set[ColumnRef]:
        return {self.ref}

    def sql(self) -> str:
        return f"{self.alias}.{self.name}"


class Literal(Expression):
    """A numeric constant."""

    def __init__(self, value: float):
        self.value = float(value)

    def evaluate(self, env: ScalarEnv) -> float:
        return self.value

    def values(self, env: ArrayEnv) -> np.ndarray:
        return np.asarray(self.value)

    def bounds(self, env: IntervalEnv) -> Interval:
        return Interval.point(self.value)

    def bounds_arrays(self, env: BoundsEnv) -> Tuple[np.ndarray, np.ndarray]:
        value = np.asarray(self.value)
        return value, value

    def columns(self) -> Set[ColumnRef]:
        return set()

    def sql(self) -> str:
        if self.value == int(self.value):
            return str(int(self.value))
        return repr(self.value)


class Neg(Expression):
    """Unary minus."""

    def __init__(self, operand: Expression):
        self.operand = operand

    def evaluate(self, env: ScalarEnv) -> float:
        return -self.operand.evaluate(env)

    def values(self, env: ArrayEnv) -> np.ndarray:
        return -self.operand.values(env)

    def bounds(self, env: IntervalEnv) -> Interval:
        return -self.operand.bounds(env)

    def bounds_arrays(self, env: BoundsEnv) -> Tuple[np.ndarray, np.ndarray]:
        lo, hi = self.operand.bounds_arrays(env)
        return -hi, -lo

    def columns(self) -> Set[ColumnRef]:
        return self.operand.columns()

    def sql(self) -> str:
        return f"-({self.operand.sql()})"


class Abs(Expression):
    """Absolute value; both ``ABS(e)`` and the paper's ``|e|`` parse here."""

    def __init__(self, operand: Expression):
        self.operand = operand

    def evaluate(self, env: ScalarEnv) -> float:
        return abs(self.operand.evaluate(env))

    def values(self, env: ArrayEnv) -> np.ndarray:
        return np.abs(self.operand.values(env))

    def bounds(self, env: IntervalEnv) -> Interval:
        return self.operand.bounds(env).abs()

    def bounds_arrays(self, env: BoundsEnv) -> Tuple[np.ndarray, np.ndarray]:
        lo, hi = self.operand.bounds_arrays(env)
        new_lo = np.where(lo >= 0, lo, np.where(hi <= 0, -hi, 0.0))
        new_hi = np.maximum(np.abs(lo), np.abs(hi))
        return new_lo, new_hi

    def columns(self) -> Set[ColumnRef]:
        return self.operand.columns()

    def sql(self) -> str:
        return f"ABS({self.operand.sql()})"


class _Binary(Expression):
    """Shared plumbing for binary arithmetic nodes."""

    symbol = "?"

    def __init__(self, left: Expression, right: Expression):
        self.left = left
        self.right = right

    def columns(self) -> Set[ColumnRef]:
        return self.left.columns() | self.right.columns()

    def sql(self) -> str:
        return f"({self.left.sql()} {self.symbol} {self.right.sql()})"


class Add(_Binary):
    """Addition."""

    symbol = "+"

    def evaluate(self, env: ScalarEnv) -> float:
        return self.left.evaluate(env) + self.right.evaluate(env)

    def values(self, env: ArrayEnv) -> np.ndarray:
        return self.left.values(env) + self.right.values(env)

    def bounds(self, env: IntervalEnv) -> Interval:
        return self.left.bounds(env) + self.right.bounds(env)

    def bounds_arrays(self, env: BoundsEnv) -> Tuple[np.ndarray, np.ndarray]:
        llo, lhi = self.left.bounds_arrays(env)
        rlo, rhi = self.right.bounds_arrays(env)
        return llo + rlo, lhi + rhi


class Sub(_Binary):
    """Subtraction."""

    symbol = "-"

    def evaluate(self, env: ScalarEnv) -> float:
        return self.left.evaluate(env) - self.right.evaluate(env)

    def values(self, env: ArrayEnv) -> np.ndarray:
        return self.left.values(env) - self.right.values(env)

    def bounds(self, env: IntervalEnv) -> Interval:
        return self.left.bounds(env) - self.right.bounds(env)

    def bounds_arrays(self, env: BoundsEnv) -> Tuple[np.ndarray, np.ndarray]:
        llo, lhi = self.left.bounds_arrays(env)
        rlo, rhi = self.right.bounds_arrays(env)
        return llo - rhi, lhi - rlo


class Mul(_Binary):
    """Multiplication."""

    symbol = "*"

    def evaluate(self, env: ScalarEnv) -> float:
        return self.left.evaluate(env) * self.right.evaluate(env)

    def values(self, env: ArrayEnv) -> np.ndarray:
        return self.left.values(env) * self.right.values(env)

    def bounds(self, env: IntervalEnv) -> Interval:
        return self.left.bounds(env) * self.right.bounds(env)

    def bounds_arrays(self, env: BoundsEnv) -> Tuple[np.ndarray, np.ndarray]:
        llo, lhi = self.left.bounds_arrays(env)
        rlo, rhi = self.right.bounds_arrays(env)
        candidates = np.stack(
            np.broadcast_arrays(llo * rlo, llo * rhi, lhi * rlo, lhi * rhi)
        )
        return candidates.min(axis=0), candidates.max(axis=0)


class Div(_Binary):
    """Division; interval bounds blow up to +-inf across zero denominators."""

    symbol = "/"

    def evaluate(self, env: ScalarEnv) -> float:
        denominator = self.right.evaluate(env)
        if denominator == 0:
            raise EvaluationError(f"division by zero in {self.sql()}")
        return self.left.evaluate(env) / denominator

    def values(self, env: ArrayEnv) -> np.ndarray:
        denominator = self.right.values(env)
        if np.any(denominator == 0):
            raise EvaluationError(f"division by zero in {self.sql()}")
        return self.left.values(env) / denominator

    def bounds(self, env: IntervalEnv) -> Interval:
        return self.left.bounds(env) / self.right.bounds(env)

    def bounds_arrays(self, env: BoundsEnv) -> Tuple[np.ndarray, np.ndarray]:
        llo, lhi = self.left.bounds_arrays(env)
        rlo, rhi = self.right.bounds_arrays(env)
        spans_zero = (rlo <= 0) & (rhi >= 0)
        # Where the denominator avoids zero: reciprocal then multiply.
        with np.errstate(divide="ignore"):
            inv_lo = np.where(spans_zero, 1.0, 1.0 / np.where(spans_zero, 1.0, rhi))
            inv_hi = np.where(spans_zero, 1.0, 1.0 / np.where(spans_zero, 1.0, rlo))
        candidates = np.stack(
            np.broadcast_arrays(llo * inv_lo, llo * inv_hi, lhi * inv_lo, lhi * inv_hi)
        )
        lo = candidates.min(axis=0)
        hi = candidates.max(axis=0)
        lo = np.where(spans_zero, -np.inf, lo)
        hi = np.where(spans_zero, np.inf, hi)
        return np.broadcast_to(lo, np.broadcast_shapes(lo.shape, hi.shape)).copy(), np.broadcast_to(
            hi, np.broadcast_shapes(lo.shape, hi.shape)
        ).copy()


class Distance(Expression):
    """``distance(x1, y1, x2, y2)`` — Euclidean distance (queries Q1/Q2)."""

    def __init__(self, x1: Expression, y1: Expression, x2: Expression, y2: Expression):
        self.x1, self.y1, self.x2, self.y2 = x1, y1, x2, y2

    def _parts(self) -> Sequence[Expression]:
        return (self.x1, self.y1, self.x2, self.y2)

    def evaluate(self, env: ScalarEnv) -> float:
        dx = self.x1.evaluate(env) - self.x2.evaluate(env)
        dy = self.y1.evaluate(env) - self.y2.evaluate(env)
        return math.hypot(dx, dy)

    def values(self, env: ArrayEnv) -> np.ndarray:
        dx = self.x1.values(env) - self.x2.values(env)
        dy = self.y1.values(env) - self.y2.values(env)
        return np.hypot(dx, dy)

    def bounds(self, env: IntervalEnv) -> Interval:
        return Interval.distance(
            self.x1.bounds(env), self.y1.bounds(env), self.x2.bounds(env), self.y2.bounds(env)
        )

    def bounds_arrays(self, env: BoundsEnv) -> Tuple[np.ndarray, np.ndarray]:
        def axis_square(a: Expression, b: Expression) -> Tuple[np.ndarray, np.ndarray]:
            alo, ahi = a.bounds_arrays(env)
            blo, bhi = b.bounds_arrays(env)
            dlo = alo - bhi
            dhi = ahi - blo
            sq_lo = np.where(dlo >= 0, dlo * dlo, np.where(dhi <= 0, dhi * dhi, 0.0))
            sq_hi = np.maximum(dlo * dlo, dhi * dhi)
            return sq_lo, sq_hi

        x_lo, x_hi = axis_square(self.x1, self.x2)
        y_lo, y_hi = axis_square(self.y1, self.y2)
        return np.sqrt(x_lo + y_lo), np.sqrt(x_hi + y_hi)

    def columns(self) -> Set[ColumnRef]:
        result: Set[ColumnRef] = set()
        for part in self._parts():
            result |= part.columns()
        return result

    def sql(self) -> str:
        inner = ", ".join(part.sql() for part in self._parts())
        return f"distance({inner})"


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------


class Predicate:
    """Base class of boolean nodes."""

    def evaluate(self, env: ScalarEnv) -> bool:
        """Exact truth value under a scalar environment."""
        raise NotImplementedError

    def values(self, env: ArrayEnv) -> np.ndarray:
        """Exact vectorised truth values (bool array)."""
        raise NotImplementedError

    def tribool(self, env: IntervalEnv) -> TriBool:
        """Three-valued outcome under an interval environment."""
        raise NotImplementedError

    def masks(self, env: BoundsEnv) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised ``(possible, definite)`` boolean masks."""
        raise NotImplementedError

    def columns(self) -> Set[ColumnRef]:
        """Every column referenced."""
        raise NotImplementedError

    def sql(self) -> str:
        """Round-trippable rendering."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.sql()}>"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Predicate) and self.sql() == other.sql()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.sql()))


class Compare(Predicate):
    """A comparison ``left OP right`` with OP in <, <=, >, >=, =, !=."""

    OPS = ("<", "<=", ">", ">=", "=", "!=")

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in self.OPS:
            raise QueryError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, env: ScalarEnv) -> bool:
        lhs = self.left.evaluate(env)
        rhs = self.right.evaluate(env)
        return self._compare_scalar(lhs, rhs)

    def _compare_scalar(self, lhs: float, rhs: float) -> bool:
        if self.op == "<":
            return lhs < rhs
        if self.op == "<=":
            return lhs <= rhs
        if self.op == ">":
            return lhs > rhs
        if self.op == ">=":
            return lhs >= rhs
        if self.op == "=":
            return lhs == rhs
        return lhs != rhs

    def values(self, env: ArrayEnv) -> np.ndarray:
        lhs = self.left.values(env)
        rhs = self.right.values(env)
        if self.op == "<":
            return lhs < rhs
        if self.op == "<=":
            return lhs <= rhs
        if self.op == ">":
            return lhs > rhs
        if self.op == ">=":
            return lhs >= rhs
        if self.op == "=":
            return lhs == rhs
        return lhs != rhs

    def tribool(self, env: IntervalEnv) -> TriBool:
        lhs = self.left.bounds(env)
        rhs = self.right.bounds(env)
        if self.op == "<":
            return lhs.lt(rhs)
        if self.op == "<=":
            return lhs.le(rhs)
        if self.op == ">":
            return lhs.gt(rhs)
        if self.op == ">=":
            return lhs.ge(rhs)
        if self.op == "=":
            return lhs.eq(rhs)
        return lhs.ne(rhs)

    def masks(self, env: BoundsEnv) -> Tuple[np.ndarray, np.ndarray]:
        llo, lhi = self.left.bounds_arrays(env)
        rlo, rhi = self.right.bounds_arrays(env)
        if self.op == "<":
            possible = llo < rhi
            definite = lhi < rlo
        elif self.op == "<=":
            possible = llo <= rhi
            definite = lhi <= rlo
        elif self.op == ">":
            possible = lhi > rlo
            definite = llo > rhi
        elif self.op == ">=":
            possible = lhi >= rlo
            definite = llo >= rhi
        elif self.op == "=":
            possible = (llo <= rhi) & (rlo <= lhi)
            definite = (llo == lhi) & (rlo == rhi) & (llo == rlo)
        else:  # !=
            possible = ~((llo == lhi) & (rlo == rhi) & (llo == rlo))
            definite = (lhi < rlo) | (rhi < llo)
        possible, definite = np.broadcast_arrays(possible, definite)
        return possible.copy(), definite.copy()

    def columns(self) -> Set[ColumnRef]:
        return self.left.columns() | self.right.columns()

    def sql(self) -> str:
        return f"{self.left.sql()} {self.op} {self.right.sql()}"


class And(Predicate):
    """Conjunction of two or more predicates."""

    def __init__(self, *parts: Predicate):
        if len(parts) < 2:
            raise QueryError("And needs at least two operands")
        self.parts = tuple(parts)

    def evaluate(self, env: ScalarEnv) -> bool:
        return all(part.evaluate(env) for part in self.parts)

    def values(self, env: ArrayEnv) -> np.ndarray:
        result = self.parts[0].values(env)
        for part in self.parts[1:]:
            result = result & part.values(env)
        return result

    def tribool(self, env: IntervalEnv) -> TriBool:
        result = self.parts[0].tribool(env)
        for part in self.parts[1:]:
            result = result & part.tribool(env)
        return result

    def masks(self, env: BoundsEnv) -> Tuple[np.ndarray, np.ndarray]:
        possible, definite = self.parts[0].masks(env)
        for part in self.parts[1:]:
            p, d = part.masks(env)
            possible = possible & p
            definite = definite & d
        return possible, definite

    def columns(self) -> Set[ColumnRef]:
        result: Set[ColumnRef] = set()
        for part in self.parts:
            result |= part.columns()
        return result

    def sql(self) -> str:
        return " AND ".join(
            f"({part.sql()})" if isinstance(part, Or) else part.sql() for part in self.parts
        )


class Or(Predicate):
    """Disjunction of two or more predicates."""

    def __init__(self, *parts: Predicate):
        if len(parts) < 2:
            raise QueryError("Or needs at least two operands")
        self.parts = tuple(parts)

    def evaluate(self, env: ScalarEnv) -> bool:
        return any(part.evaluate(env) for part in self.parts)

    def values(self, env: ArrayEnv) -> np.ndarray:
        result = self.parts[0].values(env)
        for part in self.parts[1:]:
            result = result | part.values(env)
        return result

    def tribool(self, env: IntervalEnv) -> TriBool:
        result = self.parts[0].tribool(env)
        for part in self.parts[1:]:
            result = result | part.tribool(env)
        return result

    def masks(self, env: BoundsEnv) -> Tuple[np.ndarray, np.ndarray]:
        possible, definite = self.parts[0].masks(env)
        for part in self.parts[1:]:
            p, d = part.masks(env)
            possible = possible | p
            definite = definite | d
        return possible, definite

    def columns(self) -> Set[ColumnRef]:
        result: Set[ColumnRef] = set()
        for part in self.parts:
            result |= part.columns()
        return result

    def sql(self) -> str:
        return " OR ".join(part.sql() for part in self.parts)


class Not(Predicate):
    """Logical negation."""

    def __init__(self, operand: Predicate):
        self.operand = operand

    def evaluate(self, env: ScalarEnv) -> bool:
        return not self.operand.evaluate(env)

    def values(self, env: ArrayEnv) -> np.ndarray:
        return ~self.operand.values(env)

    def tribool(self, env: IntervalEnv) -> TriBool:
        return self.operand.tribool(env).negate()

    def masks(self, env: BoundsEnv) -> Tuple[np.ndarray, np.ndarray]:
        possible, definite = self.operand.masks(env)
        return ~definite, ~possible

    def columns(self) -> Set[ColumnRef]:
        return self.operand.columns()

    def sql(self) -> str:
        return f"NOT ({self.operand.sql()})"


# ---------------------------------------------------------------------------
# Aggregates (SELECT list only)
# ---------------------------------------------------------------------------


class Aggregate:
    """An aggregate over the join result, e.g. ``MIN(distance(...))`` (Q1).

    Aggregates never appear inside WHERE; they reduce the final result rows
    at the base station.  ``COUNT`` accepts ``*`` (operand ``None``).
    """

    FUNCS = ("MIN", "MAX", "AVG", "SUM", "COUNT")

    def __init__(self, func: str, operand: Expression | None):
        func = func.upper()
        if func not in self.FUNCS:
            raise QueryError(f"unknown aggregate function {func!r}")
        if operand is None and func != "COUNT":
            raise QueryError(f"{func} requires an operand ({func}(*) is not valid)")
        self.func = func
        self.operand = operand

    def apply(self, per_row_values: np.ndarray | Sequence[float], row_count: int) -> float:
        """Reduce the per-row expression values of the join result."""
        if self.func == "COUNT":
            return float(row_count)
        data = np.asarray(per_row_values, dtype=float)
        if data.size == 0:
            raise EvaluationError(f"{self.func} over an empty join result")
        if self.func == "MIN":
            return float(data.min())
        if self.func == "MAX":
            return float(data.max())
        if self.func == "AVG":
            return float(data.mean())
        return float(data.sum())

    def columns(self) -> Set[ColumnRef]:
        """Columns referenced by the operand (empty for COUNT(*))."""
        return self.operand.columns() if self.operand is not None else set()

    def sql(self) -> str:
        """Round-trippable rendering."""
        inner = "*" if self.operand is None else self.operand.sql()
        return f"{self.func}({inner})"

    def __repr__(self) -> str:
        return f"<Aggregate {self.sql()}>"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Aggregate) and self.sql() == other.sql()

    def __hash__(self) -> int:
        return hash(("Aggregate", self.sql()))
