"""Seeded workload generators for the multi-query broker.

Three classic arrival models drive the ``concurrency_study`` experiment:

* **Poisson** — memoryless arrivals at a mean rate (exponential gaps), the
  standard open-system model;
* **bursty on/off** — arrivals only during ON windows, at a rate boosted so
  the long-run mean matches; models diurnal or alarm-driven load where many
  queries hit the broker nearly at once (the case work sharing exists for);
* **Zipf query popularity** — which query *template* each arrival draws is
  Zipf-distributed, so a few hot templates dominate, maximizing the chance
  that co-admitted queries share a quantized join-attribute domain.

Everything is driven by :class:`random.Random` seeded from explicit string
keys (stable across processes and platforms — ``random.Random(str)`` seeds
via a hash of the bytes, not ``PYTHONHASHSEED``), so one ``(spec, templates)``
pair always yields the identical request stream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from ..query.query import JoinQuery

__all__ = [
    "QueryRequest",
    "WorkloadSpec",
    "poisson_arrivals",
    "bursty_arrivals",
    "zipf_weights",
    "generate_workload",
]

WORKLOAD_KINDS = ("poisson", "bursty")


@dataclass(frozen=True)
class QueryRequest:
    """One query arriving at the broker.

    ``query_id`` is the arrival index (unique within a workload),
    ``arrival_s`` the simulated arrival time, ``template_index`` which
    template of the pool the Zipf draw picked.
    """

    query_id: int
    arrival_s: float
    template_index: int
    query: JoinQuery


@dataclass(frozen=True)
class WorkloadSpec:
    """Fully pinned workload description (JSON-clean, hashable).

    ``rate_hz`` is the long-run mean arrival rate for both kinds; the
    bursty generator compresses the same mean load into ON windows of
    ``burst_on_s`` seconds separated by silent ``burst_off_s`` gaps.
    ``zipf_s`` is the popularity skew (0 = uniform template choice).
    """

    kind: str = "poisson"
    rate_hz: float = 0.05
    count: int = 16
    seed: int = 0
    zipf_s: float = 1.1
    burst_on_s: float = 30.0
    burst_off_s: float = 120.0

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise ValueError(
                f"unknown workload kind {self.kind!r}; known: {WORKLOAD_KINDS}"
            )
        if self.rate_hz <= 0:
            raise ValueError(f"arrival rate must be positive: {self.rate_hz}")
        if self.count < 1:
            raise ValueError(f"need at least one query: {self.count}")
        if self.zipf_s < 0:
            raise ValueError(f"negative Zipf skew: {self.zipf_s}")
        if self.burst_on_s <= 0 or self.burst_off_s < 0:
            raise ValueError("burst windows: on > 0 and off >= 0 required")


def poisson_arrivals(rate_hz: float, count: int, seed: int) -> List[float]:
    """``count`` Poisson-process arrival times at mean rate ``rate_hz``."""
    if rate_hz <= 0:
        raise ValueError(f"arrival rate must be positive: {rate_hz}")
    if count < 0:
        raise ValueError(f"negative count: {count}")
    rng = random.Random(f"poisson-arrivals-{seed}")
    clock = 0.0
    arrivals = []
    for _ in range(count):
        clock += rng.expovariate(rate_hz)
        arrivals.append(clock)
    return arrivals


def bursty_arrivals(
    rate_hz: float,
    count: int,
    seed: int,
    burst_on_s: float = 30.0,
    burst_off_s: float = 120.0,
) -> List[float]:
    """On/off arrivals: silent gaps, then dense bursts at a boosted rate.

    The ON-window rate is scaled by ``(on + off) / on`` so the long-run
    mean still equals ``rate_hz`` — the same offered load as the Poisson
    model, just clumped.  Arrival times that would fall past an ON window's
    end carry over into the next window.
    """
    if rate_hz <= 0:
        raise ValueError(f"arrival rate must be positive: {rate_hz}")
    if count < 0:
        raise ValueError(f"negative count: {count}")
    if burst_on_s <= 0 or burst_off_s < 0:
        raise ValueError("burst windows: on > 0 and off >= 0 required")
    rng = random.Random(f"bursty-arrivals-{seed}")
    period = burst_on_s + burst_off_s
    burst_rate = rate_hz * period / burst_on_s
    window = 0  # index of the ON window we are currently filling
    offset = 0.0  # position inside the current ON window
    arrivals = []
    for _ in range(count):
        offset += rng.expovariate(burst_rate)
        while offset >= burst_on_s:
            offset -= burst_on_s
            window += 1
        arrivals.append(window * period + offset)
    return arrivals


def zipf_weights(n: int, s: float) -> List[float]:
    """Normalized Zipf popularity weights for ``n`` ranks (rank 1 hottest)."""
    if n < 1:
        raise ValueError(f"need at least one rank: {n}")
    if s < 0:
        raise ValueError(f"negative skew: {s}")
    raw = [1.0 / (rank**s) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def _zipf_pick(rng: random.Random, cumulative: Sequence[float]) -> int:
    u = rng.random()
    for index, bound in enumerate(cumulative):
        if u < bound:
            return index
    return len(cumulative) - 1


def generate_workload(
    spec: WorkloadSpec, templates: Sequence[JoinQuery]
) -> List[QueryRequest]:
    """The request stream: seeded arrivals + Zipf-popular template choices.

    Template popularity follows each template's position in ``templates``
    (index 0 is the hottest).  The arrival clock and the popularity draws
    use independent seeded streams, so changing the template pool size
    never perturbs the arrival times.
    """
    if not templates:
        raise ValueError("need at least one query template")
    if spec.kind == "poisson":
        arrivals = poisson_arrivals(spec.rate_hz, spec.count, spec.seed)
    else:
        arrivals = bursty_arrivals(
            spec.rate_hz, spec.count, spec.seed, spec.burst_on_s, spec.burst_off_s
        )
    weights = zipf_weights(len(templates), spec.zipf_s)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w
        cumulative.append(acc)
    rng = random.Random(f"{spec.kind}-popularity-{spec.seed}")
    requests = []
    for query_id, arrival in enumerate(arrivals):
        index = _zipf_pick(rng, cumulative)
        requests.append(
            QueryRequest(
                query_id=query_id,
                arrival_s=arrival,
                template_index=index,
                query=templates[index],
            )
        )
    return requests
