"""Multi-query service layer: broker, admission, work sharing, workloads.

The paper evaluates SENS-Join one query at a time (§III inputs a single
query at the base station).  This package is the scale-out extension the
ROADMAP's "heavy traffic" north star asks for: a :class:`QueryBroker` that
admits many concurrent queries against one deployment, batches their
phase-1a collection rounds, composes their join filters over shared
quantized domains, piggybacks filter dissemination, and reports per-query
latency percentiles plus network-wide energy amortization.

See ``docs/service.md`` for the architecture and sharing rules.
"""

from .broker import (
    BrokerConfig,
    BrokerReport,
    DeadlinePolicy,
    QueryBroker,
    QueryOutcome,
    sharing_signature,
)
from .workloads import (
    QueryRequest,
    WorkloadSpec,
    bursty_arrivals,
    generate_workload,
    poisson_arrivals,
    zipf_weights,
)

__all__ = [
    "BrokerConfig",
    "BrokerReport",
    "DeadlinePolicy",
    "QueryBroker",
    "QueryOutcome",
    "sharing_signature",
    "QueryRequest",
    "WorkloadSpec",
    "poisson_arrivals",
    "bursty_arrivals",
    "zipf_weights",
    "generate_workload",
]
