"""The concurrent multi-query broker: admission, batching, work sharing.

The paper runs one query at a time; the broker runs *many* against one
deployment and recovers the redundancy between them:

1.  **Admission.**  Requests queue FIFO by arrival time.  When the network
    is free, the broker admits every already-arrived request up to the
    configured ``concurrency`` limit into one *batch* — one network epoch.

2.  **Share groups.**  A batch is partitioned by
    :func:`sharing_signature`: queries agreeing on aliases, relations,
    join attributes, full-tuple attributes and selection predicates (i.e.
    differing at most in the join predicate) share one quantized domain —
    their phase-1a traffic is *identical*, so the group runs
    Join-Attribute-Collection **once**.  From the one collected point set
    the base station builds each member query's join filter and unites
    them (:func:`~repro.joins.filterbuild.compose_filters`) into a single
    conservative filter: a superset of every per-query filter, so the
    exactness argument of §IV survives — the final join per query discards
    all false positives the wider filter lets through.

3.  **Piggybacked dissemination.**  The composed filters of *different*
    groups ride the same pre-order wave: at each node every group prunes
    its own filter against its SubtreeJoinAtts (Selective Filter
    Forwarding, per group), and whatever survives is concatenated — plus a
    small per-filter header — into **one** broadcast instead of one wave
    per group.  The final phase then runs once per group and each member
    query is evaluated exactly over the group's arrived complete tuples.

With ``share_work=False`` (or ``concurrency=1``) every admitted query runs
through the unmodified single-query path (:func:`repro.joins.runner.run_snapshot`),
serially — byte-identical outcomes to issuing the queries one by one, which
is both the correctness baseline and the denominator of the amortization
numbers reported by the ``concurrency_study`` experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from .. import constants
from ..codec.quadtree import FlaggedPoint
from ..codec.setops import intersect_points
from ..joins.base import ExecutionContext, FullTupleRecord, TupleFormat
from ..joins.filterbuild import build_join_filter, compose_filters
from ..joins.runner import run_snapshot
from ..joins.sensjoin import PHASE_FILTER, SensJoin, _NodeState
from ..obs.telemetry import NULL_TELEMETRY, Telemetry
from ..query.evaluate import JoinResult, Row, evaluate_join
from ..query.query import JoinQuery
from ..routing.ctp import build_tree
from ..routing.dissemination import PIGGYBACK_HEADER_BYTES, flood_batch
from ..routing.tree import RoutingTree
from ..sim.network import Network
from ..sim.node import BASE_STATION_ID
from ..sim.trace import (
    BROKER_ADMIT,
    BROKER_BATCH,
    BROKER_COMPLETE,
    FILTER_COMPOSED,
    FILTER_PIGGYBACK,
    FILTER_PRUNED,
)
from .workloads import QueryRequest

__all__ = [
    "BrokerConfig",
    "QueryBroker",
    "QueryOutcome",
    "BrokerReport",
    "sharing_signature",
]


def sharing_signature(query: JoinQuery) -> Tuple:
    """What must agree for two queries to share phase-1a work.

    The collected join-attribute points depend on the aliases (flag bits),
    the relations behind them (which nodes hold tuples), the join/full
    attribute sets (the quantized domain and payload sizes) and the
    selection predicates (applied at acquisition time) — but **not** on
    the join predicate, which only enters at the base station when the
    filter is built.  Queries equal under this key therefore produce
    identical phase-1a traffic and may differ in their join condition.
    """
    return (
        tuple(query.aliases),
        tuple(query.relation_of(alias) for alias in query.aliases),
        tuple(tuple(query.join_attributes(alias)) for alias in query.aliases),
        tuple(tuple(query.full_tuple_attributes(alias)) for alias in query.aliases),
        tuple(
            tuple(sorted(p.sql() for p in query.selection_predicates(alias)))
            for alias in query.aliases
        ),
    )


@dataclass(frozen=True)
class BrokerConfig:
    """Broker knobs.

    ``concurrency`` caps how many queries one batch admits; ``share_work``
    turns the group/compose/piggyback machinery on (off = the serial
    single-query reference path); ``engine`` picks the snapshot engine for
    the no-sharing path; ``disseminate_queries`` additionally floods the
    admitted queries' text in one piggybacked wave (off by default,
    matching ``run_snapshot``).
    """

    concurrency: int = 8
    share_work: bool = True
    engine: str = "sens-join"
    disseminate_queries: bool = False

    def __post_init__(self) -> None:
        if self.concurrency < 1:
            raise ValueError(f"concurrency must be >= 1: {self.concurrency}")


@dataclass
class QueryOutcome:
    """Per-query completion record."""

    request: QueryRequest
    result: JoinResult
    admitted_s: float
    completed_s: float
    latency_s: float
    energy_share_j: float
    tx_share_packets: float
    group_size: int
    batch_index: int

    def result_set(self, digits: int = 9) -> frozenset:
        return self.result.result_set(digits)


@dataclass
class BrokerReport:
    """Everything one :meth:`QueryBroker.run` produced."""

    outcomes: List[QueryOutcome]
    total_energy_j: float
    total_tx_packets: int
    batch_count: int
    details: Dict[str, float] = field(default_factory=dict)

    def latency_percentile(self, fraction: float) -> float:
        """Nearest-rank latency percentile over all completed queries."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1]: {fraction}")
        if not self.outcomes:
            raise ValueError("no completed queries")
        ordered = sorted(outcome.latency_s for outcome in self.outcomes)
        rank = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
        return ordered[rank]


@dataclass
class _GroupWave:
    """One share group's protocol state while its batch executes."""

    requests: List[QueryRequest]
    engine: SensJoin
    context: ExecutionContext
    fmt: TupleFormat
    states: Dict[int, _NodeState]
    details: Dict[str, float]
    composed: FrozenSet[FlaggedPoint] = frozenset()
    finish_1a: float = 0.0
    energy_j: float = 0.0
    tx_packets: float = 0.0


class QueryBroker:
    """Admit, schedule and execute many queries on one network.

    The broker owns a single routing tree (built once — concurrent queries
    share the converged topology) and a simulated wall clock.  Batches run
    back to back; a query's latency is *completion − arrival*, so time
    spent waiting in the admission queue counts.
    """

    def __init__(
        self,
        network: Network,
        world,
        config: BrokerConfig = BrokerConfig(),
        tree: Optional[RoutingTree] = None,
        tree_seed: int = 0,
        telemetry: Optional[Telemetry] = None,
    ):
        self.network = network
        self.world = world
        self.config = config
        self.tree = tree if tree is not None else build_tree(network, seed=tree_seed)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.tracer = self.telemetry.tracer

    # -- admission loop ------------------------------------------------------

    def run(self, requests: Sequence[QueryRequest]) -> BrokerReport:
        """Drain the request stream; returns the per-query outcome report."""
        pending = sorted(requests, key=lambda r: (r.arrival_s, r.query_id))
        outcomes: List[QueryOutcome] = []
        reg = self.telemetry.registry
        clock = 0.0
        batch_index = 0
        total_energy = 0.0
        total_tx = 0
        composed_total = 0
        piggyback_total = 0
        group_total = 0
        index = 0
        while index < len(pending):
            start = max(clock, pending[index].arrival_s)
            batch: List[QueryRequest] = []
            while (
                index < len(pending)
                and len(batch) < self.config.concurrency
                and pending[index].arrival_s <= start
            ):
                batch.append(pending[index])
                index += 1
            for request in batch:
                self.tracer.emit(
                    start, BASE_STATION_ID, BROKER_ADMIT,
                    query=request.query_id, waited_s=round(start - request.arrival_s, 6),
                )
            share = self.config.share_work and len(batch) > 1
            self.tracer.emit(
                start, BASE_STATION_ID, BROKER_BATCH,
                index=batch_index, size=len(batch), shared=share,
            )
            if share:
                batch_outcomes, stats = self._execute_batch_shared(
                    batch, start, batch_index
                )
                composed_total += stats["composed_filters"]
                piggyback_total += stats["piggybacked_broadcasts"]
                group_total += stats["share_groups"]
            else:
                batch_outcomes = self._execute_batch_serial(batch, start, batch_index)
                group_total += len(batch)
            for outcome in batch_outcomes:
                total_energy += outcome.energy_share_j
                total_tx += outcome.tx_share_packets
                clock = max(clock, outcome.completed_s)
                self.tracer.emit(
                    outcome.completed_s, BASE_STATION_ID, BROKER_COMPLETE,
                    query=outcome.request.query_id,
                    latency_s=round(outcome.latency_s, 6),
                )
                if reg.enabled:
                    reg.counter("broker_queries_total").inc()
                    reg.histogram("broker_query_latency_seconds").observe(
                        outcome.latency_s
                    )
            outcomes.extend(batch_outcomes)
            if reg.enabled:
                reg.counter("broker_batches_total").inc()
            batch_index += 1
        if reg.enabled:
            reg.counter("broker_share_groups_total").inc(group_total)
            reg.counter("broker_composed_filters_total").inc(composed_total)
            reg.counter("broker_piggybacked_broadcasts_total").inc(piggyback_total)
        details = {
            "queries": float(len(outcomes)),
            "batches": float(batch_index),
            "share_groups": float(group_total),
            "composed_filters": float(composed_total),
            "piggybacked_broadcasts": float(piggyback_total),
            "makespan_s": clock,
        }
        return BrokerReport(
            outcomes=outcomes,
            total_energy_j=total_energy,
            total_tx_packets=int(round(total_tx)),
            batch_count=batch_index,
            details=details,
        )

    # -- no-sharing reference path -------------------------------------------

    def _execute_batch_serial(
        self, batch: List[QueryRequest], start: float, batch_index: int
    ) -> List[QueryOutcome]:
        """One query at a time through the unmodified single-query path."""
        outcomes = []
        clock = start
        for request in batch:
            outcome = run_snapshot(
                self.network,
                self.world,
                request.query,
                algorithm=self.config.engine,
                tree=self.tree,
                disseminate_query=self.config.disseminate_queries,
                telemetry=self.telemetry if self.telemetry.enabled else None,
            )
            completed = clock + outcome.response_time_s
            outcomes.append(
                QueryOutcome(
                    request=request,
                    result=outcome.result,
                    admitted_s=start,
                    completed_s=completed,
                    latency_s=completed - request.arrival_s,
                    energy_share_j=self.network.total_energy(),
                    tx_share_packets=float(outcome.total_transmissions),
                    group_size=1,
                    batch_index=batch_index,
                )
            )
            clock = completed
        return outcomes

    # -- shared execution ----------------------------------------------------

    def _execute_batch_shared(
        self, batch: List[QueryRequest], start: float, batch_index: int
    ) -> Tuple[List[QueryOutcome], Dict[str, float]]:
        """One network epoch for the whole batch, with work sharing."""
        network, tree, world = self.network, self.tree, self.world
        network.reset_accounting()
        energy_mark = 0.0
        tx_mark = 0.0

        def take_delta() -> Tuple[float, float]:
            nonlocal energy_mark, tx_mark
            energy = network.total_energy()
            tx = float(network.stats.total_tx_packets())
            delta = (energy - energy_mark, tx - tx_mark)
            energy_mark, tx_mark = energy, tx
            return delta

        # One piggybacked flood disseminates every admitted query's text.
        if self.config.disseminate_queries:
            flood_batch(
                network, [len(r.query.sql().encode()) for r in batch]
            )
        world.take_snapshot(start)
        diss_energy, diss_tx = take_delta()

        # Partition into share groups, in batch (= admission) order.
        waves: List[_GroupWave] = []
        by_signature: Dict[Tuple, _GroupWave] = {}
        for request in batch:
            key = sharing_signature(request.query)
            wave = by_signature.get(key)
            if wave is None:
                context = ExecutionContext(
                    network=network, tree=tree, world=world, query=request.query
                )
                wave = _GroupWave(
                    requests=[],
                    engine=SensJoin(telemetry=self.telemetry),
                    context=context,
                    fmt=context.tuple_format(),
                    states={nid: _NodeState() for nid in tree.node_ids},
                    details={},
                )
                by_signature[key] = wave
                waves.append(wave)
            wave.requests.append(request)

        # Phase 1a once per group; per-query filters composed per group.
        for wave in waves:
            bs_points, finish_1a = wave.engine._collection_phase(
                wave.context, wave.fmt, wave.states, False, wave.details
            )
            wave.finish_1a = finish_1a
            per_query = [
                build_join_filter(TupleFormat(r.query, world), bs_points)
                for r in wave.requests
            ]
            wave.composed = compose_filters(per_query)
            self.tracer.emit(
                finish_1a, BASE_STATION_ID, FILTER_COMPOSED,
                queries=len(wave.requests), points=len(wave.composed),
            )
            energy, tx = take_delta()
            wave.energy_j += energy
            wave.tx_packets += tx

        # Phase 1b: all groups' filters ride one pre-order wave.
        piggybacked = self._disseminate_filters(waves, start_time=max(
            wave.finish_1a for wave in waves
        ))
        energy, tx = take_delta()
        # Query dissemination + the merged filter wave serve every member
        # of the batch; their cost is split evenly.
        shared_share = (energy + diss_energy) / len(batch)
        shared_tx = (tx + diss_tx) / len(batch)

        # Phase 2 once per group; exact per-query evaluation over the
        # group's arrived complete tuples.
        outcomes: List[QueryOutcome] = []
        for wave in waves:
            _, finish = wave.engine._final_phase(
                wave.context, wave.fmt, wave.states, wave.details
            )
            energy, tx = take_delta()
            wave.energy_j += energy
            wave.tx_packets += tx
            arrived = wave.engine.last_arrived_records
            duration = 3 * tree.height * constants.DEFAULT_LEVEL_SLOT_S + finish
            completed = start + duration
            for request in wave.requests:
                result = _evaluate_for(request.query, wave.fmt, arrived)
                outcomes.append(
                    QueryOutcome(
                        request=request,
                        result=result,
                        admitted_s=start,
                        completed_s=completed,
                        latency_s=completed - request.arrival_s,
                        energy_share_j=wave.energy_j / len(wave.requests)
                        + shared_share,
                        tx_share_packets=wave.tx_packets / len(wave.requests)
                        + shared_tx,
                        group_size=len(wave.requests),
                        batch_index=batch_index,
                    )
                )
        outcomes.sort(key=lambda o: o.request.query_id)
        stats = {
            "share_groups": float(len(waves)),
            "composed_filters": float(
                sum(1 for wave in waves if len(wave.requests) > 1)
            ),
            "piggybacked_broadcasts": float(piggybacked),
        }
        return outcomes, stats

    def _disseminate_filters(
        self, waves: List[_GroupWave], start_time: float
    ) -> int:
        """Pre-order filter dissemination with cross-group piggybacking.

        Mirrors :meth:`SensJoin._filter_phase` per group — Selective Filter
        Forwarding prunes each group's filter independently — but at every
        node the surviving filters are concatenated (plus a per-filter
        header) into a single broadcast to the union of the groups' awake
        children.  Returns how many broadcasts carried more than one
        group's filter.
        """
        tree = self.tree
        channel = self.network.channel
        piggybacked = 0
        for wave in waves:
            bs_state = wave.states[BASE_STATION_ID]
            bs_state.filter_received = wave.composed
            bs_state.filter_arrival = start_time
        for node_id in tree.pre_order():
            sendable: List[Tuple[_GroupWave, FrozenSet[FlaggedPoint], List[int]]] = []
            departure = start_time
            for wave in waves:
                state = wave.states[node_id]
                if state.exited:
                    continue
                incoming = state.filter_received
                if incoming is None or not incoming:
                    continue
                awake = [
                    c for c in tree.children(node_id) if not wave.states[c].exited
                ]
                if not awake:
                    continue
                if state.subtree_atts is not None:
                    pruned = intersect_points(incoming, state.subtree_atts)
                else:
                    pruned = incoming
                if not pruned:
                    self.tracer.emit(state.filter_arrival, node_id, FILTER_PRUNED)
                    continue
                sendable.append((wave, pruned, awake))
                departure = max(departure, state.filter_arrival)
            if not sendable:
                continue
            receivers = sorted({c for _, _, awake in sendable for c in awake})
            payload = sum(
                wave.engine._filter_bytes(wave.fmt, pruned)
                for wave, pruned, _ in sendable
            )
            if len(sendable) > 1:
                payload += PIGGYBACK_HEADER_BYTES * len(sendable)
                piggybacked += 1
                self.tracer.emit(
                    departure, node_id, FILTER_PIGGYBACK,
                    filters=len(sendable), bytes=payload,
                )
            channel.broadcast(node_id, receivers, payload, PHASE_FILTER)
            arrival = departure + channel.last_send_latency_s
            for wave, pruned, awake in sendable:
                for child in awake:
                    wave.states[child].filter_received = pruned
                    wave.states[child].filter_arrival = arrival
        return piggybacked


def _evaluate_for(
    query: JoinQuery, fmt: TupleFormat, arrived: List[FullTupleRecord]
) -> JoinResult:
    """Exact evaluation of one member query over the group's arrived tuples.

    ``fmt`` is the group representative's format; the sharing signature
    guarantees identical aliases and flag bits across the group, so the
    alias routing below is valid for every member.  Selections were already
    applied at acquisition time (identical within the group), hence
    ``apply_selections=False`` — the same contract as the single-query
    final phase.
    """
    tuples_by_alias: Dict[str, List[Row]] = {alias: [] for alias in fmt.aliases}
    for record in arrived:
        for alias in fmt.aliases_of_flags(record.flags):
            tuples_by_alias[alias].append(Row(record.node_id, dict(record.values)))
    return evaluate_join(query, tuples_by_alias, apply_selections=False)
