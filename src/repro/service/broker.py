"""The concurrent multi-query broker: admission, batching, work sharing.

The paper runs one query at a time; the broker runs *many* against one
deployment and recovers the redundancy between them:

1.  **Admission.**  Requests queue FIFO by arrival time.  When the network
    is free, the broker admits every already-arrived request up to the
    configured ``concurrency`` limit into one *batch* — one network epoch.

2.  **Share groups.**  A batch is partitioned by
    :func:`sharing_signature`: queries agreeing on aliases, relations,
    join attributes, full-tuple attributes and selection predicates (i.e.
    differing at most in the join predicate) share one quantized domain —
    their phase-1a traffic is *identical*, so the group runs
    Join-Attribute-Collection **once**.  From the one collected point set
    the base station builds each member query's join filter and unites
    them (:func:`~repro.joins.filterbuild.compose_filters`) into a single
    conservative filter: a superset of every per-query filter, so the
    exactness argument of §IV survives — the final join per query discards
    all false positives the wider filter lets through.

3.  **Piggybacked dissemination.**  The composed filters of *different*
    groups ride the same pre-order wave: at each node every group prunes
    its own filter against its SubtreeJoinAtts (Selective Filter
    Forwarding, per group), and whatever survives is concatenated — plus a
    small per-filter header — into **one** broadcast instead of one wave
    per group.  The final phase then runs once per group and each member
    query is evaluated exactly over the group's arrived complete tuples.

With ``share_work=False`` (or ``concurrency=1``) every admitted query runs
through the unmodified single-query path (:func:`repro.joins.runner.run_snapshot`),
serially — byte-identical outcomes to issuing the queries one by one, which
is both the correctness baseline and the denominator of the amortization
numbers reported by the ``concurrency_study`` experiment.

**Resilience under churn.**  With a :class:`~repro.sim.faults.ChurnModel`
(or a pre-materialized :class:`~repro.sim.faults.FaultPlan`) the broker
survives a topology that shifts under its batches.  Readings are sampled
once, pre-churn; due faults are applied as the clock reaches them and the
tree heals incrementally (:func:`~repro.routing.ctp.reattach_tree`, repair
cost in the ledger).  Batches run a *degradation ladder*: shared execution
with bounded, seeded-exponential-backoff retries when an epoch is disrupted
(a fault landed mid-epoch, or the :class:`DeadlinePolicy` timeout expired);
then the share group splits and members re-execute independently; a member
disrupted even then gets one final serial re-run whose result is accepted
as-is.  Every admitted query terminates with status ``"completed"``
(recall 1.0 against the pre-churn lossless oracle), ``"degraded"`` (partial
recall, or its engine raised — wrapped in a typed
:class:`~repro.errors.BrokerError` without aborting the batch) or
``"shed"`` (dropped at admission once the backlog exceeded
``admission_depth``).  With churn disabled every code path above is inert
and the broker's output is byte-identical to the pre-resilience behaviour.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from .. import constants
from ..codec.quadtree import FlaggedPoint
from ..codec.setops import intersect_points
from ..errors import BrokerError
from ..joins.base import ExecutionContext, FullTupleRecord, TupleFormat, oracle_result
from ..joins.filterbuild import build_join_filter, compose_filters
from ..joins.runner import instrumented, make_algorithm, run_snapshot
from ..joins.sensjoin import PHASE_FILTER, SensJoin, _NodeState
from ..obs.telemetry import NULL_TELEMETRY, Telemetry
from ..obs.timeseries import MetricsSampler, WindowedAggregate
from ..query.evaluate import JoinResult, Row, evaluate_join
from ..query.query import JoinQuery
from ..routing.cluster import build_routing_tree
from ..routing.ctp import reattach_tree
from ..routing.dissemination import PIGGYBACK_HEADER_BYTES, flood_batch, flood_query
from ..routing.tree import RoutingTree
from ..sim.faults import (
    ChurnModel,
    Fault,
    FaultPlan,
    LINK_DROP,
    LOSS_BURST,
    NODE_CRASH,
    NODE_MOVE,
    NODE_REJOIN,
)
from ..sim.network import Network
from ..sim.node import BASE_STATION_ID
from ..sim.trace import (
    BROKER_ADMIT,
    BROKER_BATCH,
    BROKER_COMPLETE,
    BROKER_DEGRADED,
    BROKER_GROUP_SPLIT,
    BROKER_RETRY,
    BROKER_SHED,
    FAULT_INJECT,
    FILTER_COMPOSED,
    FILTER_PIGGYBACK,
    FILTER_PRUNED,
)
from .workloads import QueryRequest

__all__ = [
    "BrokerConfig",
    "DeadlinePolicy",
    "QueryBroker",
    "QueryOutcome",
    "BrokerReport",
    "sharing_signature",
]

#: Recall within this of 1.0 counts as complete (float accumulation guard).
_RECALL_EPSILON = 1e-9

#: Rolling SLO windows span this many sampling periods: wide enough that a
#: single slow wave does not whipsaw the percentiles, narrow enough that a
#: sustained regression surfaces within a handful of ticks.
SLO_WINDOW_PERIODS = 10


def sharing_signature(query: JoinQuery) -> Tuple:
    """What must agree for two queries to share phase-1a work.

    The collected join-attribute points depend on the aliases (flag bits),
    the relations behind them (which nodes hold tuples), the join/full
    attribute sets (the quantized domain and payload sizes) and the
    selection predicates (applied at acquisition time) — but **not** on
    the join predicate, which only enters at the base station when the
    filter is built.  Queries equal under this key therefore produce
    identical phase-1a traffic and may differ in their join condition.
    """
    return (
        tuple(query.aliases),
        tuple(query.relation_of(alias) for alias in query.aliases),
        tuple(tuple(query.join_attributes(alias)) for alias in query.aliases),
        tuple(tuple(query.full_tuple_attributes(alias)) for alias in query.aliases),
        tuple(
            tuple(sorted(p.sql() for p in query.selection_predicates(alias)))
            for alias in query.aliases
        ),
    )


@dataclass(frozen=True)
class DeadlinePolicy:
    """Per-query deadline and retry semantics for churn-resilient batches.

    ``timeout_s`` is the per-epoch wall-clock budget: a shared attempt whose
    simulated duration exceeds it counts as disrupted even if no fault
    landed mid-epoch (``None`` disables the wall-clock check; mid-epoch
    faults still disrupt).  A disrupted attempt is retried after a seeded
    exponential backoff — ``backoff_s`` scaled by ``backoff_factor`` per
    retry, jittered by a deterministic draw from ``seed`` so two brokers
    with the same seed retry at identical simulated times.  After
    ``max_retries`` shared retries the group splits (degradation ladder,
    see the module docstring).
    """

    timeout_s: Optional[float] = None
    max_retries: int = 2
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.max_retries < 0:
            raise ValueError(f"negative retry bound: {self.max_retries}")
        if self.backoff_s < 0:
            raise ValueError(f"negative backoff: {self.backoff_s}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff factor must be >= 1, got {self.backoff_factor}"
            )


@dataclass(frozen=True)
class BrokerConfig:
    """Broker knobs.

    ``concurrency`` caps how many queries one batch admits; ``share_work``
    turns the group/compose/piggyback machinery on (off = the serial
    single-query reference path); ``engine`` picks the snapshot engine for
    the no-sharing path; ``disseminate_queries`` additionally floods the
    admitted queries' text in one piggybacked wave (off by default,
    matching ``run_snapshot``).

    ``deadline`` activates the churn-resilient execution ladder even
    without a churn model; ``admission_depth`` enables overload shedding —
    whenever a batch is formed, arrived-but-waiting requests beyond that
    depth are dropped with status ``"shed"`` instead of queueing without
    bound.
    """

    concurrency: int = 8
    share_work: bool = True
    engine: str = "sens-join"
    disseminate_queries: bool = False
    deadline: Optional[DeadlinePolicy] = None
    admission_depth: Optional[int] = None
    #: Routing-tree construction mode used when no explicit tree is passed
    #: to the broker: ``"flat"`` min-hop CTP or ``"cluster"`` grid-head
    #: routing (:mod:`repro.routing.cluster`).
    routing: str = "flat"

    def __post_init__(self) -> None:
        if self.concurrency < 1:
            raise ValueError(f"concurrency must be >= 1: {self.concurrency}")
        if self.admission_depth is not None and self.admission_depth < 0:
            raise ValueError(
                f"admission_depth must be >= 0, got {self.admission_depth}"
            )
        if self.routing not in ("flat", "cluster"):
            raise ValueError(f"unknown routing mode: {self.routing!r}")


@dataclass
class QueryOutcome:
    """Per-query completion record.

    ``status`` is terminal: ``"completed"`` (full recall against the
    pre-churn oracle), ``"degraded"`` (partial recall, or the engine raised
    — then ``error`` carries the :class:`~repro.errors.BrokerError`), or
    ``"shed"`` (dropped at admission under overload).  Without churn or a
    deadline policy every outcome keeps the historical defaults.
    """

    request: QueryRequest
    result: JoinResult
    admitted_s: float
    completed_s: float
    latency_s: float
    energy_share_j: float
    tx_share_packets: float
    group_size: int
    batch_index: int
    status: str = "completed"
    #: Fraction of the pre-churn lossless oracle's matches this result
    #: delivered (1.0 when no churn/deadline machinery is active).
    recall: float = 1.0
    #: Execution attempts this query participated in (shared + split runs).
    attempts: int = 1
    error: Optional[BrokerError] = None

    def result_set(self, digits: int = 9) -> frozenset:
        return self.result.result_set(digits)


@dataclass
class BrokerReport:
    """Everything one :meth:`QueryBroker.run` produced."""

    outcomes: List[QueryOutcome]
    total_energy_j: float
    total_tx_packets: int
    batch_count: int
    details: Dict[str, float] = field(default_factory=dict)

    def latency_percentile(self, fraction: float) -> float:
        """Nearest-rank latency percentile over all completed queries."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1]: {fraction}")
        if not self.outcomes:
            raise ValueError("no completed queries")
        ordered = sorted(outcome.latency_s for outcome in self.outcomes)
        rank = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
        return ordered[rank]


@dataclass
class _GroupWave:
    """One share group's protocol state while its batch executes."""

    requests: List[QueryRequest]
    engine: SensJoin
    context: ExecutionContext
    fmt: TupleFormat
    states: Dict[int, _NodeState]
    details: Dict[str, float]
    composed: FrozenSet[FlaggedPoint] = frozenset()
    finish_1a: float = 0.0
    energy_j: float = 0.0
    tx_packets: float = 0.0
    #: Set when a protocol phase raised for this group: the wave's members
    #: surface degraded outcomes instead of aborting the batch.
    error: Optional[BrokerError] = None


class QueryBroker:
    """Admit, schedule and execute many queries on one network.

    The broker owns a single routing tree (built once — concurrent queries
    share the converged topology) and a simulated wall clock.  Batches run
    back to back; a query's latency is *completion − arrival*, so time
    spent waiting in the admission queue counts.

    ``churn`` (a :class:`~repro.sim.faults.ChurnModel`, materialized here
    against the deployment, or a ready :class:`~repro.sim.faults.FaultPlan`)
    turns on the resilient execution ladder; under churn a broker is a
    single-shot object — construct a fresh one per ``run()`` so the plan
    replays from the top.  Loss bursts are rejected: the broker's epochs are
    synchronous, only the DES engine can replay a transient loss window.
    """

    def __init__(
        self,
        network: Network,
        world,
        config: BrokerConfig = BrokerConfig(),
        tree: Optional[RoutingTree] = None,
        tree_seed: int = 0,
        telemetry: Optional[Telemetry] = None,
        churn: Optional[Union[ChurnModel, FaultPlan]] = None,
        sampler: Optional[MetricsSampler] = None,
    ):
        self.network = network
        self.world = world
        self.config = config
        self.tree = (
            tree
            if tree is not None
            else build_routing_tree(network, routing=config.routing, seed=tree_seed)
        )
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.tracer = self.telemetry.tracer
        self.tree_seed = tree_seed
        #: Optional time-series sampler (docs/observability.md).  The broker
        #: feeds rolling service-level aggregates (latency percentiles,
        #: deadline-miss/retry/shed rates, throughput) and ticks the sampler
        #: as its synchronous clock advances batch to batch; ``None`` (the
        #: default) leaves every run byte-identical to a sampler-free build.
        self._sampler = sampler
        if sampler is not None:
            window_s = sampler.period_s * SLO_WINDOW_PERIODS
            self._lat_window = WindowedAggregate(window_s)
            self._completed_window = WindowedAggregate(window_s)
            self._retry_window = WindowedAggregate(window_s)
            self._miss_window = WindowedAggregate(window_s)
            self._shed_window = WindowedAggregate(window_s)
            # The tree is re-grafted on heal, so the watch needs a live view.
            sampler.watch_tree(lambda: self.tree)
            sampler.add_probe(self._service_probe)
        if isinstance(churn, ChurnModel):
            plan = churn.materialize(network)
        elif churn is not None:
            plan = churn
        else:
            plan = FaultPlan.empty()
        for fault in plan:
            if fault.kind == LOSS_BURST:
                raise ValueError(
                    "loss bursts need the DES engine's in-flight ARQ; "
                    "the broker replays topology churn only"
                )
        self._churn_faults: Tuple[Fault, ...] = tuple(plan)
        self._churn_index = 0
        #: Resilient ladder active: churn scheduled or a deadline configured.
        self._resilient = bool(self._churn_faults) or config.deadline is not None
        self._backoff_rng = random.Random(
            f"broker-backoff-{(config.deadline or DeadlinePolicy()).seed}"
        )
        self._oracles: Dict[str, Tuple[frozenset, int]] = {}
        self._repairs = 0
        self._repair_beacons = 0
        self._repair_energy_j = 0.0
        self._repair_tx_packets = 0.0
        self._orphaned_nodes = 0
        self._aborted_energy_j = 0.0
        self._aborted_tx_packets = 0.0

    # -- time-series sampling ------------------------------------------------

    def _service_probe(self, now: float) -> List[Tuple[str, Dict[str, str], float]]:
        """Rolling SLO aggregates over the last ``SLO_WINDOW_PERIODS`` ticks."""
        for window in (
            self._lat_window, self._completed_window, self._retry_window,
            self._miss_window, self._shed_window,
        ):
            window.advance(now)
        readings: List[Tuple[str, Dict[str, str], float]] = [
            ("broker_throughput_qps", {}, self._completed_window.rate()),
            ("broker_retry_rate", {}, self._retry_window.rate()),
            ("broker_deadline_miss_rate", {}, self._miss_window.rate()),
            ("broker_shed_rate", {}, self._shed_window.rate()),
        ]
        if self._lat_window.count:
            readings.extend([
                ("broker_wave_latency_p50_s", {}, self._lat_window.percentile(0.5)),
                ("broker_wave_latency_p95_s", {}, self._lat_window.percentile(0.95)),
                ("broker_wave_latency_max_s", {}, self._lat_window.maximum),
            ])
        return readings

    def _reset_accounting(self) -> None:
        """Reset per-epoch ledgers, banking cumulative gauges first.

        Every epoch starts from a clean ledger (energy shares are per-epoch
        deltas), but the sampler's per-node gauges are cumulative — the watch
        must fold the current readings into its base offsets before the wipe
        or the time series would saw-tooth back to zero each batch.
        """
        if self._sampler is not None:
            self._sampler.note_network_reset()
        self.network.reset_accounting()

    # -- admission loop ------------------------------------------------------

    def run(self, requests: Sequence[QueryRequest]) -> BrokerReport:
        """Drain the request stream; returns the per-query outcome report."""
        telemetry = self.telemetry if self.telemetry.enabled else None
        # Instrument the whole run, not just the serial path: the shared and
        # resilient epochs (and repair beacons) charge the channel directly,
        # and their per-node/per-phase counters must land in the registry for
        # the energy ledger to reconcile (docs/observability.md).
        with instrumented(self.network, telemetry):
            return self._run(requests)

    def _run(self, requests: Sequence[QueryRequest]) -> BrokerReport:
        pending = sorted(requests, key=lambda r: (r.arrival_s, r.query_id))
        outcomes: List[QueryOutcome] = []
        reg = self.telemetry.registry
        if self._resilient:
            # Sample readings once, pre-churn, and fix the lossless oracle
            # per distinct query: recall is measured against what the full,
            # unchurned deployment would have answered (§IV-F).  Batches
            # must not re-snapshot — churned nodes keep their pre-churn
            # readings, so every delivered result is comparable.
            self.world.take_snapshot(0.0)
            for request in pending:
                key = request.query.sql()
                if key not in self._oracles:
                    oracle = oracle_result(
                        ExecutionContext(
                            network=self.network, tree=self.tree,
                            world=self.world, query=request.query,
                        )
                    )
                    self._oracles[key] = (
                        frozenset(oracle.combinations),
                        oracle.match_count,
                    )
        clock = 0.0
        batch_index = 0
        total_energy = 0.0
        total_tx = 0
        composed_total = 0
        piggyback_total = 0
        group_total = 0
        shed_count = 0
        index = 0
        while index < len(pending):
            start = max(clock, pending[index].arrival_s)
            batch: List[QueryRequest] = []
            while (
                index < len(pending)
                and len(batch) < self.config.concurrency
                and pending[index].arrival_s <= start
            ):
                batch.append(pending[index])
                index += 1
            if self.config.admission_depth is not None:
                # Overload shedding: of the requests already waiting behind
                # this batch, only admission_depth may keep queueing; the
                # newest arrivals beyond that are dropped terminally.
                waiting_end = index
                while (
                    waiting_end < len(pending)
                    and pending[waiting_end].arrival_s <= start
                ):
                    waiting_end += 1
                keep_end = min(index + self.config.admission_depth, waiting_end)
                for request in pending[keep_end:waiting_end]:
                    shed = self._shed_outcome(request, start, batch_index)
                    outcomes.append(shed)
                    shed_count += 1
                    if self._sampler is not None:
                        self._shed_window.observe(start, 1.0)
                    self.tracer.emit(
                        start, BASE_STATION_ID, BROKER_SHED,
                        query=request.query_id,
                        backlog=waiting_end - index,
                        depth=self.config.admission_depth,
                    )
                    if reg.enabled:
                        reg.counter("broker_shed_total").inc()
                pending = pending[:keep_end] + pending[waiting_end:]
            for request in batch:
                self.tracer.emit(
                    start, BASE_STATION_ID, BROKER_ADMIT,
                    query=request.query_id, waited_s=round(start - request.arrival_s, 6),
                )
            share = self.config.share_work and len(batch) > 1
            self.tracer.emit(
                start, BASE_STATION_ID, BROKER_BATCH,
                index=batch_index, size=len(batch), shared=share,
            )
            if self._resilient:
                batch_outcomes, stats = self._execute_batch_resilient(
                    batch, start, batch_index
                )
                composed_total += stats["composed_filters"]
                piggyback_total += stats["piggybacked_broadcasts"]
                group_total += stats["share_groups"]
            elif share:
                batch_outcomes, stats = self._execute_batch_shared(
                    batch, start, batch_index
                )
                composed_total += stats["composed_filters"]
                piggyback_total += stats["piggybacked_broadcasts"]
                group_total += stats["share_groups"]
            else:
                batch_outcomes = self._execute_batch_serial(batch, start, batch_index)
                group_total += len(batch)
            for outcome in batch_outcomes:
                total_energy += outcome.energy_share_j
                total_tx += outcome.tx_share_packets
                clock = max(clock, outcome.completed_s)
                self.tracer.emit(
                    outcome.completed_s, BASE_STATION_ID, BROKER_COMPLETE,
                    query=outcome.request.query_id,
                    latency_s=round(outcome.latency_s, 6),
                )
                if outcome.status == "degraded":
                    self.tracer.emit(
                        outcome.completed_s, BASE_STATION_ID, BROKER_DEGRADED,
                        query=outcome.request.query_id,
                        recall=round(outcome.recall, 6),
                        error=(
                            type(outcome.error.cause).__name__
                            if outcome.error is not None and outcome.error.cause
                            else ""
                        ),
                    )
                    if reg.enabled:
                        reg.counter("broker_degraded_total").inc()
                if reg.enabled:
                    reg.counter("broker_queries_total").inc()
                    reg.histogram("broker_query_latency_seconds").observe(
                        outcome.latency_s
                    )
            outcomes.extend(batch_outcomes)
            if self._sampler is not None:
                # Windows demand time-ordered observations; batch outcomes
                # are ordered by query id, so re-sort by completion.
                for outcome in sorted(batch_outcomes, key=lambda o: o.completed_s):
                    self._lat_window.observe(outcome.completed_s, outcome.latency_s)
                    self._completed_window.observe(outcome.completed_s, 1.0)
                self._sampler.advance_to(clock)
            if reg.enabled:
                reg.counter("broker_batches_total").inc()
            batch_index += 1
        if reg.enabled:
            reg.counter("broker_share_groups_total").inc(group_total)
            reg.counter("broker_composed_filters_total").inc(composed_total)
            reg.counter("broker_piggybacked_broadcasts_total").inc(piggyback_total)
        details = {
            "queries": float(len(outcomes)),
            "batches": float(batch_index),
            "share_groups": float(group_total),
            "composed_filters": float(composed_total),
            "piggybacked_broadcasts": float(piggyback_total),
            "makespan_s": clock,
        }
        if self._resilient or self.config.admission_depth is not None:
            # Churn bookkeeping rides only on resilient runs so the
            # historical report shape stays byte-identical without churn.
            executed = [o for o in outcomes if o.status != "shed"]
            details["completed"] = float(
                sum(1 for o in outcomes if o.status == "completed")
            )
            details["degraded"] = float(
                sum(1 for o in outcomes if o.status == "degraded")
            )
            details["shed"] = float(shed_count)
            details["mean_recall"] = (
                sum(o.recall for o in executed) / len(executed) if executed else 1.0
            )
            details["min_recall"] = (
                min(o.recall for o in executed) if executed else 1.0
            )
            details["churn_faults_applied"] = float(self._churn_index)
            details["repairs"] = float(self._repairs)
            details["repair_beacons"] = float(self._repair_beacons)
            details["repair_energy_j"] = self._repair_energy_j
            details["orphaned_nodes"] = float(self._orphaned_nodes)
            details["aborted_energy_j"] = self._aborted_energy_j
            total_energy += self._repair_energy_j + self._aborted_energy_j
            total_tx += self._repair_tx_packets + self._aborted_tx_packets
        if self._sampler is not None:
            # One off-grid sample at the makespan so the final state of every
            # gauge is in the export even when the run ends between ticks.
            self._sampler.flush(clock)
        return BrokerReport(
            outcomes=outcomes,
            total_energy_j=total_energy,
            total_tx_packets=int(round(total_tx)),
            batch_count=batch_index,
            details=details,
        )

    # -- no-sharing reference path -------------------------------------------

    def _execute_batch_serial(
        self, batch: List[QueryRequest], start: float, batch_index: int
    ) -> List[QueryOutcome]:
        """One query at a time through the unmodified single-query path."""
        outcomes = []
        clock = start
        for request in batch:
            try:
                outcome = run_snapshot(
                    self.network,
                    self.world,
                    request.query,
                    algorithm=self.config.engine,
                    tree=self.tree,
                    disseminate_query=self.config.disseminate_queries,
                    telemetry=self.telemetry if self.telemetry.enabled else None,
                )
            except Exception as exc:
                # One query's engine failing must not abort the batch: wrap
                # the exception and keep executing the remaining queries.
                error = BrokerError(
                    f"engine failed for query {request.query_id}: {exc}",
                    query_id=request.query_id,
                    cause=exc,
                )
                outcomes.append(
                    QueryOutcome(
                        request=request,
                        result=_empty_result(request.query),
                        admitted_s=start,
                        completed_s=clock,
                        latency_s=clock - request.arrival_s,
                        energy_share_j=self.network.total_energy(),
                        tx_share_packets=float(
                            self.network.stats.total_tx_packets()
                        ),
                        group_size=1,
                        batch_index=batch_index,
                        status="degraded",
                        recall=0.0,
                        error=error,
                    )
                )
                continue
            completed = clock + outcome.response_time_s
            outcomes.append(
                QueryOutcome(
                    request=request,
                    result=outcome.result,
                    admitted_s=start,
                    completed_s=completed,
                    latency_s=completed - request.arrival_s,
                    energy_share_j=self.network.total_energy(),
                    tx_share_packets=float(outcome.total_transmissions),
                    group_size=1,
                    batch_index=batch_index,
                )
            )
            clock = completed
        return outcomes

    # -- shared execution ----------------------------------------------------

    def _execute_batch_shared(
        self,
        batch: List[QueryRequest],
        start: float,
        batch_index: int,
        take_snapshot: bool = True,
    ) -> Tuple[List[QueryOutcome], Dict[str, float]]:
        """One network epoch for the whole batch, with work sharing.

        ``take_snapshot=False`` is the resilient path: readings were sampled
        once, pre-churn, and must not be refreshed mid-churn (nodes that
        moved would re-sample the field at their new position and the
        outcome would no longer be comparable to the pre-churn oracle).
        """
        network, tree, world = self.network, self.tree, self.world
        self._reset_accounting()
        energy_mark = 0.0
        tx_mark = 0.0

        def take_delta() -> Tuple[float, float]:
            nonlocal energy_mark, tx_mark
            energy = network.total_energy()
            tx = float(network.stats.total_tx_packets())
            delta = (energy - energy_mark, tx - tx_mark)
            energy_mark, tx_mark = energy, tx
            return delta

        # One piggybacked flood disseminates every admitted query's text.
        if self.config.disseminate_queries:
            flood_batch(
                network, [len(r.query.sql().encode()) for r in batch]
            )
        if take_snapshot:
            world.take_snapshot(start)
        diss_energy, diss_tx = take_delta()

        # Partition into share groups, in batch (= admission) order.
        waves: List[_GroupWave] = []
        by_signature: Dict[Tuple, _GroupWave] = {}
        for request in batch:
            key = sharing_signature(request.query)
            wave = by_signature.get(key)
            if wave is None:
                context = ExecutionContext(
                    network=network, tree=tree, world=world, query=request.query
                )
                wave = _GroupWave(
                    requests=[],
                    engine=SensJoin(telemetry=self.telemetry),
                    context=context,
                    fmt=context.tuple_format(),
                    states={nid: _NodeState() for nid in tree.node_ids},
                    details={},
                )
                by_signature[key] = wave
                waves.append(wave)
            wave.requests.append(request)

        # Phase 1a once per group; per-query filters composed per group.
        # A group whose protocol raises is quarantined (wave.error): its
        # members surface degraded outcomes, the other groups keep going.
        for wave in waves:
            try:
                bs_points, finish_1a = wave.engine._collection_phase(
                    wave.context, wave.fmt, wave.states, False, wave.details
                )
                wave.finish_1a = finish_1a
                per_query = [
                    build_join_filter(TupleFormat(r.query, world), bs_points)
                    for r in wave.requests
                ]
                wave.composed = compose_filters(per_query)
            except Exception as exc:
                wave.error = BrokerError(
                    f"collection phase failed: {exc}", cause=exc
                )
                energy, tx = take_delta()
                wave.energy_j += energy
                wave.tx_packets += tx
                continue
            self.tracer.emit(
                finish_1a, BASE_STATION_ID, FILTER_COMPOSED,
                queries=len(wave.requests), points=len(wave.composed),
            )
            energy, tx = take_delta()
            wave.energy_j += energy
            wave.tx_packets += tx

        # Phase 1b: all groups' filters ride one pre-order wave.
        piggybacked = self._disseminate_filters(waves, start_time=max(
            wave.finish_1a for wave in waves
        ))
        energy, tx = take_delta()
        # Query dissemination + the merged filter wave serve every member
        # of the batch; their cost is split evenly.
        shared_share = (energy + diss_energy) / len(batch)
        shared_tx = (tx + diss_tx) / len(batch)

        # Phase 2 once per group; exact per-query evaluation over the
        # group's arrived complete tuples.
        outcomes: List[QueryOutcome] = []
        for wave in waves:
            arrived: List[FullTupleRecord] = []
            finish = wave.finish_1a
            if wave.error is None:
                try:
                    _, finish = wave.engine._final_phase(
                        wave.context, wave.fmt, wave.states, wave.details
                    )
                    arrived = wave.engine.last_arrived_records
                except Exception as exc:
                    wave.error = BrokerError(
                        f"final phase failed: {exc}", cause=exc
                    )
            energy, tx = take_delta()
            wave.energy_j += energy
            wave.tx_packets += tx
            duration = 3 * tree.height * constants.DEFAULT_LEVEL_SLOT_S + finish
            completed = start + duration
            for request in wave.requests:
                if wave.error is not None:
                    error: Optional[BrokerError] = BrokerError(
                        str(wave.error),
                        query_id=request.query_id,
                        cause=wave.error.cause,
                    )
                    result = _empty_result(request.query)
                else:
                    try:
                        result = _evaluate_for(request.query, wave.fmt, arrived)
                        error = None
                    except Exception as exc:
                        error = BrokerError(
                            f"evaluation failed for query {request.query_id}: {exc}",
                            query_id=request.query_id,
                            cause=exc,
                        )
                        result = _empty_result(request.query)
                outcomes.append(
                    QueryOutcome(
                        request=request,
                        result=result,
                        admitted_s=start,
                        completed_s=completed,
                        latency_s=completed - request.arrival_s,
                        energy_share_j=wave.energy_j / len(wave.requests)
                        + shared_share,
                        tx_share_packets=wave.tx_packets / len(wave.requests)
                        + shared_tx,
                        group_size=len(wave.requests),
                        batch_index=batch_index,
                        status="completed" if error is None else "degraded",
                        recall=1.0 if error is None else 0.0,
                        error=error,
                    )
                )
        outcomes.sort(key=lambda o: o.request.query_id)
        stats = {
            "share_groups": float(len(waves)),
            "composed_filters": float(
                sum(1 for wave in waves if len(wave.requests) > 1)
            ),
            "piggybacked_broadcasts": float(piggybacked),
        }
        return outcomes, stats

    def _disseminate_filters(
        self, waves: List[_GroupWave], start_time: float
    ) -> int:
        """Pre-order filter dissemination with cross-group piggybacking.

        Mirrors :meth:`SensJoin._filter_phase` per group — Selective Filter
        Forwarding prunes each group's filter independently — but at every
        node the surviving filters are concatenated (plus a per-filter
        header) into a single broadcast to the union of the groups' awake
        children.  Returns how many broadcasts carried more than one
        group's filter.
        """
        tree = self.tree
        channel = self.network.channel
        piggybacked = 0
        for wave in waves:
            bs_state = wave.states[BASE_STATION_ID]
            bs_state.filter_received = wave.composed
            bs_state.filter_arrival = start_time
        for node_id in tree.pre_order():
            sendable: List[Tuple[_GroupWave, FrozenSet[FlaggedPoint], List[int]]] = []
            departure = start_time
            for wave in waves:
                state = wave.states[node_id]
                if state.exited:
                    continue
                incoming = state.filter_received
                if incoming is None or not incoming:
                    continue
                awake = [
                    c for c in tree.children(node_id) if not wave.states[c].exited
                ]
                if not awake:
                    continue
                if state.subtree_atts is not None:
                    pruned = intersect_points(incoming, state.subtree_atts)
                else:
                    pruned = incoming
                if not pruned:
                    self.tracer.emit(state.filter_arrival, node_id, FILTER_PRUNED)
                    continue
                sendable.append((wave, pruned, awake))
                departure = max(departure, state.filter_arrival)
            if not sendable:
                continue
            receivers = sorted({c for _, _, awake in sendable for c in awake})
            payload = sum(
                wave.engine._filter_bytes(wave.fmt, pruned)
                for wave, pruned, _ in sendable
            )
            if len(sendable) > 1:
                payload += PIGGYBACK_HEADER_BYTES * len(sendable)
                piggybacked += 1
                self.tracer.emit(
                    departure, node_id, FILTER_PIGGYBACK,
                    filters=len(sendable), bytes=payload,
                )
            channel.broadcast(node_id, receivers, payload, PHASE_FILTER)
            arrival = departure + channel.last_send_latency_s
            for wave, pruned, awake in sendable:
                for child in awake:
                    wave.states[child].filter_received = pruned
                    wave.states[child].filter_arrival = arrival
        return piggybacked

    # -- churn-resilient execution ladder ------------------------------------

    def _execute_batch_resilient(
        self, batch: List[QueryRequest], start: float, batch_index: int
    ) -> Tuple[List[QueryOutcome], Dict[str, float]]:
        """The degradation ladder for one batch under churn.

        Rung 1: shared execution, retried with seeded exponential backoff
        while epochs are disrupted (a churn fault landed mid-epoch, or the
        deadline's wall-clock budget was blown).  Rung 2: the share group
        splits — members re-execute independently, each getting at most one
        extra re-run if churn races its serial epoch too.  Every admitted
        query terminates with a recall-stamped outcome.
        """
        policy = self.config.deadline or DeadlinePolicy()
        reg = self.telemetry.registry
        self._advance_churn(start)
        share = self.config.share_work and len(batch) > 1
        attempts = 0
        clock = start
        if share:
            backoff = policy.backoff_s
            attempt_start = start
            for attempt in range(policy.max_retries + 1):
                attempts += 1
                try:
                    outcomes, stats = self._execute_batch_shared(
                        batch, attempt_start, batch_index, take_snapshot=False
                    )
                except Exception:
                    # An epoch-level failure outside the per-wave isolation:
                    # the attempt's traffic is sunk cost, drop to the split
                    # rung (a deterministic protocol error would only repeat
                    # under retry).
                    self._absorb_aborted_epoch()
                    clock = attempt_start
                    break
                epoch_end = max(o.completed_s for o in outcomes)
                timed_out = (
                    policy.timeout_s is not None
                    and epoch_end - attempt_start > policy.timeout_s
                )
                if not timed_out and not self._churn_between(
                    attempt_start, epoch_end
                ):
                    for outcome in outcomes:
                        outcome.attempts = attempts
                        self._finalize_outcome(outcome)
                    return outcomes, stats
                self._absorb_aborted_epoch()
                clock = epoch_end
                if attempt == policy.max_retries:
                    break
                delay = backoff * (1.0 + self._backoff_rng.random() * 0.5)
                if self._sampler is not None:
                    self._retry_window.observe(epoch_end, 1.0)
                    if timed_out:
                        self._miss_window.observe(epoch_end, 1.0)
                self.tracer.emit(
                    epoch_end, BASE_STATION_ID, BROKER_RETRY,
                    batch=batch_index, attempt=attempt + 1,
                    delay_s=round(delay, 6), timed_out=timed_out,
                )
                if reg.enabled:
                    reg.counter("broker_retries_total").inc()
                attempt_start = epoch_end + delay
                backoff *= policy.backoff_factor
                self._advance_churn(attempt_start)
            self.tracer.emit(
                clock, BASE_STATION_ID, BROKER_GROUP_SPLIT,
                batch=batch_index, size=len(batch),
            )
            if reg.enabled:
                reg.counter("broker_group_splits_total").inc()
        outcomes = self._execute_split(batch, clock, batch_index, attempts)
        stats = {
            "share_groups": float(len(batch)),
            "composed_filters": 0.0,
            "piggybacked_broadcasts": 0.0,
        }
        return outcomes, stats

    def _execute_split(
        self,
        batch: List[QueryRequest],
        start: float,
        batch_index: int,
        prior_attempts: int,
    ) -> List[QueryOutcome]:
        """Members run independently; one disrupted run earns one re-run.

        The final rung of the ladder is bounded: a member whose serial epoch
        races a churn fault is re-executed once over the healed topology and
        that result is accepted as-is (its recall says how partial it is).
        """
        outcomes = []
        clock = start
        for request in batch:
            self._advance_churn(clock)
            attempts = prior_attempts + 1
            result, response_s, energy, tx, error = self._run_single_guarded(
                request
            )
            completed = clock + response_s
            if error is None and self._churn_between(clock, completed):
                self._absorb_aborted_epoch()
                self._advance_churn(completed)
                attempts += 1
                result, response_s, energy, tx, error = (
                    self._run_single_guarded(request)
                )
                completed = completed + response_s
            outcome = QueryOutcome(
                request=request,
                result=result,
                admitted_s=start,
                completed_s=completed,
                latency_s=completed - request.arrival_s,
                energy_share_j=energy,
                tx_share_packets=tx,
                group_size=1,
                batch_index=batch_index,
                attempts=attempts,
                error=error,
            )
            self._finalize_outcome(outcome)
            outcomes.append(outcome)
            clock = completed
        return outcomes

    def _run_single_guarded(
        self, request: QueryRequest
    ) -> Tuple[JoinResult, float, float, float, Optional[BrokerError]]:
        """One query on the current (possibly churned) topology.

        Mirrors :func:`~repro.joins.runner.run_snapshot` minus the snapshot
        (readings stay pre-churn, see :meth:`run`) and never raises: an
        engine exception comes back as a typed
        :class:`~repro.errors.BrokerError` with an empty result.  Returns
        ``(result, response_time_s, energy_j, tx_packets, error)``.
        """
        network = self.network
        self._reset_accounting()
        telemetry = self.telemetry if self.telemetry.enabled else None
        try:
            algo = make_algorithm(self.config.engine)
            if telemetry is not None:
                algo.instrument(telemetry)
            with instrumented(network, telemetry):
                if self.config.disseminate_queries:
                    flood_query(network, len(request.query.sql().encode()))
                context = ExecutionContext(
                    network=network, tree=self.tree,
                    world=self.world, query=request.query,
                )
                join_outcome = algo.execute(context)
        except Exception as exc:
            error = BrokerError(
                f"engine failed for query {request.query_id}: {exc}",
                query_id=request.query_id,
                cause=exc,
            )
            return (
                _empty_result(request.query),
                0.0,
                network.total_energy(),
                float(network.stats.total_tx_packets()),
                error,
            )
        return (
            join_outcome.result,
            join_outcome.response_time_s,
            network.total_energy(),
            float(join_outcome.total_transmissions),
            None,
        )

    # -- churn replay and bookkeeping ----------------------------------------

    def _advance_churn(self, now: float) -> None:
        """Apply every scheduled fault due by ``now``, then heal the tree."""
        applied = False
        while (
            self._churn_index < len(self._churn_faults)
            and self._churn_faults[self._churn_index].time_s <= now
        ):
            self._apply_churn_fault(self._churn_faults[self._churn_index])
            self._churn_index += 1
            applied = True
        if applied:
            self._heal_tree(now)

    def _apply_churn_fault(self, fault: Fault) -> None:
        """One fault onto the live topology; mirrors ``FaultInjector._apply``."""
        if fault.kind == NODE_CRASH:
            node = self.network.nodes.get(fault.node_a)
            if node is not None and node.alive:
                self.network.fail_node(fault.node_a)
        elif fault.kind == LINK_DROP:
            self.network.fail_link(fault.node_a, fault.node_b)
        elif fault.kind == NODE_REJOIN:
            self.network.revive_node(fault.node_a, fault.x, fault.y)
        else:  # NODE_MOVE; LOSS_BURST was rejected at construction
            self.network.move_node(fault.node_a, fault.x, fault.y)
        reg = self.telemetry.registry
        if reg.enabled:
            reg.counter("faults_injected_total", kind=fault.kind).inc()
        detail = {
            "fault": fault.kind,
            "node_b": fault.node_b,
            "duration_s": fault.duration_s,
            "loss_rate": fault.loss_rate,
        }
        if fault.kind in (NODE_REJOIN, NODE_MOVE):
            detail["x"] = fault.x
            detail["y"] = fault.y
        self.tracer.emit(fault.time_s, fault.node_a, FAULT_INJECT, **detail)

    def _heal_tree(self, now: float) -> None:
        """Localized re-attach over the churned topology, cost in the ledger.

        The beacon deltas are banked immediately: the next epoch's
        ``reset_accounting`` wipes the ledgers, so repair cost lives in the
        broker's own accumulators and is added to the report total.
        """
        network = self.network
        energy_before = network.total_energy()
        tx_before = float(network.stats.total_tx_packets())
        heal = reattach_tree(
            network, self.tree, seed=self.tree_seed,
            tracer=self.tracer, time_s=now,
        )
        self.tree = heal.tree
        self._repairs += 1
        self._repair_beacons += heal.beacons
        self._orphaned_nodes += len(heal.orphaned)
        self._repair_energy_j += network.total_energy() - energy_before
        self._repair_tx_packets += (
            float(network.stats.total_tx_packets()) - tx_before
        )

    def _churn_between(self, start_s: float, end_s: float) -> bool:
        """Is any not-yet-applied fault due in ``(start_s, end_s]``?"""
        for fault in self._churn_faults[self._churn_index:]:
            if fault.time_s > end_s:
                return False
            if fault.time_s > start_s:
                return True
        return False

    def _absorb_aborted_epoch(self) -> None:
        """Bank the cost of a disrupted epoch whose results were discarded."""
        self._aborted_energy_j += self.network.total_energy()
        self._aborted_tx_packets += float(self.network.stats.total_tx_packets())

    def _finalize_outcome(self, outcome: QueryOutcome) -> None:
        """Stamp terminal status and recall against the pre-churn oracle."""
        if outcome.status == "shed":
            return
        if outcome.error is not None:
            outcome.status = "degraded"
            outcome.recall = 0.0
            return
        oracle_set, oracle_count = self._oracles[outcome.request.query.sql()]
        if oracle_count == 0:
            outcome.recall = 1.0
        else:
            delivered = set(outcome.result.combinations) & oracle_set
            outcome.recall = len(delivered) / oracle_count
        outcome.status = (
            "completed"
            if outcome.recall >= 1.0 - _RECALL_EPSILON
            else "degraded"
        )

    def _shed_outcome(
        self, request: QueryRequest, start: float, batch_index: int
    ) -> QueryOutcome:
        """Terminal record for a request dropped at admission."""
        return QueryOutcome(
            request=request,
            result=_empty_result(request.query),
            admitted_s=start,
            completed_s=start,
            latency_s=start - request.arrival_s,
            energy_share_j=0.0,
            tx_share_packets=0.0,
            group_size=0,
            batch_index=batch_index,
            status="shed",
            recall=0.0,
            attempts=0,
        )


def _empty_result(query: JoinQuery) -> JoinResult:
    """The zero-match result shape for degraded and shed outcomes."""
    return JoinResult.from_lists(tuple(query.aliases), [], [])


def _evaluate_for(
    query: JoinQuery, fmt: TupleFormat, arrived: List[FullTupleRecord]
) -> JoinResult:
    """Exact evaluation of one member query over the group's arrived tuples.

    ``fmt`` is the group representative's format; the sharing signature
    guarantees identical aliases and flag bits across the group, so the
    alias routing below is valid for every member.  Selections were already
    applied at acquisition time (identical within the group), hence
    ``apply_selections=False`` — the same contract as the single-query
    final phase.
    """
    tuples_by_alias: Dict[str, List[Row]] = {alias: [] for alias in fmt.aliases}
    for record in arrived:
        for alias in fmt.aliases_of_flags(record.flags):
            tuples_by_alias[alias].append(Row(record.node_id, dict(record.values)))
    return evaluate_join(query, tuples_by_alias, apply_selections=False)
