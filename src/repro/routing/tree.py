"""Routing tree structure and traversals.

Query results in the modelled system flow to the base station along a
routing tree maintained by a CTP-like protocol (§III, "Query Processing").
This module is the *structure*: an immutable-after-construction parent/child
map rooted at the base station, with the traversal orders the join protocols
need:

* **post-order** (leaves first) for the collection phases — a node handles
  its children's data before talking to its own parent (TAG-style
  scheduling, [18]);
* **pre-order / levels** (root first) for filter dissemination;
* **descendant counts** for the per-node load analysis of Fig. 11.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Mapping, Sequence

from ..errors import RoutingError
from ..sim.node import BASE_STATION_ID

__all__ = ["RoutingTree"]


class RoutingTree:
    """A rooted tree over node ids, root = base station.

    Constructed from a ``child -> parent`` mapping.  The root must not appear
    as a key.  Construction validates that the structure really is a tree
    (no cycles, every node reaches the root).
    """

    def __init__(self, parents: Mapping[int, int], root: int = BASE_STATION_ID):
        self.root = root
        if root in parents:
            raise RoutingError(f"root {root} must not have a parent")
        self._parents: Dict[int, int] = dict(parents)
        self._children: Dict[int, List[int]] = {root: []}
        for child in self._parents:
            self._children.setdefault(child, [])
        for child, parent in sorted(self._parents.items()):
            if parent not in self._children:
                raise RoutingError(
                    f"node {child} has parent {parent} which is not in the tree"
                )
            self._children[parent].append(child)
        self._depths: Dict[int, int] = {}
        self._compute_depths()

    def _compute_depths(self) -> None:
        """BFS from the root; also validates reachability (cycle detection)."""
        self._depths = {self.root: 0}
        queue = deque([self.root])
        while queue:
            current = queue.popleft()
            for child in self._children[current]:
                self._depths[child] = self._depths[current] + 1
                queue.append(child)
        unreachable = set(self._parents) - set(self._depths)
        if unreachable:
            sample = sorted(unreachable)[:5]
            raise RoutingError(
                f"{len(unreachable)} node(s) cannot reach the root "
                f"(cycle or orphan), e.g. {sample}"
            )

    # -- basic accessors ------------------------------------------------------

    @property
    def node_ids(self) -> List[int]:
        """Every node in the tree, including the root, sorted."""
        return sorted(self._depths)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._depths

    def __len__(self) -> int:
        return len(self._depths)

    def parent(self, node_id: int) -> int:
        """Parent of ``node_id``; raises for the root."""
        try:
            return self._parents[node_id]
        except KeyError:
            raise RoutingError(f"node {node_id} has no parent (root or unknown)") from None

    def children(self, node_id: int) -> Sequence[int]:
        """Children of ``node_id`` (ascending id order, deterministic)."""
        try:
            return tuple(self._children[node_id])
        except KeyError:
            raise RoutingError(f"unknown node: {node_id}") from None

    def depth(self, node_id: int) -> int:
        """Hop count from the root (root = 0)."""
        try:
            return self._depths[node_id]
        except KeyError:
            raise RoutingError(f"unknown node: {node_id}") from None

    def is_leaf(self, node_id: int) -> bool:
        """True if the node has no children."""
        return not self._children.get(node_id)

    @property
    def height(self) -> int:
        """Maximum depth over all nodes."""
        return max(self._depths.values())

    # -- traversals -------------------------------------------------------------

    def post_order(self) -> Iterator[int]:
        """Children-before-parent order (collection schedule), iterative."""
        stack: List[tuple[int, bool]] = [(self.root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                yield node
            else:
                stack.append((node, True))
                for child in reversed(self._children[node]):
                    stack.append((child, False))

    def pre_order(self) -> Iterator[int]:
        """Parent-before-children order (dissemination schedule)."""
        stack: List[int] = [self.root]
        while stack:
            node = stack.pop()
            yield node
            for child in reversed(self._children[node]):
                stack.append(child)

    def levels(self) -> List[List[int]]:
        """Nodes grouped by depth: ``levels()[d]`` is every node at depth d."""
        result: List[List[int]] = [[] for _ in range(self.height + 1)]
        for node_id, depth in self._depths.items():
            result[depth].append(node_id)
        for level in result:
            level.sort()
        return result

    def subtree(self, node_id: int) -> Iterator[int]:
        """All nodes in the subtree rooted at ``node_id`` (pre-order)."""
        if node_id not in self._depths:
            raise RoutingError(f"unknown node: {node_id}")
        stack = [node_id]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(self._children[node]))

    def descendant_counts(self) -> Dict[int, int]:
        """Number of proper descendants of every node (Fig. 11 x-axis)."""
        counts = {node_id: 0 for node_id in self._depths}
        for node_id in self.post_order():
            if node_id == self.root:
                continue
            counts[self._parents[node_id]] += counts[node_id] + 1
        return counts

    def path_to_root(self, node_id: int) -> List[int]:
        """The node's ancestor chain, starting at the node, ending at the root."""
        if node_id not in self._depths:
            raise RoutingError(f"unknown node: {node_id}")
        path = [node_id]
        while path[-1] != self.root:
            path.append(self._parents[path[-1]])
        return path

    # -- derived metrics ---------------------------------------------------------

    def total_hops_to_root(self, node_ids: Iterable[int]) -> int:
        """Sum of hop counts from the given nodes to the root.

        A quick lower bound on the packets needed to collect one fixed-size
        message from each of those nodes without aggregation.
        """
        return sum(self.depth(node_id) for node_id in node_ids)

    def as_parent_map(self) -> Dict[int, int]:
        """Copy of the underlying ``child -> parent`` mapping."""
        return dict(self._parents)
