"""Collection-tree construction and repair (CTP-style).

§III: "A routing tree is maintained in a distributed fashion: Based on a
periodic beaconing mechanism, each node maintains a parent that minimizes the
hop count to the base station (for details cf. TinyOS, collection-tree
protocol)."

The converged result of that protocol is a shortest-path (min-hop) tree
rooted at the base station.  :func:`build_tree` computes it directly with a
BFS; :class:`BeaconProtocol <repro.routing.beacons.BeaconProtocol>` produces
the same structure through actual message exchange.

Among equally good parents (same hop count) CTP picks by link quality.  On a
lossless network every link is perfect, so a tie-breaking policy stands in:

``"random"``    — seeded random choice (lossless default; gives realistic,
                  varied child distributions across seeds),
``"lowest_id"`` — deterministic canonical tree (tests),
``"nearest"``   — the geometrically closest candidate (strongest-link proxy),
``"etx"``       — lowest expected transmission count (default whenever the
                  network carries a :class:`~repro.sim.network.LinkQuality`
                  model; this is CTP's actual metric restricted to the
                  min-hop parent set, steering the tree away from lossy
                  boundary-length links).

Repair (§IV-F) is re-convergence: after a node or link failure,
:func:`repair_tree` recomputes parents over the surviving graph.  Nodes cut
off from the base station are reported so the caller (the query runner) can
re-execute the query without them.

Under *continuous churn* a full re-convergence per topology change is too
expensive: most of the tree is still fine.  :func:`reattach_tree` is the
incremental alternative — only the roots of detached subtrees probe their
radio neighbourhood with beacons and graft onto the nearest attached node,
keeping every surviving parent link untouched.  The beacon exchange is
charged to the energy ledger (phase ``"tree-maintenance"``) so repair cost
shows up in the same accounting as query traffic.
"""

from __future__ import annotations

import random
from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Dict, List, Literal, Optional, Set

from ..errors import RoutingError
from ..sim.network import Network
from ..sim.node import BASE_STATION_ID
from ..sim.trace import TREE_REATTACH, NullTracer, Tracer
from .beacons import BEACON_BYTES
from .tree import RoutingTree

__all__ = [
    "build_tree",
    "repair_tree",
    "reattach_tree",
    "RepairReport",
    "ReattachReport",
    "TieBreak",
    "REATTACH_PHASE",
]

#: Accounting phase label for re-attach beacon traffic.
REATTACH_PHASE = "tree-maintenance"

TieBreak = Literal["random", "lowest_id", "nearest", "etx"]


def _default_tie_break(network: Network) -> TieBreak:
    """ETX when link quality is modelled, the classic random pick otherwise."""
    return "etx" if network.link_quality is not None else "random"


def _hop_counts(network: Network) -> Dict[int, int]:
    """BFS hop count from the base station over the alive connectivity graph."""
    hops = {BASE_STATION_ID: 0}
    queue = deque([BASE_STATION_ID])
    while queue:
        current = queue.popleft()
        for neighbour in network.neighbours(current):
            if neighbour not in hops:
                hops[neighbour] = hops[current] + 1
                queue.append(neighbour)
    return hops


def _pick_parent(
    network: Network,
    node_id: int,
    candidates: List[int],
    tie_break: TieBreak,
    rng: random.Random,
) -> int:
    if tie_break == "lowest_id":
        return min(candidates)
    if tie_break == "nearest":
        node = network.nodes[node_id]
        return min(
            candidates,
            key=lambda cand: (node.distance_to(network.nodes[cand]), cand),
        )
    if tie_break == "etx":
        # Lowest expected transmission count; distance then id break exact
        # ETX ties deterministically.
        node = network.nodes[node_id]
        return min(
            candidates,
            key=lambda cand: (
                network.link_etx(node_id, cand),
                node.distance_to(network.nodes[cand]),
                cand,
            ),
        )
    return rng.choice(sorted(candidates))


def build_tree(
    network: Network,
    tie_break: Optional[TieBreak] = None,
    seed: int = 0,
    require_full_coverage: bool = True,
) -> RoutingTree:
    """Build the converged min-hop collection tree for ``network``.

    Parameters
    ----------
    network:
        The deployment; only alive nodes and up links are considered.
    tie_break:
        How to choose among parents with equal hop count (see module doc);
        ``None`` selects ``"etx"`` on a lossy network and ``"random"``
        otherwise.
    seed:
        Seed for the ``"random"`` tie-break (ignored otherwise).
    require_full_coverage:
        When True (default) a :class:`~repro.errors.RoutingError` is raised
        if some alive node cannot reach the base station; when False those
        nodes are silently excluded (used during repair).
    """
    if tie_break is None:
        tie_break = _default_tie_break(network)
    hops = _hop_counts(network)
    alive_ids = {
        node_id for node_id, node in network.nodes.items() if node.alive
    }
    unreachable = alive_ids - set(hops)
    if unreachable and require_full_coverage:
        sample = sorted(unreachable)[:5]
        raise RoutingError(
            f"{len(unreachable)} alive node(s) cannot reach the base "
            f"station, e.g. {sample}; the network is partitioned"
        )
    rng = random.Random(seed)
    parents: Dict[int, int] = {}
    for node_id in sorted(hops):
        if node_id == BASE_STATION_ID:
            continue
        my_hops = hops[node_id]
        candidates = [
            neighbour
            for neighbour in network.neighbours(node_id)
            if hops.get(neighbour, float("inf")) == my_hops - 1
        ]
        if not candidates:
            raise RoutingError(
                f"node {node_id} at hop {my_hops} has no neighbour at hop "
                f"{my_hops - 1}; inconsistent connectivity graph"
            )
        parents[node_id] = _pick_parent(network, node_id, candidates, tie_break, rng)
    return RoutingTree(parents)


@dataclass(frozen=True)
class RepairReport:
    """Outcome of a tree repair after failures."""

    tree: RoutingTree
    #: Alive nodes that are no longer connected to the base station.
    orphaned: frozenset[int]
    #: Nodes whose parent changed relative to the pre-failure tree.
    reparented: frozenset[int]


def repair_tree(
    network: Network,
    old_tree: Optional[RoutingTree] = None,
    tie_break: Optional[TieBreak] = None,
    seed: int = 0,
) -> RepairReport:
    """Re-converge the routing tree after node/link failures (§IV-F).

    CTP keeps working routes untouched and only re-acquires parents along
    broken paths; the converged result is again a min-hop tree over the
    surviving component.  We compute that converged tree, preferring each
    node's old parent whenever it is still an optimal choice (which is what
    "do not repair what is not broken" converges to).
    """
    if tie_break is None:
        tie_break = _default_tie_break(network)
    hops = _hop_counts(network)
    alive_ids = {node_id for node_id, node in network.nodes.items() if node.alive}
    orphaned = frozenset(alive_ids - set(hops) - {BASE_STATION_ID})
    rng = random.Random(seed)
    old_parents = old_tree.as_parent_map() if old_tree is not None else {}
    parents: Dict[int, int] = {}
    reparented: Set[int] = set()
    for node_id in sorted(hops):
        if node_id == BASE_STATION_ID:
            continue
        my_hops = hops[node_id]
        candidates = [
            neighbour
            for neighbour in network.neighbours(node_id)
            if hops.get(neighbour, float("inf")) == my_hops - 1
        ]
        old_parent = old_parents.get(node_id)
        if old_parent is not None and old_parent in candidates:
            parents[node_id] = old_parent
        else:
            parents[node_id] = _pick_parent(network, node_id, candidates, tie_break, rng)
            if old_parent is not None:
                reparented.add(node_id)
    return RepairReport(
        tree=RoutingTree(parents),
        orphaned=orphaned,
        reparented=frozenset(reparented),
    )


@dataclass(frozen=True)
class ReattachReport:
    """Outcome of an incremental self-healing pass."""

    tree: RoutingTree
    #: Detached subtree roots that grafted onto a new parent.
    reattached: frozenset[int]
    #: Nodes that were not in the old tree at all (rejoined or newly placed)
    #: and were adopted into the healed tree.
    adopted: frozenset[int]
    #: Alive nodes with no attached node in radio range after convergence.
    orphaned: frozenset[int]
    #: Probe and reply beacons exchanged (the repair's message cost).
    beacons: int
    #: Probe rounds until convergence (0 when nothing was detached).
    passes: int


def reattach_tree(
    network: Network,
    old_tree: RoutingTree,
    seed: int = 0,
    tracer: Optional[Tracer] = None,
    time_s: float = 0.0,
) -> ReattachReport:
    """Incrementally heal ``old_tree`` after churn (localized beacon exchange).

    Instead of the global re-convergence of :func:`repair_tree`, only the
    *roots* of detached subtrees act: each broadcasts a probe beacon, every
    attached neighbour answers with a reply beacon, and the root grafts onto
    the geometrically nearest responder (strongest-link proxy, ties by id).
    Its whole surviving subtree comes along unchanged — nodes whose parent
    link still works never spend a packet.  Nodes absent from the old tree
    (rejoins at a new position, fresh arrivals) participate as singleton
    subtrees and are adopted the same way.

    Probe rounds repeat until no detached root can make progress; roots left
    over are reported ``orphaned`` (no attached node in radio range).  The
    per-pass probe order is shuffled with ``seed`` — beacon timers in the
    field are not synchronized — which can only affect *which* equally valid
    parent a cascade picks, never whether a node attaches.

    All beacon traffic is charged through the network's channel under the
    :data:`REATTACH_PHASE` accounting label, and one
    :data:`~repro.sim.trace.TREE_REATTACH` trace event is emitted per graft.
    The healed tree keeps surviving parents verbatim, so it may be a few
    hops taller than a fresh :func:`build_tree` — that is the price of
    locality, and exactly what the bench's churn study measures.
    """
    tracer = tracer if tracer is not None else NullTracer()
    alive = {node_id for node_id, node in network.nodes.items() if node.alive}
    old_parents = old_tree.as_parent_map()
    # Parent links that survived the churn: both endpoints alive, link up.
    surviving = {
        child: parent
        for child, parent in old_parents.items()
        if child in alive and parent in alive and network.link_up(child, parent)
    }
    children: Dict[int, List[int]] = defaultdict(list)
    for child, parent in surviving.items():
        children[parent].append(child)
    attached = {BASE_STATION_ID}
    queue = deque([BASE_STATION_ID])
    while queue:
        current = queue.popleft()
        for child in sorted(children[current]):
            if child not in attached:
                attached.add(child)
                queue.append(child)
    parents: Dict[int, int] = dict(surviving)
    detached = alive - attached - {BASE_STATION_ID}
    # A detached node whose parent link survived rides along under its
    # parent; only nodes with no surviving parent probe for themselves.
    pending = sorted(node_id for node_id in detached if node_id not in surviving)
    rng = random.Random(seed)
    reattached: Set[int] = set()
    beacons = 0
    passes = 0
    channel = network.channel
    while pending:
        passes += 1
        progress = False
        order = list(pending)
        rng.shuffle(order)
        still_detached: List[int] = []
        for root_id in order:
            neighbours = sorted(network.neighbours(root_id))
            beacons += 1
            channel.broadcast(root_id, neighbours, BEACON_BYTES, REATTACH_PHASE)
            candidates = [n for n in neighbours if n in attached]
            for candidate in candidates:
                beacons += 1
                channel.unicast(candidate, root_id, BEACON_BYTES, REATTACH_PHASE)
            if not candidates:
                still_detached.append(root_id)
                continue
            node = network.nodes[root_id]
            parent = min(
                candidates,
                key=lambda cand: (node.distance_to(network.nodes[cand]), cand),
            )
            parents[root_id] = parent
            # The root's surviving subtree becomes attached with it.
            subtree = [root_id]
            walk = deque([root_id])
            while walk:
                current = walk.popleft()
                for child in sorted(children[current]):
                    if child in detached and child not in attached:
                        subtree.append(child)
                        walk.append(child)
            attached.update(subtree)
            reattached.add(root_id)
            progress = True
            tracer.emit(
                time_s,
                root_id,
                TREE_REATTACH,
                parent=parent,
                subtree_size=len(subtree),
                candidates=len(candidates),
            )
        if not progress:
            break
        pending = still_detached
    old_members = set(old_tree.node_ids)
    adopted = frozenset(node_id for node_id in attached if node_id not in old_members)
    orphaned = frozenset(alive - attached - {BASE_STATION_ID})
    final_parents = {
        child: parent for child, parent in parents.items() if child in attached
    }
    return ReattachReport(
        tree=RoutingTree(final_parents),
        reattached=frozenset(reattached),
        adopted=adopted,
        orphaned=orphaned,
        beacons=beacons,
        passes=passes,
    )
