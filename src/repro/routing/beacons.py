"""Distributed beaconing (the distance-vector part of CTP).

The paper relies on the TinyOS collection-tree protocol: "Based on a periodic
beaconing mechanism, each node maintains a parent that minimizes the hop
count to the base station" (§III).  This module implements that mechanism as
actual message exchange under the discrete-event kernel: every node
periodically broadcasts its current hop count; neighbours adopt the sender as
parent when that improves (or repairs) their own route.

For experiments that only need the *converged* tree, the synchronous
:func:`repro.routing.ctp.build_tree` (one BFS) is equivalent and much faster;
the DES beaconing exists so the convergence/repair behaviour itself can be
studied and tested (§IV-F error handling).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import RoutingError
from ..sim.kernel import Environment
from ..sim.network import Network
from ..sim.node import BASE_STATION_ID

__all__ = ["BeaconConfig", "BeaconProtocol"]

#: Payload size of one beacon frame in bytes (node id + hop count + CRC-ish).
BEACON_BYTES = 6


@dataclass(frozen=True)
class BeaconConfig:
    """Timing parameters of the beaconing process."""

    interval_s: float = 1.0
    #: Small per-node phase offset so beacons do not all fire at the same
    #: instant (deterministic: derived from the node id).
    stagger_s: float = 0.01
    rounds: int = 0  # 0 = run until the environment deadline


@dataclass
class _RouteState:
    """What one node knows about its route to the base station."""

    hops: float = math.inf
    parent: Optional[int] = None


class BeaconProtocol:
    """Runs distance-vector beaconing over a network inside a DES environment.

    Usage::

        env = Environment()
        protocol = BeaconProtocol(env, network)
        protocol.start()
        env.run(until=10.0)          # let it converge
        tree = protocol.current_tree()
    """

    def __init__(self, env: Environment, network: Network, config: BeaconConfig = BeaconConfig()):
        self.env = env
        self.network = network
        self.config = config
        self.state: Dict[int, _RouteState] = {
            node_id: _RouteState() for node_id in network.nodes
        }
        self.state[BASE_STATION_ID] = _RouteState(hops=0, parent=None)
        self.beacons_sent = 0
        self._started = False

    def start(self) -> None:
        """Spawn one beaconing process per alive node."""
        if self._started:
            raise RoutingError("beacon protocol already started")
        self._started = True
        for node_id, node in sorted(self.network.nodes.items()):
            if node.alive:
                self.env.process(self._beacon_loop(node_id))

    def _beacon_loop(self, node_id: int):
        """Periodically broadcast this node's hop count to its neighbours."""
        offset = (node_id % 97) * self.config.stagger_s
        yield self.env.timeout(offset)
        rounds_done = 0
        while self.config.rounds == 0 or rounds_done < self.config.rounds:
            node = self.network.nodes[node_id]
            if not node.alive:
                return
            my_state = self.state[node_id]
            if my_state.hops < math.inf:
                self._broadcast_beacon(node_id, my_state.hops)
            rounds_done += 1
            yield self.env.timeout(self.config.interval_s)

    def _broadcast_beacon(self, node_id: int, hops: float) -> None:
        """Deliver one beacon to every current neighbour, updating routes."""
        self.beacons_sent += 1
        try:
            neighbours = self.network.neighbours(node_id)
        except Exception:
            return
        for neighbour in sorted(neighbours):
            self._on_beacon(neighbour, sender=node_id, sender_hops=hops)

    def _on_beacon(self, node_id: int, sender: int, sender_hops: float) -> None:
        """Adopt the sender as parent if it offers a strictly better route."""
        if node_id == BASE_STATION_ID:
            return
        state = self.state[node_id]
        offered = sender_hops + 1
        if offered < state.hops or (offered == state.hops and state.parent is None):
            state.hops = offered
            state.parent = sender

    # -- inspection ------------------------------------------------------------

    def converged(self) -> bool:
        """True once every alive non-root node has a parent."""
        for node_id, node in self.network.nodes.items():
            if not node.alive or node_id == BASE_STATION_ID:
                continue
            if self.state[node_id].parent is None:
                return False
        return True

    def invalidate(self, node_id: int) -> None:
        """Forget a node's route (called when its parent/link failed).

        The next beacon round will re-acquire a parent; this is the repair
        path of §IV-F.
        """
        if node_id == BASE_STATION_ID:
            return
        self.state[node_id] = _RouteState()

    def current_tree(self):
        """Snapshot the converged parents as a :class:`RoutingTree`.

        Raises :class:`~repro.errors.RoutingError` if any alive node still
        lacks a route (not converged / network partitioned).
        """
        from .tree import RoutingTree

        parents: Dict[int, int] = {}
        for node_id, node in self.network.nodes.items():
            if not node.alive or node_id == BASE_STATION_ID:
                continue
            state = self.state[node_id]
            if state.parent is None:
                raise RoutingError(
                    f"node {node_id} has no route to the base station "
                    "(protocol not converged or network partitioned)"
                )
            parents[node_id] = state.parent
        return RoutingTree(parents)
