"""Query dissemination by broadcast flooding.

§III: "A query is input at the base station.  The network then disseminates
the query by a simple broadcast flooding."  Every node that hears the query
for the first time rebroadcasts it exactly once, so a flood over *n*
reachable nodes costs *n* transmission bursts of the query's size (the base
station's initial broadcast plus one rebroadcast per sensor node).

Both join methods pay exactly this cost, so the comparison plots exclude it;
it is recorded under its own phase label (``"query-dissemination"``) and can
be included via the report's phase filters.
"""

from __future__ import annotations

from collections import deque
from typing import Set

from ..sim.network import Network
from ..sim.node import BASE_STATION_ID

__all__ = ["flood_query", "QUERY_DISSEMINATION_PHASE"]

QUERY_DISSEMINATION_PHASE = "query-dissemination"


def flood_query(network: Network, query_bytes: int, phase: str = QUERY_DISSEMINATION_PHASE) -> Set[int]:
    """Flood a query of ``query_bytes`` from the base station.

    Every reachable node rebroadcasts once (classic flooding with duplicate
    suppression).  Returns the set of node ids that received the query.
    Transmissions are charged through the network's channel under ``phase``.
    """
    if query_bytes < 0:
        raise ValueError(f"negative query size: {query_bytes}")
    reached: Set[int] = {BASE_STATION_ID}
    if query_bytes == 0:
        # Nothing to transmit, nothing propagates.
        return reached
    queue = deque([BASE_STATION_ID])
    while queue:
        sender = queue.popleft()
        listeners = sorted(network.neighbours(sender))
        network.channel.broadcast(sender, listeners, query_bytes, phase)
        for listener in listeners:
            if listener not in reached:
                reached.add(listener)
                queue.append(listener)
    return reached
