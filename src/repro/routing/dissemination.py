"""Query dissemination by broadcast flooding.

§III: "A query is input at the base station.  The network then disseminates
the query by a simple broadcast flooding."  Every node that hears the query
for the first time rebroadcasts it exactly once, so a flood over *n*
reachable nodes costs *n* transmission bursts of the query's size (the base
station's initial broadcast plus one rebroadcast per sensor node).

Both join methods pay exactly this cost, so the comparison plots exclude it;
it is recorded under its own phase label (``"query-dissemination"``) and can
be included via the report's phase filters.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence, Set

from ..sim.network import Network
from ..sim.node import BASE_STATION_ID

__all__ = [
    "flood_query",
    "flood_batch",
    "QUERY_DISSEMINATION_PHASE",
    "PIGGYBACK_HEADER_BYTES",
]

QUERY_DISSEMINATION_PHASE = "query-dissemination"

#: Per-item framing overhead when several payloads share one flood: each
#: piggybacked item is prefixed by a length/id header so receivers can
#: split the combined packet back into its constituents.
PIGGYBACK_HEADER_BYTES = 2


def flood_query(network: Network, query_bytes: int, phase: str = QUERY_DISSEMINATION_PHASE) -> Set[int]:
    """Flood a query of ``query_bytes`` from the base station.

    Every reachable node rebroadcasts once (classic flooding with duplicate
    suppression).  Returns the set of node ids that received the query.
    Transmissions are charged through the network's channel under ``phase``.
    """
    if query_bytes < 0:
        raise ValueError(f"negative query size: {query_bytes}")
    reached: Set[int] = {BASE_STATION_ID}
    if query_bytes == 0:
        # Nothing to transmit, nothing propagates.
        return reached
    queue = deque([BASE_STATION_ID])
    while queue:
        sender = queue.popleft()
        listeners = sorted(network.neighbours(sender))
        network.channel.broadcast(sender, listeners, query_bytes, phase)
        for listener in listeners:
            if listener not in reached:
                reached.add(listener)
                queue.append(listener)
    return reached


def flood_batch(
    network: Network,
    item_bytes: Sequence[int],
    phase: str = QUERY_DISSEMINATION_PHASE,
    header_bytes: int = PIGGYBACK_HEADER_BYTES,
) -> Set[int]:
    """Flood several payloads piggybacked in *one* dissemination wave.

    A multi-query broker admits a batch of queries at once; flooding each
    query (or each share group's composed filter) separately costs one
    whole wave per item.  Piggybacking concatenates the items — plus a
    small per-item header when there is more than one — into a single
    payload that rides one flood, so the per-hop broadcast count is paid
    once for the entire batch and only the payload grows.  With one item
    this degrades exactly to :func:`flood_query` (no header).

    Returns the set of node ids reached.  Zero-size items are dropped; an
    all-empty batch transmits nothing.
    """
    if header_bytes < 0:
        raise ValueError(f"negative header size: {header_bytes}")
    sizes = []
    for size in item_bytes:
        if size < 0:
            raise ValueError(f"negative item size: {size}")
        if size > 0:
            sizes.append(size)
    if not sizes:
        return {BASE_STATION_ID}
    payload = sum(sizes)
    if len(sizes) > 1:
        payload += header_bytes * len(sizes)
    return flood_query(network, payload, phase)
