"""Grid-cluster-head routing over the CTP backbone.

At 10k-100k nodes the flat min-hop tree grows hundreds of interior
forwarders, and every one of them re-broadcasts during filter dissemination
(§IV-C's Selective Filter Dissemination prunes by *content*, but the number
of potential forwarders is still the number of interior nodes).  Hierarchical
sensor-network designs — LEACH-style cluster heads, SART's hierarchical
aggregation (arXiv:1209.5430), progressive processing over nested region
hierarchies (arXiv:0906.0252) — flatten that cost by electing one head per
region and letting ordinary nodes talk through their head.

This module implements the grid variant that falls out of the spatial index
(:mod:`repro.sim.spatial`): the plane is already partitioned into cells of
radio-range pitch, so each occupied cell elects the alive node nearest the
cell centre as its *cluster head* (ties by lowest id).  Heads keep their
min-hop CTP parents — they form the backbone — while every other node
re-parents onto its cell head when that is safe:

* the head is a radio neighbour (cells have diagonal r·√2 > r, so same-cell
  reachability is checked, never assumed), and
* the head is strictly closer to the base station (BFS hop count).

The strict hop-count guard gives two properties for free.  *Acyclicity*:
every edge — backbone or member→head — strictly decreases the BFS hop
count, so no cycle can close (:class:`~repro.routing.tree.RoutingTree`
re-validates at construction anyway).  *Path optimality*: a re-parented
member routes over ``1 + hops(head) <= hops(member)`` hops, so clustering
never lengthens a collection path; what it changes is the *shape* — children
concentrate onto heads, shrinking the set of interior forwarders that filter
dissemination has to fan through, at the price of larger head fan-in (which
shows up as schedule latency in the scale study — the classic aggregation
tradeoff).

Members whose head is unreachable or hop-ineligible simply keep their CTP
parent, so the cluster tree is always total and always valid — on sparse
graphs it degrades gracefully toward the flat tree.

:func:`build_routing_tree` is the mode selector the rest of the stack
(deployment config, broker, verify harness, bench experiments) goes
through: ``"flat"`` = plain CTP, ``"cluster"`` = this module.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import RoutingError
from ..sim.network import Network
from ..sim.node import BASE_STATION_ID
from ..sim.spatial import grid_cell
from .ctp import TieBreak, build_tree
from .tree import RoutingTree

__all__ = [
    "ROUTING_MODES",
    "ClusterLayout",
    "build_cluster_tree",
    "build_routing_tree",
    "elect_heads",
]

#: Recognised routing-tree construction modes.
ROUTING_MODES = ("flat", "cluster")


@dataclass(frozen=True)
class ClusterLayout:
    """A cluster routing tree plus the head/member structure behind it."""

    #: The final routing tree (heads on CTP backbone, members under heads).
    tree: RoutingTree
    #: Elected cluster-head node ids.
    heads: frozenset[int]
    #: member node id -> head node id, for members actually re-parented.
    members: Dict[int, int]
    #: Grid pitch the heads were elected on (= radio range by default).
    cell_m: float

    @property
    def head_count(self) -> int:
        return len(self.heads)

    @property
    def reparented_count(self) -> int:
        return len(self.members)

    def mean_cluster_size(self) -> float:
        """Mean number of re-parented members per head (0 when no heads)."""
        if not self.heads:
            return 0.0
        return len(self.members) / len(self.heads)


def _bfs_hops(network: Network) -> Dict[int, int]:
    """Hop count from the base station over the alive connectivity graph."""
    hops = {BASE_STATION_ID: 0}
    queue = deque([BASE_STATION_ID])
    while queue:
        current = queue.popleft()
        for neighbour in network.neighbours(current):
            if neighbour not in hops:
                hops[neighbour] = hops[current] + 1
                queue.append(neighbour)
    return hops


def elect_heads(
    network: Network, cell_m: Optional[float] = None
) -> Dict[Tuple[int, int], int]:
    """Elect one cluster head per occupied grid cell.

    The head of a cell is the alive non-base-station node closest to the
    cell centre (squared distance; ties broken by lowest id) — a
    deterministic stand-in for the rotating elections of LEACH-style
    protocols, which keeps every run replayable.
    """
    pitch = float(cell_m if cell_m is not None else network.radio_range_m)
    if pitch <= 0:
        raise RoutingError(f"cluster cell size must be positive, got {pitch}")
    best: Dict[Tuple[int, int], Tuple[float, int]] = {}
    for node in network.nodes.values():
        if not node.alive or node.node_id == BASE_STATION_ID:
            continue
        cell = grid_cell(node.x, node.y, pitch)
        cx = (cell[0] + 0.5) * pitch
        cy = (cell[1] + 0.5) * pitch
        dx = node.x - cx
        dy = node.y - cy
        key = (dx * dx + dy * dy, node.node_id)
        if cell not in best or key < best[cell]:
            best[cell] = key
    return {cell: node_id for cell, (_, node_id) in best.items()}


def build_cluster_tree(
    network: Network,
    tie_break: Optional[TieBreak] = None,
    seed: int = 0,
    cell_m: Optional[float] = None,
) -> ClusterLayout:
    """Build the cluster routing tree: CTP backbone + per-cell head groups.

    Same signature contract as :func:`~repro.routing.ctp.build_tree` (the
    backbone is built by it), so the two modes are interchangeable wherever
    a tree seed/tie-break is threaded through.
    """
    pitch = float(cell_m if cell_m is not None else network.radio_range_m)
    backbone = build_tree(network, tie_break=tie_break, seed=seed)
    head_of_cell = elect_heads(network, pitch)
    heads = frozenset(head_of_cell.values())
    hops = _bfs_hops(network)
    parents = dict(backbone.as_parent_map())
    members: Dict[int, int] = {}
    for node_id in sorted(parents):
        if node_id in heads:
            continue
        node = network.nodes[node_id]
        head = head_of_cell.get(grid_cell(node.x, node.y, pitch))
        if head is None or head == parents[node_id]:
            continue
        # Reachability is checked, never assumed: a cell's diagonal exceeds
        # the radio range.  The strict hop guard keeps the graph acyclic AND
        # path-optimal: the member's route becomes 1 + hops(head), which
        # never exceeds its flat min-hop distance.
        if network.link_up(node_id, head) and hops[head] < hops[node_id]:
            parents[node_id] = head
            members[node_id] = head
    return ClusterLayout(
        tree=RoutingTree(parents),
        heads=heads,
        members=members,
        cell_m=pitch,
    )


def build_routing_tree(
    network: Network,
    routing: str = "flat",
    tie_break: Optional[TieBreak] = None,
    seed: int = 0,
) -> RoutingTree:
    """Build a routing tree in the requested mode (the stack-wide selector).

    ``"flat"`` is the paper's plain min-hop CTP tree; ``"cluster"`` layers
    grid-cell cluster heads over the same backbone.  Unknown modes raise
    :class:`~repro.errors.RoutingError` (the deployment config validates the
    same set, so this only fires on hand-rolled call sites).
    """
    if routing == "flat":
        return build_tree(network, tie_break=tie_break, seed=seed)
    if routing == "cluster":
        return build_cluster_tree(network, tie_break=tie_break, seed=seed).tree
    raise RoutingError(f"unknown routing mode: {routing!r}")
