"""Routing substrate: collection tree (CTP-style), beaconing, flooding."""

from .beacons import BeaconConfig, BeaconProtocol
from .cluster import (
    ROUTING_MODES,
    ClusterLayout,
    build_cluster_tree,
    build_routing_tree,
)
from .ctp import RepairReport, build_tree, repair_tree
from .dissemination import QUERY_DISSEMINATION_PHASE, flood_query
from .tree import RoutingTree

__all__ = [
    "BeaconConfig",
    "BeaconProtocol",
    "ClusterLayout",
    "QUERY_DISSEMINATION_PHASE",
    "ROUTING_MODES",
    "RepairReport",
    "RoutingTree",
    "build_cluster_tree",
    "build_routing_tree",
    "build_tree",
    "flood_query",
    "repair_tree",
]
