"""Routing substrate: collection tree (CTP-style), beaconing, flooding."""

from .beacons import BeaconConfig, BeaconProtocol
from .ctp import RepairReport, build_tree, repair_tree
from .dissemination import QUERY_DISSEMINATION_PHASE, flood_query
from .tree import RoutingTree

__all__ = [
    "BeaconConfig",
    "BeaconProtocol",
    "QUERY_DISSEMINATION_PHASE",
    "RepairReport",
    "RoutingTree",
    "build_tree",
    "flood_query",
    "repair_tree",
]
