"""In-flight fault injection and mid-query recovery on the DES engine (§IV-F).

The acceptance scenario: a node crashes mid-collection, the base station
detects the stall via its phase watchdog, CTP repairs the tree, the query
re-executes on the same kernel timeline, and the outcome accounts for the
aborted attempt's cost and the completeness of the delivered result.
"""

import pytest

from repro.data.relations import SensorWorld
from repro.errors import ExecutionAborted
from repro.joins.base import ExecutionContext, oracle_result
from repro.joins.des_sensjoin import DesSensJoin, RecoveryPolicy
from repro.joins.runner import run_snapshot
from repro.joins.sensjoin import PHASE_COLLECTION
from repro.routing.ctp import build_tree
from repro.sim.faults import Fault, FaultPlan, LOSS_BURST, NODE_CRASH
from repro.sim.network import DeploymentConfig, deploy_uniform
from repro.sim.node import BASE_STATION_ID
from repro.sim.trace import FAULT_INJECT, PHASE_TIMEOUT, TREE_REPAIR, ListTracer

SIDE = 332.0
SEED = 21

#: Before the first send of phase 1a (serialisation takes ~20 ms/packet),
#: i.e. genuinely mid-collection: the victim dies holding its subtree's data.
EARLY_CRASH_S = 0.001


def fresh_deployment(node_count=150, seed=SEED):
    config = DeploymentConfig(node_count=node_count, area_side_m=SIDE, seed=seed)
    network = deploy_uniform(config)
    world = SensorWorld.homogeneous(network, seed=seed, area_side_m=SIDE)
    tree = build_tree(network, seed=seed)
    return network, world, tree


def subtree_size(tree, root):
    count = 1
    for child in tree.children(root):
        count += subtree_size(tree, child)
    return count


def pick_victim(tree):
    """The base-station child with the largest subtree: its crash severs
    the most data and is guaranteed to starve the collection phase."""
    return max(tree.children(BASE_STATION_ID), key=lambda c: subtree_size(tree, c))


class TestMidCollectionCrash:
    @pytest.fixture()
    def recovered(self, tail_query):
        network, world, tree = fresh_deployment()
        victim = pick_victim(tree)
        plan = FaultPlan((Fault(EARLY_CRASH_S, NODE_CRASH, node_a=victim),))
        tracer = ListTracer()
        engine = DesSensJoin(fault_plan=plan, tracer=tracer, repair_seed=SEED)
        world.take_snapshot(0.0)
        oracle = oracle_result(
            ExecutionContext(network=network, tree=tree, world=world, query=tail_query(1.0))
        )
        outcome = run_snapshot(
            network, world, tail_query(1.0), engine, tree=tree, tree_seed=SEED
        )
        return network, victim, tracer, oracle, outcome

    def test_detects_repairs_and_completes(self, recovered):
        network, victim, tracer, oracle, outcome = recovered
        assert outcome.details["partial"] == 0.0  # completed, not degraded
        assert outcome.details["retries"] >= 1.0
        assert outcome.details["repairs"] >= 1.0
        assert outcome.details["faults_applied"] == 1.0
        assert not network.nodes[victim].alive

    def test_trace_tells_the_recovery_story(self, recovered):
        _, victim, tracer, _, _ = recovered
        injected = tracer.filter(kind=FAULT_INJECT)
        assert [e.node_id for e in injected] == [victim]
        timeouts = tracer.filter(kind=PHASE_TIMEOUT)
        assert timeouts and timeouts[0].node_id == BASE_STATION_ID
        assert timeouts[0].detail["phase"] == PHASE_COLLECTION
        assert timeouts[0].detail["waiting"] >= 1
        repairs = tracer.filter(kind=TREE_REPAIR)
        assert repairs
        # The story unfolds in order: inject, then timeout, then repair.
        assert injected[0].time <= timeouts[0].time <= repairs[0].time

    def test_aborted_attempt_cost_is_charged(self, recovered):
        network, _, _, _, outcome = recovered
        assert outcome.details["aborted_tx_packets"] > 0
        assert outcome.details["aborted_energy"] > 0.0
        # The aborted share stays in the cumulative ledgers and stats.
        assert network.total_energy() >= outcome.details["aborted_energy"]
        assert outcome.stats.total_tx_packets() > outcome.details["aborted_tx_packets"]

    def test_completeness_accounting(self, recovered, tail_query):
        _, victim, _, oracle, outcome = recovered
        assert outcome.details["recall"] == pytest.approx(
            outcome.result.match_count / oracle.match_count
        )
        assert 0.0 < outcome.details["recall"] <= 1.0
        assert victim not in outcome.result.all_contributing_nodes()
        if victim in oracle.all_contributing_nodes():
            assert outcome.details["recall"] < 1.0
        assert outcome.details["subtrees_delivered"] <= outcome.details["subtrees_total"]
        assert outcome.details["subtrees_total"] >= 1.0


def test_deterministic_for_fixed_plan(tail_query):
    outcomes = []
    for _ in range(2):
        network, world, tree = fresh_deployment()
        victim = pick_victim(tree)
        plan = FaultPlan((Fault(EARLY_CRASH_S, NODE_CRASH, node_a=victim),))
        engine = DesSensJoin(fault_plan=plan, repair_seed=SEED)
        outcomes.append(
            run_snapshot(network, world, tail_query(1.0), engine, tree=tree, tree_seed=SEED)
        )
    first, second = outcomes
    assert first.details == second.details
    assert first.result.signature() == second.result.signature()
    assert first.stats.total_tx_packets() == second.stats.total_tx_packets()
    assert first.response_time_s == second.response_time_s


def test_empty_plan_matches_plain_engine(tail_query):
    network_a, world_a, tree_a = fresh_deployment()
    plain = run_snapshot(
        network_a, world_a, tail_query(1.0), DesSensJoin(), tree=tree_a, tree_seed=SEED
    )
    network_b, world_b, tree_b = fresh_deployment()
    with_empty = run_snapshot(
        network_b, world_b, tail_query(1.0),
        DesSensJoin(fault_plan=FaultPlan.empty()), tree=tree_b, tree_seed=SEED,
    )
    assert plain.result.signature() == with_empty.result.signature()
    assert plain.per_phase_transmissions() == with_empty.per_phase_transmissions()
    assert plain.response_time_s == with_empty.response_time_s
    assert "retries" not in with_empty.details  # legacy path, no recovery keys


def test_graceful_degradation_returns_partial(tail_query):
    network, world, tree = fresh_deployment()
    victim = pick_victim(tree)
    plan = FaultPlan((Fault(EARLY_CRASH_S, NODE_CRASH, node_a=victim),))
    engine = DesSensJoin(
        fault_plan=plan,
        recovery=RecoveryPolicy(max_retries=0, on_exhaustion="partial"),
        repair_seed=SEED,
    )
    outcome = run_snapshot(network, world, tail_query(1.0), engine, tree=tree, tree_seed=SEED)
    assert outcome.details["partial"] == 1.0
    assert outcome.details["retries"] == 1.0
    assert outcome.details["repairs"] == 0.0  # no retry budget, no repair
    assert outcome.details["recall"] <= 1.0
    assert outcome.details["subtrees_delivered"] < outcome.details["subtrees_total"]


def test_exhaustion_can_raise(tail_query):
    network, world, tree = fresh_deployment()
    victim = pick_victim(tree)
    plan = FaultPlan((Fault(EARLY_CRASH_S, NODE_CRASH, node_a=victim),))
    engine = DesSensJoin(
        fault_plan=plan,
        recovery=RecoveryPolicy(max_retries=0, on_exhaustion="raise"),
        repair_seed=SEED,
    )
    with pytest.raises(ExecutionAborted, match="did not complete"):
        run_snapshot(network, world, tail_query(1.0), engine, tree=tree, tree_seed=SEED)


def test_loss_burst_absorbed_by_arq(tail_query):
    network, world, tree = fresh_deployment()
    plan = FaultPlan((
        Fault(0.0, LOSS_BURST, duration_s=1000.0, loss_rate=0.5),
    ))
    engine = DesSensJoin(fault_plan=plan, repair_seed=SEED)
    outcome = run_snapshot(network, world, tail_query(1.0), engine, tree=tree, tree_seed=SEED)
    # The link layer rides out the burst: no protocol failure, full result,
    # but the retransmissions show up in the accounting.
    assert outcome.details["retries"] == 0.0
    assert outcome.details["recall"] == 1.0
    assert outcome.stats.total_retx_packets() > 0
    clean_network, clean_world, clean_tree = fresh_deployment()
    clean = run_snapshot(
        clean_network, clean_world, tail_query(1.0), DesSensJoin(),
        tree=clean_tree, tree_seed=SEED,
    )
    assert outcome.result.signature() == clean.result.signature()


def test_recovery_policy_validation():
    with pytest.raises(ValueError):
        RecoveryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RecoveryPolicy(phase_timeout_s=0.0)
    with pytest.raises(ValueError):
        RecoveryPolicy(backoff_s=-0.1)
    with pytest.raises(ValueError):
        RecoveryPolicy(backoff_factor=0.5)
    with pytest.raises(ValueError):
        RecoveryPolicy(on_exhaustion="shrug")
