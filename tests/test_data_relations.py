"""SensorWorld (snapshots, relation membership) tests."""

import pytest

from repro.data.relations import RELATION_SENSORS, SensorWorld, default_fields
from repro.sim.node import BASE_STATION_ID


def test_homogeneous_world_membership(small_network):
    world = SensorWorld.homogeneous(small_network, seed=1)
    assert world.relation_names == [RELATION_SENSORS]
    assert world.members(RELATION_SENSORS) == frozenset(small_network.sensor_node_ids)
    for node_id in small_network.sensor_node_ids:
        assert small_network.nodes[node_id].belongs_to(RELATION_SENSORS)


def test_snapshot_fills_every_reading(small_world, small_network):
    for node_id in small_network.sensor_node_ids:
        readings = small_network.nodes[node_id].readings
        for name in ("temp", "hum", "pres", "light", "x", "y"):
            assert name in readings
        assert readings["x"] == small_network.nodes[node_id].x


def test_snapshot_is_deterministic(small_network):
    world = SensorWorld.homogeneous(small_network, seed=1)
    world.take_snapshot(0.0)
    first = {n: dict(small_network.nodes[n].readings) for n in small_network.sensor_node_ids}
    world.take_snapshot(0.0)
    second = {n: dict(small_network.nodes[n].readings) for n in small_network.sensor_node_ids}
    assert first == second


def test_reading_matrix_requires_snapshot(small_network):
    world = SensorWorld.homogeneous(small_network, seed=1)
    with pytest.raises(RuntimeError):
        world.reading_matrix("temp")
    world.take_snapshot(0.0)
    matrix = world.reading_matrix("temp")
    assert matrix.shape == (len(small_network.sensor_node_ids), 2)


def test_unknown_relation_raises(small_world):
    with pytest.raises(KeyError, match="known"):
        small_world.members("nope")


def test_base_station_cannot_join_relation(small_network):
    with pytest.raises(ValueError):
        SensorWorld(
            small_network,
            default_fields(400.0),
            relations={"bad": [BASE_STATION_ID]},
        )


def test_unknown_member_rejected(small_network):
    with pytest.raises(ValueError, match="unknown node"):
        SensorWorld(small_network, default_fields(400.0), relations={"r": [99999]})


def test_two_relations_fractional_split(small_network):
    world = SensorWorld.two_relations(small_network, split=0.3, seed=2)
    a = world.members("rel_a")
    b = world.members("rel_b")
    assert a | b == frozenset(small_network.sensor_node_ids)
    assert not (a & b)
    assert 0.15 < len(a) / len(small_network.sensor_node_ids) < 0.45


def test_two_relations_callable_split(small_network):
    side = max(node.x for node in small_network.nodes.values())

    def split(node):
        return "rel_a" if node.x < side / 2 else "rel_b"

    world = SensorWorld.two_relations(small_network, split=split, seed=2)
    for node_id in world.members("rel_a"):
        assert small_network.nodes[node_id].x < side / 2


def test_two_relations_bad_split_name(small_network):
    with pytest.raises(ValueError, match="unknown relation"):
        SensorWorld.two_relations(small_network, split=lambda node: "oops")


def test_humidity_anticorrelates_with_temperature():
    # The coupling only shows once the area spans several correlation
    # lengths (within a small window the temperature barely varies).
    import numpy as np

    fields = default_fields(2000.0, seed=5, length_scale=150.0)
    rng = np.random.default_rng(0)
    xs, ys = rng.uniform(0, 2000, 1500), rng.uniform(0, 2000, 1500)
    temp = fields["temp"].sample(xs, ys)
    hum = fields["hum"].sample(xs, ys)
    assert np.corrcoef(temp, hum)[0, 1] < -0.3


def test_snapshot_time_recorded(small_world):
    assert small_world.snapshot_time == 0.0
    small_world.take_snapshot(42.0)
    assert small_world.snapshot_time == 42.0
