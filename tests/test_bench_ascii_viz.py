"""ASCII visualisation tests."""

import pytest

from repro.bench.ascii_viz import (
    render_field,
    render_histogram,
    render_node_load,
    render_tree_depths,
)


def test_render_field_shape_and_legend(small_network, small_world):
    text = render_field(small_network, "temp", width=40, height=12)
    lines = text.splitlines()
    assert len(lines) == 13  # 12 rows + legend
    assert all(len(line) == 40 for line in lines[:-1])
    assert "temp" in lines[-1]


def test_render_field_uses_full_ramp_on_gradient(small_network, small_world):
    text = render_field(small_network, "temp", width=40, height=12)
    # Both light and dark ends appear for a spatially varying field.
    body = "".join(text.splitlines()[:-1])
    assert "@" in body or "%" in body
    assert "." in body or ":" in body


def test_render_node_load(small_network, small_world):
    loads = {node_id: node_id % 7 for node_id in small_network.sensor_node_ids}
    text = render_node_load(small_network, loads, width=30, height=10)
    assert "tx packets" in text


def test_render_tree_depths(small_network, small_tree, small_world):
    text = render_tree_depths(small_network, small_tree, width=30, height=10)
    assert "hop count 0.." in text
    # The base-station cell renders depth 0 somewhere.
    assert "0" in text


def test_render_histogram():
    text = render_histogram([("alpha", 10.0), ("beta", 5.0)], width=10)
    lines = text.splitlines()
    assert len(lines) == 2
    assert lines[0].count("#") == 10
    assert lines[1].count("#") == 5
    assert "alpha" in lines[0]


def test_render_histogram_empty():
    assert "nothing" in render_histogram([])


def test_missing_sensor_renders_empty(small_network):
    # No snapshot taken on a fresh copy: readings lack the sensor.
    for node in small_network.nodes.values():
        node.readings = {}
    assert "(no nodes to draw)" in render_field(small_network, "temp")
