"""Bit-level I/O tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codec.bits import BitReader, BitWriter, Bits
from repro.errors import CodecError


class TestBits:
    def test_from_string_roundtrip(self):
        bits = Bits.from_string("10110")
        assert len(bits) == 5
        assert bits.value == 0b10110
        assert repr(bits) == "Bits('10110')"

    def test_empty(self):
        bits = Bits()
        assert len(bits) == 0 and bits.byte_length == 0 and bits.to_bytes() == b""

    def test_byte_length_rounds_up(self):
        assert Bits.from_string("1" * 8).byte_length == 1
        assert Bits.from_string("1" * 9).byte_length == 2

    def test_to_bytes_left_aligned(self):
        assert Bits.from_string("1").to_bytes() == b"\x80"
        assert Bits.from_string("00000001").to_bytes() == b"\x01"

    def test_validation(self):
        with pytest.raises(CodecError):
            Bits(4, 2)  # 100 does not fit in 2 bits
        with pytest.raises(CodecError):
            Bits(-1, 2)
        with pytest.raises(CodecError):
            Bits.from_string("012")

    def test_equality_includes_length(self):
        assert Bits.from_string("01") != Bits.from_string("1")
        assert Bits.from_string("101") == Bits.from_string("101")
        assert hash(Bits.from_string("101")) == hash(Bits.from_string("101"))


class TestWriterReader:
    def test_writer_accumulates(self):
        writer = BitWriter()
        writer.write_bit(1)
        writer.write_uint(0b0110, 4)
        writer.write_bits(Bits.from_string("01"))
        assert writer.getvalue() == Bits.from_string("1011001")
        assert len(writer) == 7

    def test_writer_validation(self):
        writer = BitWriter()
        with pytest.raises(CodecError):
            writer.write_bit(2)
        with pytest.raises(CodecError):
            writer.write_uint(8, 3)
        with pytest.raises(CodecError):
            writer.write_uint(1, -1)

    def test_reader_consumes_in_order(self):
        reader = BitReader(Bits.from_string("1011001"))
        assert reader.read_bit() == 1
        assert reader.read_uint(4) == 0b0110
        assert reader.read_uint(2) == 0b01
        assert reader.at_end()

    def test_reader_underrun(self):
        reader = BitReader(Bits.from_string("101"))
        reader.read_uint(2)
        with pytest.raises(CodecError, match="underrun"):
            reader.read_uint(2)

    def test_reader_zero_width_reads(self):
        reader = BitReader(Bits.from_string("1"))
        assert reader.read_uint(0) == 0
        assert reader.remaining == 1

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=2**16 - 1),
                              st.integers(min_value=16, max_value=20)), max_size=30))
    def test_roundtrip_random_fields(self, fields):
        writer = BitWriter()
        for value, width in fields:
            writer.write_uint(value, width)
        reader = BitReader(writer.getvalue())
        for value, width in fields:
            assert reader.read_uint(width) == value
        assert reader.at_end()
