"""RoutingTree structure and traversal tests."""

import pytest

from repro.errors import RoutingError
from repro.routing.tree import RoutingTree


@pytest.fixture()
def simple_tree():
    #        0
    #      /   \
    #     1     2
    #    / \     \
    #   3   4     5
    #  /
    # 6
    return RoutingTree({1: 0, 2: 0, 3: 1, 4: 1, 5: 2, 6: 3})


def test_parent_and_children(simple_tree):
    assert simple_tree.parent(3) == 1
    assert simple_tree.children(1) == (3, 4)
    assert simple_tree.children(6) == ()
    assert simple_tree.is_leaf(6) and not simple_tree.is_leaf(1)


def test_root_has_no_parent(simple_tree):
    with pytest.raises(RoutingError):
        simple_tree.parent(0)


def test_depths_and_height(simple_tree):
    assert simple_tree.depth(0) == 0
    assert simple_tree.depth(6) == 3
    assert simple_tree.height == 3


def test_root_with_parent_rejected():
    with pytest.raises(RoutingError):
        RoutingTree({0: 1, 1: 2}, root=0)


def test_unknown_parent_rejected():
    with pytest.raises(RoutingError):
        RoutingTree({1: 0, 2: 99})


def test_cycle_detected():
    with pytest.raises(RoutingError):
        RoutingTree({1: 2, 2: 1})


def test_post_order_children_before_parents(simple_tree):
    order = list(simple_tree.post_order())
    position = {node: i for i, node in enumerate(order)}
    for node in simple_tree.node_ids:
        if node != simple_tree.root:
            assert position[node] < position[simple_tree.parent(node)]
    assert sorted(order) == simple_tree.node_ids
    assert order[-1] == 0


def test_pre_order_parents_before_children(simple_tree):
    order = list(simple_tree.pre_order())
    position = {node: i for i, node in enumerate(order)}
    for node in simple_tree.node_ids:
        if node != simple_tree.root:
            assert position[node] > position[simple_tree.parent(node)]
    assert order[0] == 0


def test_levels(simple_tree):
    assert simple_tree.levels() == [[0], [1, 2], [3, 4, 5], [6]]


def test_subtree(simple_tree):
    assert sorted(simple_tree.subtree(1)) == [1, 3, 4, 6]
    assert list(simple_tree.subtree(6)) == [6]
    with pytest.raises(RoutingError):
        list(simple_tree.subtree(42))


def test_descendant_counts(simple_tree):
    counts = simple_tree.descendant_counts()
    assert counts == {0: 6, 1: 3, 2: 1, 3: 1, 4: 0, 5: 0, 6: 0}


def test_path_to_root(simple_tree):
    assert simple_tree.path_to_root(6) == [6, 3, 1, 0]
    assert simple_tree.path_to_root(0) == [0]


def test_total_hops(simple_tree):
    assert simple_tree.total_hops_to_root([6, 5]) == 3 + 2


def test_contains_and_len(simple_tree):
    assert 6 in simple_tree and 42 not in simple_tree
    assert len(simple_tree) == 7


def test_as_parent_map_is_copy(simple_tree):
    mapping = simple_tree.as_parent_map()
    mapping[99] = 0
    assert 99 not in simple_tree


def test_descendant_counts_on_real_tree(small_tree):
    counts = small_tree.descendant_counts()
    assert counts[small_tree.root] == len(small_tree) - 1
    # Sum over direct children + children themselves equals the root count.
    root_children = small_tree.children(small_tree.root)
    assert sum(counts[c] + 1 for c in root_children) == counts[small_tree.root]
